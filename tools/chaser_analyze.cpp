// chaser_analyze — offline propagation analysis over trial trace spools.
//
//   chaser_analyze summarize  <spool>            # counts, spread order, transfers
//   chaser_analyze summarize  <records.csv>...   # outcome rates + Wilson CIs
//                                                # (several CSVs merge)
//   chaser_analyze timeline   <spool> [--csv]    # Fig. 7 tainted-bytes curve
//   chaser_analyze graph-dot  <spool>            # Graphviz DOT of the graph
//   chaser_analyze root-cause <spool> [--rank R --fd F --offset N]
//                                                # SDC output byte -> injection
//
// <spool> is a trial directory written by a TraceSpool (chaser_run --spool,
// CampaignConfig::spool_dir, or examples/post_analysis) — or a campaign
// spool directory holding trial-<seed>/ subdirectories, selected with
// --trial SEED (defaulting to the only trial if there is exactly one).
// `summarize` also accepts a records CSV written by chaser_run --out: it
// then reports the weighted outcome-rate estimates with their 95% Wilson
// intervals (sample_weight-aware, so sampled campaigns are unbiased).
// --json switches summarize/timeline/root-cause to JSON; --out FILE writes
// to a file instead of stdout.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/propagation.h"
#include "analysis/spool.h"
#include "campaign/fleet.h"
#include "campaign/report.h"
#include "campaign/sampling.h"
#include "common/error.h"
#include "common/fileio.h"
#include "common/strings.h"
#include "guest/isa.h"
#include "net/socket.h"
#include "obs/export.h"
#include "store/ctr.h"
#include "store/query.h"

namespace {

using namespace chaser;
namespace fs = std::filesystem;

void Usage() {
  std::printf(
      "usage: chaser_analyze <subcommand> <spool-dir> [options]\n"
      "\n"
      "subcommands:\n"
      "  summarize    graph/transfer summary, first contamination, spread order;\n"
      "               given records CSV file(s) instead of a spool dir: outcome\n"
      "               rates with 95%% Wilson intervals (weight-aware); several\n"
      "               CSVs — e.g. fleet shard outputs — merge into one estimate\n"
      "               (overlapping trial seeds are an error); given a CTR store\n"
      "               (chaser_run --records-format ctr): the same estimates,\n"
      "               streamed column-wise\n"
      "  query        filter/aggregate a CTR trial store in one streaming pass:\n"
      "               --where outcome=sdc,injector=stuckat equality filters,\n"
      "               --group-by outcome|injector|fault_class|inject_class|rank,\n"
      "               --top-k N hottest injection sites (pc x instr class)\n"
      "  export-csv   stream a CTR store back out as a records CSV,\n"
      "               byte-identical to chaser_run --out for the same trials\n"
      "  timeline     tainted-bytes-over-time curve (Fig. 7)\n"
      "  graph-dot    propagation graph as Graphviz DOT\n"
      "  root-cause   walk a corrupted output byte back to the injection\n"
      "  top          live fleet dashboard over scrape endpoints:\n"
      "               chaser_analyze top --dir FLEET_DIR (endpoints discovered\n"
      "               from fleet-status.json) or --endpoints H:P[,...];\n"
      "               --interval MS refresh (default 1000), --once prints a\n"
      "               single frame and exits\n"
      "  scrape       print one endpoint body and exit:\n"
      "               chaser_analyze scrape H:P [/metrics|/status|/healthz]\n"
      "\n"
      "options:\n"
      "  --where SPEC   query: comma-separated key=value filters (keys: outcome,\n"
      "                 kind, signal, inject_class, rank, injector, fault_class)\n"
      "  --group-by G   query: outcome|injector|fault_class|inject_class|rank\n"
      "  --top-k N      query: also rank the N hottest injection sites\n"
      "  --trial SEED   pick trial-<SEED>/ inside a campaign spool dir\n"
      "  --rank R       root-cause: rank of the output byte (default: first)\n"
      "  --fd F         root-cause: output stream fd (default: first)\n"
      "  --offset N     root-cause: byte offset in that stream (default: first)\n"
      "  --csv          timeline: emit instret,tainted_bytes CSV\n"
      "  --json         summarize/query/timeline/root-cause: emit JSON\n"
      "  --out FILE     write to FILE instead of stdout\n"
      "  --help         this text\n");
}

/// Resolve a spool path: a trial dir itself, or a campaign dir holding
/// trial-<seed>/ children (picked by --trial, or alone-child default).
std::string ResolveTrialDir(const std::string& dir, const std::string& trial) {
  if (!trial.empty()) {
    const std::string candidate = dir + "/trial-" + trial;
    if (analysis::IsTrialSpoolDir(candidate)) return candidate;
    throw ConfigError("no trial spool at '" + candidate + "'");
  }
  if (analysis::IsTrialSpoolDir(dir)) return dir;
  std::vector<std::string> trials;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_directory() &&
          analysis::IsTrialSpoolDir(entry.path().string())) {
        trials.push_back(entry.path().string());
      }
    }
  }
  std::sort(trials.begin(), trials.end());
  if (trials.size() == 1) return trials[0];
  if (trials.empty()) {
    throw ConfigError("'" + dir + "' is neither a trial spool (no .seg files) "
                      "nor a campaign spool directory");
  }
  std::string msg = "'" + dir + "' holds " + std::to_string(trials.size()) +
                    " trials; pick one with --trial SEED:";
  for (const std::string& t : trials) msg += "\n  " + t;
  throw ConfigError(msg);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') { out += '\\'; out += c; }
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// The spool's in-memory-TraceLog drop count, recorded by the campaign in
/// meta.txt. 0 when absent (pre-drop-accounting spools) or unparsable.
std::uint64_t MetaTraceDropped(const std::map<std::string, std::string>& meta) {
  const auto it = meta.find("trace_dropped");
  std::uint64_t n = 0;
  if (it != meta.end()) ParseU64(it->second, &n);
  return n;
}

std::string SummarizeJson(const analysis::PropagationGraph& g,
                          const std::map<std::string, std::string>& meta) {
  std::string out = "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta) {
    out += StrFormat("%s\n    \"%s\": \"%s\"", first ? "" : ",",
                     JsonEscape(k).c_str(), JsonEscape(v).c_str());
    first = false;
  }
  out += "\n  },\n  \"first_contamination\": {";
  first = true;
  for (const auto& [rank, instret] : g.FirstContamination()) {
    out += StrFormat("%s\"%d\": %llu", first ? "" : ", ", rank,
                     static_cast<unsigned long long>(instret));
    first = false;
  }
  out += "},\n  \"spread_order\": [";
  first = true;
  for (const Rank r : g.SpreadOrder()) {
    out += StrFormat("%s%d", first ? "" : ", ", r);
    first = false;
  }
  out += "],\n  \"transfers\": [";
  first = true;
  for (const hub::TransferLogEntry& t : g.dataset().transfers) {
    out += StrFormat(
        "%s\n    {\"hub_seq\": %llu, \"src\": %d, \"dest\": %d, \"tag\": %lld, "
        "\"tainted_bytes\": %llu, \"payload_bytes\": %llu}",
        first ? "" : ",", static_cast<unsigned long long>(t.hub_seq), t.id.src,
        t.id.dest, static_cast<long long>(t.id.tag),
        static_cast<unsigned long long>(t.tainted_bytes),
        static_cast<unsigned long long>(t.payload_bytes));
    first = false;
  }
  out += StrFormat(
      "\n  ],\n  \"nodes\": %zu,\n  \"edges\": %zu,\n"
      "  \"trace_dropped\": %llu\n}\n",
      g.nodes().size(), g.edges().size(),
      static_cast<unsigned long long>(MetaTraceDropped(meta)));
  return out;
}

std::string TimelineText(const analysis::PropagationGraph& g, bool csv,
                         bool json) {
  const auto timeline = g.TaintTimeline();
  std::string out;
  if (json) {
    out = "[";
    bool first = true;
    for (const auto& [instret, bytes] : timeline) {
      out += StrFormat("%s\n  {\"instret\": %llu, \"tainted_bytes\": %llu}",
                       first ? "" : ",",
                       static_cast<unsigned long long>(instret),
                       static_cast<unsigned long long>(bytes));
      first = false;
    }
    out += "\n]\n";
    return out;
  }
  if (csv) {
    out = "instret,tainted_bytes\n";
    for (const auto& [instret, bytes] : timeline) {
      out += StrFormat("%llu,%llu\n", static_cast<unsigned long long>(instret),
                       static_cast<unsigned long long>(bytes));
    }
    return out;
  }
  std::uint64_t peak = 0;
  for (const auto& [instret, bytes] : timeline) peak = std::max(peak, bytes);
  out = StrFormat("tainted-bytes timeline: %zu samples, peak %llu bytes\n",
                  timeline.size(), static_cast<unsigned long long>(peak));
  for (const auto& [instret, bytes] : timeline) {
    const int bar = peak == 0 ? 0 : static_cast<int>(50 * bytes / peak);
    out += StrFormat("  %12llu %8llu %s\n",
                     static_cast<unsigned long long>(instret),
                     static_cast<unsigned long long>(bytes),
                     std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  return out;
}

/// Per-injector outcome tallies, keyed by the v6 injector column. Only
/// custom-injector campaigns populate it; default records leave the map
/// empty and the breakdown is omitted entirely.
struct InjectorTally {
  std::string fault_class;
  std::uint64_t outcomes[5] = {0, 0, 0, 0, 0};
};

/// Streaming outcome tallies — one record at a time, shared by the CSV and
/// CTR-store summaries. The estimator is sample_weight-aware, so records
/// from a stratified campaign report the same unbiased rates the campaign
/// itself printed; uniform and weighted records degenerate to plain
/// proportions.
struct OutcomeTallies {
  campaign::OutcomeEstimator est;
  std::uint64_t infra = 0, crashed = 0;
  std::size_t records = 0;
  std::map<std::string, InjectorTally> by_injector;

  void Add(const campaign::RunRecord& r) {
    ++records;
    if (!r.injector.empty()) {
      InjectorTally& t = by_injector[r.injector];
      t.fault_class = r.fault_class;
      const int o = static_cast<int>(r.outcome);
      if (o >= 0 && o < 5) ++t.outcomes[o];
    }
    if (r.outcome == campaign::Outcome::kInfra) {
      ++infra;
      return;
    }
    if (r.outcome == campaign::Outcome::kCrashed) {
      ++crashed;
      return;
    }
    est.Add(static_cast<int>(r.outcome), r.deadlock, r.sample_weight);
  }
};

/// Render the estimates behind `head`: the caller supplies the leading
/// source-description lines (JSON key lines or text header lines), this adds
/// the record counts, Wilson-interval rows and per-injector breakdown.
std::string RenderOutcomeSummary(const OutcomeTallies& tallies, bool json,
                                 const std::string& head) {
  const campaign::OutcomeEstimator& est = tallies.est;
  const std::uint64_t infra = tallies.infra;
  const std::uint64_t crashed = tallies.crashed;
  const std::size_t total_records = tallies.records;
  const auto& by_injector = tallies.by_injector;
  struct Row {
    const char* name;
    campaign::OutcomeEstimator::Series series;
  };
  const Row rows[] = {
      {"benign", campaign::OutcomeEstimator::kBenign},
      {"terminated", campaign::OutcomeEstimator::kTerminated},
      {"sdc", campaign::OutcomeEstimator::kSdc},
      {"hang", campaign::OutcomeEstimator::kHang},
  };
  if (json) {
    std::string out = StrFormat(
        "{\n%s  \"records\": %zu,\n  \"infra\": %llu,\n"
        "  \"crashed\": %llu,\n"
        "  \"effective_n\": %.1f,\n  \"estimates\": {",
        head.c_str(), total_records, static_cast<unsigned long long>(infra),
        static_cast<unsigned long long>(crashed), est.effective_n());
    bool first = true;
    for (const Row& row : rows) {
      const campaign::WilsonInterval w = est.Interval(row.series);
      out += StrFormat(
          "%s\n    \"%s\": {\"rate\": %.6f, \"lo\": %.6f, \"hi\": %.6f}",
          first ? "" : ",", row.name, w.rate, w.lo, w.hi);
      first = false;
    }
    out += "\n  }";
    if (!by_injector.empty()) {
      out += ",\n  \"by_injector\": {";
      first = true;
      for (const auto& [name, t] : by_injector) {
        out += StrFormat(
            "%s\n    \"%s\": {\"fault_class\": \"%s\", \"benign\": %llu, "
            "\"terminated\": %llu, \"sdc\": %llu, \"infra\": %llu, "
            "\"crashed\": %llu}",
            first ? "" : ",", JsonEscape(name).c_str(),
            JsonEscape(t.fault_class).c_str(),
            static_cast<unsigned long long>(t.outcomes[0]),
            static_cast<unsigned long long>(t.outcomes[1]),
            static_cast<unsigned long long>(t.outcomes[2]),
            static_cast<unsigned long long>(t.outcomes[3]),
            static_cast<unsigned long long>(t.outcomes[4]));
        first = false;
      }
      out += "\n  }";
    }
    out += "\n}\n";
    return out;
  }
  std::string out = head;
  out += StrFormat(
      "  %zu records (%llu infra, excluded), "
      "effective n %.1f\n  outcome-rate estimates (95%% wilson):\n",
      total_records, static_cast<unsigned long long>(infra),
      est.effective_n());
  for (const Row& row : rows) {
    const campaign::WilsonInterval w = est.Interval(row.series);
    out += StrFormat("    %-10s %6.2f%%  [%5.2f%%, %5.2f%%]\n", row.name,
                     100.0 * w.rate, 100.0 * w.lo, 100.0 * w.hi);
  }
  if (crashed > 0) {
    out += StrFormat("    %-10s %6llu trials (excluded from rates)\n",
                     "crashed", static_cast<unsigned long long>(crashed));
  }
  if (!by_injector.empty()) {
    out += "  per-injector outcomes:\n";
    for (const auto& [name, t] : by_injector) {
      out += StrFormat(
          "    %-14s %-18s benign %llu, terminated %llu, sdc %llu, "
          "infra %llu, crashed %llu\n",
          name.c_str(), ("(" + t.fault_class + ")").c_str(),
          static_cast<unsigned long long>(t.outcomes[0]),
          static_cast<unsigned long long>(t.outcomes[1]),
          static_cast<unsigned long long>(t.outcomes[2]),
          static_cast<unsigned long long>(t.outcomes[3]),
          static_cast<unsigned long long>(t.outcomes[4]));
    }
  }
  return out;
}

/// Summarize one or more records CSVs, read line-at-a-time (a million-trial
/// CSV never lives in memory) and merged across every file — per-shard CSVs
/// from a fleet run estimate the whole campaign. Overlapping trial seeds
/// across files mean double-counted trials, which would silently bias the
/// merged estimate, so they are an error.
std::string SummarizeRecordsCsv(const std::vector<std::string>& paths,
                                bool json) {
  OutcomeTallies tallies;
  std::vector<std::size_t> per_file;
  std::map<std::uint64_t, std::size_t> seed_file;  // run_seed -> first file
  for (std::size_t f = 0; f < paths.size(); ++f) {
    std::ifstream in(paths[f]);
    if (!in) throw ConfigError("cannot open records CSV '" + paths[f] + "'");
    campaign::RecordsCsvReader reader(in);
    campaign::RunRecord r;
    std::size_t n = 0;
    while (reader.Next(&r)) {
      if (paths.size() > 1) {
        const auto [it, inserted] = seed_file.emplace(r.run_seed, f);
        if (!inserted) {
          throw ConfigError(StrFormat(
              "summarize: run_seed %llu appears in both '%s' and '%s' — the "
              "same records were passed twice, or the shard CSVs overlap",
              static_cast<unsigned long long>(r.run_seed),
              paths[it->second].c_str(), paths[f].c_str()));
        }
      }
      tallies.Add(r);
      ++n;
    }
    per_file.push_back(n);
  }

  std::string head;
  if (json) {
    head = StrFormat("  \"files\": %zu,\n", paths.size());
  } else if (paths.size() == 1) {
    head = StrFormat("records csv: %s\n", paths[0].c_str());
  } else {
    head = StrFormat("records csv: %zu files\n", paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      head += StrFormat("    %s (%zu records)\n", paths[i].c_str(),
                        per_file[i]);
    }
  }
  return RenderOutcomeSummary(tallies, json, head);
}

/// Summarize a CTR trial store: same estimates as the CSV path, but the scan
/// decodes only the six columns the tallies read and skips the rest by their
/// length prefixes.
std::string SummarizeCtrStore(const std::string& path, bool json) {
  const store::ColumnMask mask =
      store::MaskOf(store::kColRunSeed) | store::MaskOf(store::kColOutcome) |
      store::MaskOf(store::kColFlags) |
      store::MaskOf(store::kColSampleWeight) |
      store::MaskOf(store::kColInjector) |
      store::MaskOf(store::kColFaultClass);
  store::CtrStoreScanner scanner(path, mask);
  OutcomeTallies tallies;
  campaign::RunRecord r;
  while (scanner.Next(&r)) tallies.Add(r);
  if (scanner.truncated()) {
    std::fprintf(stderr,
                 "chaser_analyze: warning: store '%s' has a torn tail (its "
                 "writer died); summarizing the intact prefix\n",
                 path.c_str());
  }
  const store::CtrStoreInfo& info = scanner.info();
  std::string head;
  if (json) {
    head = StrFormat(
        "  \"store\": \"%s\",\n  \"app\": \"%s\",\n"
        "  \"campaign_seed\": %llu,\n  \"sealed\": %s,\n"
        "  \"truncated\": %s,\n",
        JsonEscape(path).c_str(), JsonEscape(info.app).c_str(),
        static_cast<unsigned long long>(info.campaign_seed),
        scanner.sealed() ? "true" : "false",
        scanner.truncated() ? "true" : "false");
  } else {
    head = StrFormat(
        "ctr store: %s\n  app %s, campaign seed %llu, sample %s, "
        "shard %llu/%llu\n",
        path.c_str(), info.app.c_str(),
        static_cast<unsigned long long>(info.campaign_seed),
        campaign::SamplePolicyName(info.sample_policy),
        static_cast<unsigned long long>(info.shard_index),
        static_cast<unsigned long long>(info.shard_count));
  }
  return RenderOutcomeSummary(tallies, json, head);
}

std::string AggJson(const store::GroupAgg& a) {
  return StrFormat(
      "{\"trials\": %llu, \"benign\": %llu, \"terminated\": %llu, "
      "\"sdc\": %llu, \"infra\": %llu, \"crashed\": %llu, "
      "\"weight\": %.17g, \"sdc_weight\": %.17g}",
      static_cast<unsigned long long>(a.trials),
      static_cast<unsigned long long>(a.outcomes[0]),
      static_cast<unsigned long long>(a.outcomes[1]),
      static_cast<unsigned long long>(a.outcomes[2]),
      static_cast<unsigned long long>(a.outcomes[3]),
      static_cast<unsigned long long>(a.outcomes[4]), a.weight, a.sdc_weight);
}

std::string QueryJson(const store::QueryResult& res) {
  std::string out = StrFormat(
      "{\n  \"scanned\": %llu,\n  \"matched\": %llu,\n  \"sealed\": %s,\n"
      "  \"truncated\": %s,\n  \"total\": %s",
      static_cast<unsigned long long>(res.scanned),
      static_cast<unsigned long long>(res.matched),
      res.sealed ? "true" : "false", res.truncated ? "true" : "false",
      AggJson(res.total).c_str());
  if (!res.groups.empty()) {
    out += ",\n  \"groups\": {";
    bool first = true;
    for (const auto& [label, agg] : res.groups) {
      out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                       JsonEscape(label).c_str(), AggJson(agg).c_str());
      first = false;
    }
    out += "\n  }";
  }
  if (!res.top_sites.empty()) {
    out += ",\n  \"top_sites\": [";
    bool first = true;
    for (const store::SiteAgg& s : res.top_sites) {
      out += StrFormat(
          "%s\n    {\"pc\": \"%s\", \"class\": \"%s\", \"trials\": %llu, "
          "\"sdc\": %llu}",
          first ? "" : ",", Hex64(s.pc).c_str(), guest::ClassName(s.cls),
          static_cast<unsigned long long>(s.trials),
          static_cast<unsigned long long>(s.sdc));
      first = false;
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Live fleet dashboard (`top`) and raw endpoint scrapes (`scrape`).
// ---------------------------------------------------------------------------

/// GET `path` from an "H:P" endpoint; empty body on any failure (dead
/// workers are a normal dashboard condition, not an error).
std::string TryScrape(const std::string& endpoint, const std::string& path) {
  try {
    const net::Endpoint ep = net::ParseEndpoint(endpoint);
    const obs::HttpResponse r =
        obs::HttpGet(ep.host, ep.port, path, /*timeout_ms=*/500);
    if (r.status == 200) return r.body;
  } catch (const ChaserError&) {
  }
  return "";
}

/// Every `"obs": "H:P"` value in a fleet-status.json document — the shard
/// and hub scrape endpoints the coordinator discovered, deduplicated in
/// document order.
std::vector<std::string> DiscoverObsEndpoints(const std::string& body) {
  std::vector<std::string> out;
  const std::string needle = "\"obs\": \"";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const std::size_t end = body.find('"', pos);
    if (end == std::string::npos) break;
    const std::string ep = body.substr(pos, end - pos);
    if (std::find(out.begin(), out.end(), ep) == out.end()) out.push_back(ep);
    pos = end;
  }
  return out;
}

/// One rendered frame of the dashboard.
std::string RenderTopFrame(const std::vector<std::string>& endpoints) {
  std::string out;
  out += StrFormat("%-22s %-8s %13s %9s %9s %7s %6s %5s %6s\n", "ENDPOINT",
                   "STATE", "DONE/TOTAL", "RATE/s", "ETA_s", "BENIGN", "TERM",
                   "SDC", "INFRA");
  std::vector<campaign::ShardStatus> workers;
  std::string hub_lines;
  std::size_t silent = 0;
  for (const std::string& ep : endpoints) {
    const std::string body = TryScrape(ep, "/status");
    if (body.empty()) {
      ++silent;
      out += StrFormat("%-22s %-8s\n", ep.c_str(), "silent");
      continue;
    }
    std::string role;
    if (JsonFindString(body, "role", &role) && role == "hubd") {
      // A hub daemon: wire totals from /status, live bytes from /metrics.
      double cmds = 0.0, records = 0.0, conns = 0.0;
      JsonFindNumber(body, "commands", &cmds);
      JsonFindNumber(body, "records_published", &records);
      JsonFindNumber(body, "connections_accepted", &conns);
      const std::string metrics = TryScrape(ep, "/metrics");
      double bytes_in = 0.0, bytes_out = 0.0;
      obs::PrometheusValue(metrics, "hub_bytes_in_total", &bytes_in);
      obs::PrometheusValue(metrics, "hub_bytes_out_total", &bytes_out);
      hub_lines += StrFormat(
          "%-22s hub      %.0f cmds, %.0f records, %.0f conns, "
          "%.1f MB in / %.1f MB out\n",
          ep.c_str(), cmds, records, conns, bytes_in / 1e6, bytes_out / 1e6);
      continue;
    }
    const campaign::ShardStatus s = campaign::ParseShardStatus(body);
    if (!s.ok) {
      ++silent;
      out += StrFormat("%-22s %-8s\n", ep.c_str(), "garbled");
      continue;
    }
    workers.push_back(s);
    const std::string eta =
        !s.running ? "-" : s.eta_known ? StrFormat("%.1f", s.eta_s) : "?";
    out += StrFormat(
        "%-22s %-8s %6llu/%-6llu %9.2f %9s %7llu %6llu %5llu %6llu\n",
        ep.c_str(), s.running ? "running" : "done",
        static_cast<unsigned long long>(s.done),
        static_cast<unsigned long long>(s.total), s.trials_per_s, eta.c_str(),
        static_cast<unsigned long long>(s.benign),
        static_cast<unsigned long long>(s.terminated),
        static_cast<unsigned long long>(s.sdc),
        static_cast<unsigned long long>(s.infra));
  }
  if (workers.size() > 1) {
    const campaign::FleetRollup r = campaign::RollUpShards(workers);
    const std::string eta =
        r.eta_known ? StrFormat("%.1f", r.eta_s) : std::string("?");
    out += StrFormat(
        "%-22s %-8s %6llu/%-6llu %9.2f %9s %7llu %6llu %5llu %6llu\n",
        "FLEET", "", static_cast<unsigned long long>(r.done),
        static_cast<unsigned long long>(r.total), r.trials_per_s, eta.c_str(),
        static_cast<unsigned long long>(r.benign),
        static_cast<unsigned long long>(r.terminated),
        static_cast<unsigned long long>(r.sdc),
        static_cast<unsigned long long>(r.infra));
    out += StrFormat(
        "  outcome mix: benign %.1f%%, terminated %.1f%%, sdc %.1f%%, "
        "infra %.1f%%\n",
        100.0 * r.benign_rate, 100.0 * r.terminated_rate, 100.0 * r.sdc_rate,
        100.0 * r.infra_rate);
  }
  out += hub_lines;
  if (silent == endpoints.size()) {
    out += "(no endpoint answered — fleet finished or not started yet)\n";
  }
  return out;
}

int RunTop(int argc, char** argv) {
  std::vector<std::string> endpoints;
  std::string dir;
  std::uint64_t interval_ms = 1000;
  bool once = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw ConfigError(std::string("missing value for ") + flag);
      }
      return argv[++i];
    };
    if (a == "--endpoints") {
      for (const std::string& ep : Split(value("--endpoints"), ',')) {
        if (!ep.empty()) endpoints.push_back(ep);
      }
    } else if (a == "--dir") {
      dir = value("--dir");
    } else if (a == "--interval") {
      if (!ParseU64(value("--interval"), &interval_ms) || interval_ms == 0) {
        throw ConfigError("--interval expects milliseconds > 0");
      }
    } else if (a == "--once") {
      once = true;
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else {
      throw ConfigError("unknown flag '" + a + "'");
    }
  }
  if (endpoints.empty() && dir.empty()) {
    throw ConfigError("top: pass --endpoints H:P[,...] or --dir FLEET_DIR");
  }
  for (;;) {
    std::vector<std::string> eps = endpoints;
    if (!dir.empty()) {
      // Re-discover every frame: restarted workers move to new ports.
      std::ifstream in(dir + "/fleet-status.json");
      if (in) {
        std::stringstream ss;
        ss << in.rdbuf();
        for (const std::string& ep : DiscoverObsEndpoints(ss.str())) {
          if (std::find(eps.begin(), eps.end(), ep) == eps.end()) {
            eps.push_back(ep);
          }
        }
      }
    }
    const std::string frame = RenderTopFrame(eps);
    if (once) {
      std::fputs(frame.c_str(), stdout);
      return 0;
    }
    // Home + clear-to-end keeps the frame flicker-free on ANSI terminals.
    std::printf("\033[H\033[J%s\n(refresh %llums, ctrl-c to quit)\n",
                frame.c_str(), static_cast<unsigned long long>(interval_ms));
    std::fflush(stdout);
    usleep(static_cast<useconds_t>(interval_ms * 1000));
  }
}

int RunScrape(int argc, char** argv) {
  if (argc < 3) {
    throw ConfigError("scrape: usage: chaser_analyze scrape H:P [/metrics]");
  }
  const std::string endpoint = argv[2];
  const std::string path = argc >= 4 ? argv[3] : "/metrics";
  const net::Endpoint ep = net::ParseEndpoint(endpoint);
  const obs::HttpResponse r = obs::HttpGet(ep.host, ep.port, path);
  std::fputs(r.body.c_str(), stdout);
  return r.status == 200 ? 0 : 1;
}

std::string RootCauseJson(const analysis::RootCauseChain& chain) {
  std::string out = StrFormat(
      "{\n  \"complete\": %s,\n  \"transfers_crossed\": %zu,\n  \"steps\": [",
      chain.complete ? "true" : "false", chain.transfers_crossed);
  bool first = true;
  for (const analysis::ChainStep& s : chain.steps) {
    out += StrFormat("%s\n    \"%s\"", first ? "" : ",",
                     JsonEscape(s.Describe()).c_str());
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // `top` and `scrape` talk to live scrape endpoints, not spool dirs —
    // dispatch them before the spool-oriented argument shape below.
    if (argc >= 2 && std::string(argv[1]) == "top") return RunTop(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "scrape") {
      return RunScrape(argc, argv);
    }
    if (argc < 3) {
      Usage();
      return argc >= 2 && std::string(argv[1]) == "--help" ? 0 : 2;
    }
    const std::string cmd = argv[1];
    const std::string dir = argv[2];
    std::string trial, out_path;
    std::vector<std::string> extra_csvs;
    std::string where_spec, group_by;
    std::uint64_t top_k = 0;
    bool csv = false, json = false;
    bool rank_given = false, fd_given = false, offset_given = false;
    std::uint64_t rank = 0, fd = 0, offset = 0;
    for (int i = 3; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw ConfigError(std::string("missing value for ") + flag);
        }
        return argv[++i];
      };
      const auto num = [&](const char* flag) {
        std::uint64_t v = 0;
        if (!ParseU64(value(flag), &v)) {
          throw ConfigError(std::string("bad number for ") + flag);
        }
        return v;
      };
      if (a == "--trial") trial = value("--trial");
      else if (a == "--where") where_spec = value("--where");
      else if (a == "--group-by") group_by = value("--group-by");
      else if (a == "--top-k") top_k = num("--top-k");
      else if (a == "--rank") { rank = num("--rank"); rank_given = true; }
      else if (a == "--fd") { fd = num("--fd"); fd_given = true; }
      else if (a == "--offset") { offset = num("--offset"); offset_given = true; }
      else if (a == "--csv") csv = true;
      else if (a == "--json") json = true;
      else if (a == "--out") out_path = value("--out");
      else if (a == "--help" || a == "-h") { Usage(); return 0; }
      else if (!a.empty() && a[0] != '-') extra_csvs.push_back(a);
      else throw ConfigError("unknown flag '" + a + "'");
    }

    if (cmd == "query") {
      store::QueryOptions query;
      if (!where_spec.empty()) {
        query.filter = store::ParseTrialFilter(where_spec);
      }
      if (!group_by.empty() && !store::ParseGroupBy(group_by, &query.group_by)) {
        throw ConfigError("bad --group-by '" + group_by +
                          "' (outcome|injector|fault_class|inject_class|rank)");
      }
      query.top_k = static_cast<unsigned>(top_k);
      const store::QueryResult result = store::RunQuery(dir, query);
      const std::string output =
          json ? QueryJson(result) : store::RenderQueryResult(result, query);
      if (out_path.empty()) {
        std::fputs(output.c_str(), stdout);
      } else {
        WriteFileAtomic(out_path, output);
        std::printf("wrote %zu bytes to %s\n", output.size(), out_path.c_str());
      }
      return 0;
    }

    if (cmd == "export-csv") {
      store::ExportStats stats;
      if (out_path.empty()) {
        stats = store::ExportCsv(dir, std::cout);
        std::cout.flush();
      } else {
        // Stream through a tmp file + rename: the CSV never lives in memory,
        // and a crash mid-export never clobbers a previous complete file.
        const std::string tmp = out_path + ".tmp";
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw ConfigError("cannot write '" + tmp + "'");
        stats = store::ExportCsv(dir, out);
        out.close();
        if (!out) throw ConfigError("write to '" + tmp + "' failed");
        std::error_code ec;
        fs::rename(tmp, out_path, ec);
        if (ec) {
          throw ConfigError("rename '" + tmp + "' -> '" + out_path + "': " +
                            ec.message());
        }
        std::printf("exported %llu records (records csv v%u) to %s\n",
                    static_cast<unsigned long long>(stats.rows),
                    stats.csv_version, out_path.c_str());
      }
      if (stats.truncated) {
        std::fprintf(stderr,
                     "chaser_analyze: warning: store '%s' has a torn tail "
                     "(its writer died); exported the intact prefix\n",
                     dir.c_str());
      }
      return 0;
    }

    if (cmd == "summarize" && store::IsCtrStorePath(dir)) {
      if (!extra_csvs.empty()) {
        throw ConfigError(
            "summarize: a CTR store summarizes alone — merge shard stores "
            "with chaser_fleet merge first");
      }
      const std::string output = SummarizeCtrStore(dir, json);
      if (out_path.empty()) {
        std::fputs(output.c_str(), stdout);
      } else {
        WriteFileAtomic(out_path, output);
        std::printf("wrote %zu bytes to %s\n", output.size(), out_path.c_str());
      }
      return 0;
    }

    // A regular file can only be a records CSV — spools are directories.
    // Extra positional files merge into one estimate (fleet shard CSVs).
    if (cmd == "summarize" && (fs::is_regular_file(dir) || !extra_csvs.empty())) {
      std::vector<std::string> paths;
      paths.push_back(dir);
      paths.insert(paths.end(), extra_csvs.begin(), extra_csvs.end());
      const std::string output = SummarizeRecordsCsv(paths, json);
      if (out_path.empty()) {
        std::fputs(output.c_str(), stdout);
      } else {
        WriteFileAtomic(out_path, output);
        std::printf("wrote %zu bytes to %s\n", output.size(), out_path.c_str());
      }
      return 0;
    }

    const std::string trial_dir = ResolveTrialDir(dir, trial);
    const analysis::TrialSpool spool = analysis::ReadTrialSpool(trial_dir);
    if (spool.truncated) {
      std::fprintf(stderr,
                   "chaser_analyze: warning: spool '%s' is truncated (writer "
                   "died mid-trial); analyzing the intact prefix\n",
                   trial_dir.c_str());
    }
    const analysis::PropagationGraph graph =
        analysis::PropagationGraph::Build(analysis::DatasetFromSpool(spool));

    std::string output;
    if (cmd == "summarize") {
      if (json) {
        output = SummarizeJson(graph, spool.meta);
      } else {
        output = StrFormat("trial spool: %s\n", trial_dir.c_str());
        for (const auto& [k, v] : spool.meta) {
          output += StrFormat("  %s=%s\n", k.c_str(), v.c_str());
        }
        // The spool itself is capless, but the campaign's in-memory TraceLogs
        // are not: surface their drop count so a summary over a partial
        // in-memory view is never mistaken for one over a complete trace.
        const std::uint64_t dropped = MetaTraceDropped(spool.meta);
        if (dropped > 0) {
          output += StrFormat(
              "  note: the in-memory trace dropped %llu events at its "
              "capacity cap during this trial (this spool still holds the "
              "full trace)\n",
              static_cast<unsigned long long>(dropped));
        }
        output += graph.Summarize();
      }
    } else if (cmd == "timeline") {
      output = TimelineText(graph, csv, json);
    } else if (cmd == "graph-dot") {
      output = graph.ToDot();
    } else if (cmd == "root-cause") {
      if (!rank_given || !fd_given || !offset_given) {
        const auto outputs = graph.OutputEvents();
        if (outputs.empty()) {
          throw ConfigError(
              "no tainted output bytes in this trial (nothing to root-cause); "
              "was the trial an SDC with tracing enabled?");
        }
        if (!rank_given) rank = static_cast<std::uint64_t>(outputs[0].rank);
        if (!fd_given) fd = static_cast<std::uint64_t>(outputs[0].fd);
        if (!offset_given) offset = outputs[0].stream_off;
      }
      const analysis::RootCauseChain chain = graph.RootCause(
          static_cast<Rank>(rank), static_cast<int>(fd), offset);
      output = json ? RootCauseJson(chain) : chain.Render();
    } else {
      Usage();
      throw ConfigError("unknown subcommand '" + cmd + "'");
    }

    if (out_path.empty()) {
      std::fputs(output.c_str(), stdout);
    } else {
      // Atomic tmp+rename: never clobber a previous report with a torn file.
      WriteFileAtomic(out_path, output);
      std::printf("wrote %zu bytes to %s\n", output.size(), out_path.c_str());
    }
    return 0;
  } catch (const ChaserError& e) {
    std::fprintf(stderr, "chaser_analyze: %s\n", e.what());
    return 2;
  }
}

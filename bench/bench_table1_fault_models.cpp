// Table I — Chaser supported fault models.
//
// The paper's Table I is definitional (probabilistic / deterministic /
// group). This bench regenerates it with *measured* semantics: for each
// model, arm it against a counted fadd loop and report where faults landed,
// demonstrating that each model behaves as its table row specifies.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/chaser.h"
#include "core/injectors/group_injector.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "guest/builder.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

guest::Program FaddLoop(std::uint64_t iters) {
  ProgramBuilder b("faddloop");
  b.FmovI(F(5), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(5), F(5), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  return b.Finalize();
}

struct ModelResult {
  std::uint64_t injections = 0;
  std::vector<std::uint64_t> fire_points;
};

ModelResult RunModel(const guest::Program& program, core::InjectionCommand cmd) {
  vm::Vm vm;
  core::Chaser chaser(vm);
  cmd.target_program = program.name;
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trace = false;
  chaser.Arm(std::move(cmd));
  vm.StartProcess(program);
  vm.RunToCompletion();
  ModelResult result;
  result.injections = chaser.injections().size();
  for (const core::InjectionRecord& rec : chaser.injections()) {
    result.fire_points.push_back(rec.exec_count);
  }
  return result;
}

}  // namespace
}  // namespace chaser

int main() {
  using namespace chaser;
  bench::PrintHeader("Table I: Chaser supported fault models",
                     "paper Table I (model definitions, verified by measurement)");

  const guest::Program program = FaddLoop(10'000);

  std::printf("%-15s %-55s %s\n", "Fault Model", "Definition (measured behaviour)",
              "Result");
  std::printf("%s\n", std::string(110, '-').c_str());

  // Probabilistic: p = 0.001 over 10000 executions, unlimited fires.
  {
    core::InjectionCommand cmd;
    cmd.trigger = std::make_shared<core::ProbabilisticTrigger>(0.001, 1u << 30);
    cmd.injector = core::ProbabilisticInjector::Create(1);
    cmd.seed = 7;
    const ModelResult r = RunModel(program, cmd);
    std::printf("%-15s %-55s fired %llu times over 10000 executions (E=10)\n",
                "Probabilistic",
                "location from a predefined probability distribution (p=0.001)",
                static_cast<unsigned long long>(r.injections));
  }

  // Deterministic: exactly the 4242nd execution.
  {
    core::InjectionCommand cmd;
    cmd.trigger = std::make_shared<core::DeterministicTrigger>(4242);
    cmd.injector = core::ProbabilisticInjector::Create(1);
    cmd.seed = 7;
    const ModelResult r = RunModel(program, cmd);
    std::printf("%-15s %-55s fired %llu time at execution #%llu\n", "Deterministic",
                "location is the exact predefined location (n=4242)",
                static_cast<unsigned long long>(r.injections),
                static_cast<unsigned long long>(
                    r.fire_points.empty() ? 0 : r.fire_points[0]));
  }

  // Group: multiple faults, every 1000th execution, 5 faults.
  {
    core::InjectionCommand cmd;
    cmd.trigger = std::make_shared<core::GroupTrigger>(1000, 1000, 5);
    cmd.injector = core::GroupInjector::Create(1);
    cmd.seed = 7;
    const ModelResult r = RunModel(program, cmd);
    std::string points;
    for (const std::uint64_t p : r.fire_points) points += StrFormat("%llu ",
        static_cast<unsigned long long>(p));
    std::printf("%-15s %-55s %llu operand corruptions at executions: %s\n",
                "Group", "multiple faults are injected (first=1000, stride=1000)",
                static_cast<unsigned long long>(r.injections), points.c_str());
  }
  return 0;
}

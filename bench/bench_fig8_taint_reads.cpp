// Fig. 8 — Distribution of the number of tainted memory READS across all
// MPI ranks over all fault-injection runs of CLAMR.
//
// Paper shape: a long-tailed distribution — the majority of injections
// trigger comparatively few tainted reads, a minority keep re-reading the
// contaminated region for the rest of the run.
#include <cstdio>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/histogram.h"

int main() {
  using namespace chaser;
  bench::PrintHeader(
      "Fig. 8: distribution of # tainted memory reads per run (CLAMR)",
      "paper Fig. 8");
  const std::uint64_t runs = bench::RunsFromEnv(300);

  campaign::CampaignConfig config;
  config.runs = runs;
  config.seed = 88;
  config.inject_ranks = {0, 1, 2, 3};
  campaign::Campaign c(apps::BuildClamr({}), config);
  const campaign::CampaignResult result = c.Run();

  std::uint64_t max_reads = 0;
  for (const campaign::RunRecord& rec : result.records) {
    max_reads = std::max(max_reads, rec.tainted_reads);
  }
  const std::uint64_t width = std::max<std::uint64_t>(1, max_reads / 20);
  Histogram h(width, 21);
  std::uint64_t more_reads = 0, only_reads = 0, only_writes = 0;
  for (const campaign::RunRecord& rec : result.records) {
    h.Add(rec.tainted_reads);
    if (rec.tainted_reads > rec.tainted_writes) ++more_reads;
    if (rec.tainted_reads > 0 && rec.tainted_writes == 0) ++only_reads;
    if (rec.tainted_writes > 0 && rec.tainted_reads == 0) ++only_writes;
  }

  std::printf("%s\n", h.Render("# tainted memory reads per run").c_str());
  const double n = static_cast<double>(result.runs);
  std::printf(
      "read/write balance across runs (paper SIV-C: 47.1%% more reads,\n"
      "3.97%% only reads, 14.93%% only writes):\n"
      "  more tainted reads than writes: %5.2f%%\n"
      "  only tainted reads:             %5.2f%%\n"
      "  only tainted writes:            %5.2f%%\n",
      100.0 * static_cast<double>(more_reads) / n,
      100.0 * static_cast<double>(only_reads) / n,
      100.0 * static_cast<double>(only_writes) / n);
  return 0;
}

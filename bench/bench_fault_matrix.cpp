// Fault matrix — every registered injector family crossed with matvec and
// lud, reporting the outcome distribution each fault model produces. The
// transient-bitflip families should land near the paper's Fig. 6 numbers;
// the persistent (stuck-at), spatial (burst), instruction-skip and
// process-crash families show how the outcome mix shifts as the fault model
// hardens — rank-crash in particular must convert ~100% of trials to the
// `crashed` outcome, never to infra.
//
// `--json` emits the table for tools/bench_to_json.sh
// (BENCH_fault_matrix.json). Fixed seeds make every number reproducible bit
// for bit.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "core/injectors/registry.h"

namespace {

struct Cell {
  std::string injector;
  std::string fault_class;
  const char* app;
  chaser::campaign::CampaignResult result;
  double secs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace chaser;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const std::uint64_t runs = bench::RunsFromEnv(300);
  const unsigned jobs = bench::JobsFromEnv();

  if (!json) {
    bench::PrintHeader(
        "Fault matrix: injector family x application outcome distribution",
        "registry fault classes vs the transient-bitflip baseline of Fig. 6");
    std::printf("runs per cell: %llu, %u workers\n\n",
                static_cast<unsigned long long>(runs), jobs);
  }

  // One spec per bundled family, defaults throughout so each cell measures
  // the family's own semantics, not a parameter choice.
  const std::vector<std::string> specs = core::InjectorRegistry::Global().Names();
  const struct {
    const char* name;
    apps::AppSpec (*build)();
  } kApps[] = {
      {"matvec", [] { return apps::BuildMatvec({}); }},
      {"lud", [] { return apps::BuildLud({}); }},
  };

  std::vector<Cell> cells;
  for (const std::string& spec : specs) {
    for (const auto& app : kApps) {
      campaign::CampaignConfig config;
      config.runs = runs;
      config.seed = 4242;
      config.injector = core::ParseInjectorSpec(spec);
      Cell cell;
      cell.injector = spec;
      cell.fault_class =
          core::InjectorRegistry::Global().Find(spec)->fault_class;
      cell.app = app.name;
      cell.secs = bench::TimeSecs([&] {
        campaign::ParallelCampaign c(app.build(), config, jobs);
        cell.result = c.Run();
      });
      cells.push_back(std::move(cell));
      if (!json) std::printf("  ... %s x %s done\n", spec.c_str(), app.name);
    }
  }

  // rank-crash must contain every kill as `crashed`; any infra there means
  // the cluster failed to contain a guest death and the bench fails.
  bool pass = true;
  for (const Cell& c : cells) {
    if (c.injector == "rank-crash" &&
        (c.result.crashed != c.result.runs || c.result.infra != 0)) {
      pass = false;
    }
  }

  if (json) {
    std::printf("{\n  \"bench\": \"fault_matrix\",\n");
    std::printf("  \"runs_per_cell\": %llu,\n  \"cells\": [\n",
                static_cast<unsigned long long>(runs));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      const campaign::CampaignResult& r = c.result;
      std::printf(
          "    {\"injector\": \"%s\", \"fault_class\": \"%s\", "
          "\"app\": \"%s\", \"benign\": %llu, \"terminated\": %llu, "
          "\"sdc\": %llu, \"crashed\": %llu, \"infra\": %llu}%s\n",
          c.injector.c_str(), c.fault_class.c_str(), c.app,
          static_cast<unsigned long long>(r.benign),
          static_cast<unsigned long long>(r.terminated),
          static_cast<unsigned long long>(r.sdc),
          static_cast<unsigned long long>(r.crashed),
          static_cast<unsigned long long>(r.infra),
          i + 1 == cells.size() ? "" : ",");
    }
    std::printf("  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  std::printf("\n%-14s %-18s %-8s %8s %11s %7s %8s %6s %8s\n", "injector",
              "fault class", "app", "benign", "terminated", "sdc", "crashed",
              "infra", "secs");
  std::printf("%s\n", std::string(94, '-').c_str());
  for (const Cell& c : cells) {
    const campaign::CampaignResult& r = c.result;
    std::printf("%-14s %-18s %-8s %7.2f%% %10.2f%% %6.2f%% %7.2f%% %6llu %7.2fs\n",
                c.injector.c_str(), c.fault_class.c_str(), c.app,
                r.Pct(r.benign), r.Pct(r.terminated), r.Pct(r.sdc),
                r.Pct(r.crashed), static_cast<unsigned long long>(r.infra),
                c.secs);
  }
  std::printf("\nrank-crash containment (all trials crashed, zero infra): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// Fig. 10 — Performance overhead of Chaser on Matvec and CLAMR.
//
// Paper methodology (SIV-D): to keep runs comparable, the "fault" writes the
// *original value* back (no bit flips), so execution behaviour is unchanged
// while the whole injection/tracing machinery runs at full cost. Four modes:
//
//   baseline        plain DBT execution (the DECAF++ baseline of the paper)
//   inject          JIT injection armed, propagation tracing disabled
//   trace           propagation tracing enabled, no injection
//   inject+trace    both (the paper's full-Chaser configuration)
//
// Paper numbers: injection alone ~0-2.2% overhead; tracing ~15.7%.
// The google-benchmark rows give the raw times; a summary pass at the end
// prints the normalized ratios in the paper's format.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apps/app.h"
#include "core/chaser_mpi.h"
#include "core/corrupt.h"
#include "guest/operands.h"
#include "core/trigger.h"
#include "mpi/cluster.h"

namespace chaser {
namespace {

/// Writes operands back unchanged but marks them tainted (paper SIV-D).
class OriginalValueInjector final : public core::FaultInjector {
 public:
  void Inject(core::InjectionContext& ctx) override {
    const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
    if (!ops.fp_sources.empty()) {
      ctx.records.push_back(core::TouchFpRegister(ctx.vm, ops.fp_sources[0]));
    } else if (!ops.int_sources.empty()) {
      ctx.records.push_back(core::TouchIntRegister(ctx.vm, ops.int_sources[0]));
    } else {
      ctx.records.push_back(core::TouchIntRegister(ctx.vm, ctx.instr.rd));
    }
  }
  std::string name() const override { return "original-value"; }
};

enum class Mode { kBaseline, kInject, kTrace, kInjectTrace };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kBaseline: return "baseline";
    case Mode::kInject: return "inject";
    case Mode::kTrace: return "trace";
    case Mode::kInjectTrace: return "inject+trace";
  }
  return "?";
}

apps::AppSpec MakeApp(const std::string& which) {
  if (which == "matvec") return apps::BuildMatvec({});
  // CLAMR sized so one job is a few million instructions (paper: -n 250).
  return apps::BuildClamr({.global_rows = 24, .cols = 24, .steps = 20, .ranks = 4});
}

/// One full job execution under the given mode; returns total instructions.
std::uint64_t RunJob(const apps::AppSpec& spec, Mode mode) {
  mpi::Cluster cluster({.num_ranks = spec.num_ranks});
  core::Chaser::Options opts;
  opts.taint_sample_interval = 0;
  core::ChaserMpi chaser(cluster, opts);

  if (mode != Mode::kBaseline) {
    core::InjectionCommand cmd;
    cmd.target_program = spec.program.name;
    cmd.target_classes = spec.fault_classes;
    cmd.trace = mode == Mode::kTrace || mode == Mode::kInjectTrace;
    if (mode == Mode::kInject || mode == Mode::kInjectTrace) {
      // Inject the original value after the 1000th targeted execution
      // (the paper uses fadd at count 1000 for CLAMR).
      cmd.trigger = std::make_shared<core::DeterministicTrigger>(1000);
      cmd.injector = std::make_shared<OriginalValueInjector>();
    }
    chaser.Arm(cmd, {0});
  }
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  if (!job.completed) std::abort();  // behaviour-preserving by construction
  return job.total_instructions;
}

void BM_Overhead(benchmark::State& state, const std::string& app, Mode mode) {
  const apps::AppSpec spec = MakeApp(app);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    instructions = RunJob(spec, mode);
  }
  state.counters["guest_instructions"] = static_cast<double>(instructions);
}

BENCHMARK_CAPTURE(BM_Overhead, matvec_baseline, "matvec", Mode::kBaseline);
BENCHMARK_CAPTURE(BM_Overhead, matvec_inject, "matvec", Mode::kInject);
BENCHMARK_CAPTURE(BM_Overhead, matvec_trace, "matvec", Mode::kTrace);
BENCHMARK_CAPTURE(BM_Overhead, matvec_inject_trace, "matvec", Mode::kInjectTrace);
BENCHMARK_CAPTURE(BM_Overhead, clamr_baseline, "clamr", Mode::kBaseline);
BENCHMARK_CAPTURE(BM_Overhead, clamr_inject, "clamr", Mode::kInject);
BENCHMARK_CAPTURE(BM_Overhead, clamr_trace, "clamr", Mode::kTrace);
BENCHMARK_CAPTURE(BM_Overhead, clamr_inject_trace, "clamr", Mode::kInjectTrace);

}  // namespace
}  // namespace chaser

using chaser::Mode;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Normalized summary in the paper's format (Fig. 10).
  std::printf("\n=== Fig. 10 summary: normalized overhead vs baseline ===\n");
  for (const char* app : {"matvec", "clamr"}) {
    const chaser::apps::AppSpec spec = chaser::MakeApp(app);
    double secs[4] = {};
    for (const Mode mode : {Mode::kBaseline, Mode::kInject, Mode::kTrace,
                            Mode::kInjectTrace}) {
      // Warm once, then time enough repetitions to cover ~1 second.
      const auto warm_start = std::chrono::steady_clock::now();
      chaser::RunJob(spec, mode);
      const double once = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - warm_start)
                              .count();
      const int reps = std::max(3, static_cast<int>(1.0 / std::max(once, 1e-4)));
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) chaser::RunJob(spec, mode);
      const auto stop = std::chrono::steady_clock::now();
      secs[static_cast<int>(mode)] =
          std::chrono::duration<double>(stop - start).count() / reps;
    }
    const double base = secs[0];
    std::printf("%-8s", app);
    for (int m = 0; m < 4; ++m) {
      std::printf("  %-12s %.3f (%.1f%%)", chaser::ModeName(static_cast<Mode>(m)),
                  secs[m] / base, 100.0 * (secs[m] / base - 1.0));
    }
    std::printf("\n");
  }
  std::printf(
      "paper: injection alone ~0-2.2%% overhead; propagation tracing ~15.7%%\n"
      "(CLAMR, 103s traced vs 89s untraced on the 4-node testbed).\n");
  return 0;
}

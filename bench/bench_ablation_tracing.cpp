// Ablation — trace granularity: memory-access-only (Chaser's design) vs
// instruction-level tracing (the rejected alternative).
//
// Paper SII-C(b): "While instruction level traces can record the most
// complete information about fault propagation, the performance penalty is
// unacceptable in practice. In contrast ... Chaser records tainted memory
// access activity only." This bench measures both on a CLAMR run with a
// live fault.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "apps/app.h"
#include "core/chaser_mpi.h"
#include "core/corrupt.h"
#include "core/trigger.h"
#include "guest/operands.h"
#include "mpi/cluster.h"

namespace chaser {
namespace {

/// Original-value injection (behaviour-preserving) so all modes run the
/// same instructions.
class TouchInjector final : public core::FaultInjector {
 public:
  void Inject(core::InjectionContext& ctx) override {
    const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
    if (!ops.fp_sources.empty()) {
      ctx.records.push_back(core::TouchFpRegister(ctx.vm, ops.fp_sources[0]));
    }
  }
  std::string name() const override { return "touch"; }
};

struct RunResult {
  std::uint64_t mem_events = 0;
  std::uint64_t insn_events = 0;
};

RunResult RunOnce(core::Chaser::TraceGranularity granularity) {
  const apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 16, .cols = 16, .steps = 10, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  core::Chaser::Options opts;
  opts.taint_sample_interval = 0;
  opts.granularity = granularity;
  core::ChaserMpi chaser(cluster, opts);
  core::InjectionCommand cmd;
  cmd.target_program = "clamr";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(100);
  cmd.injector = std::make_shared<TouchInjector>();
  chaser.Arm(cmd, {0});
  cluster.Start(spec.program);
  if (!cluster.Run().completed) std::abort();
  RunResult result;
  for (Rank r = 0; r < 4; ++r) {
    const core::TraceLog& log = chaser.rank_chaser(r).trace_log();
    result.mem_events += log.tainted_reads() + log.tainted_writes();
    result.insn_events += log.instructions_traced();
  }
  return result;
}

void BM_TraceGranularity(benchmark::State& state,
                         core::Chaser::TraceGranularity granularity) {
  RunResult result;
  for (auto _ : state) {
    result = RunOnce(granularity);
  }
  state.counters["mem_events"] = static_cast<double>(result.mem_events);
  state.counters["insn_events"] = static_cast<double>(result.insn_events);
}

BENCHMARK_CAPTURE(BM_TraceGranularity, memory_access,
                  core::Chaser::TraceGranularity::kMemoryAccess);
BENCHMARK_CAPTURE(BM_TraceGranularity, instruction,
                  core::Chaser::TraceGranularity::kInstruction);

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Ablation summary: trace granularity (CLAMR, live fault) ===\n");
  using Granularity = chaser::core::Chaser::TraceGranularity;
  double secs[2] = {};
  chaser::RunResult results[2];
  const Granularity modes[2] = {Granularity::kMemoryAccess, Granularity::kInstruction};
  const char* names[2] = {"memory-access only (Chaser)", "instruction-level"};
  for (int m = 0; m < 2; ++m) {
    results[m] = chaser::RunOnce(modes[m]);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) chaser::RunOnce(modes[m]);
    secs[m] = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start).count() / 3.0;
  }
  for (int m = 0; m < 2; ++m) {
    std::printf("  %-28s %.3fx   (%llu memory events, %llu instruction events)\n",
                names[m], secs[m] / secs[0],
                static_cast<unsigned long long>(results[m].mem_events),
                static_cast<unsigned long long>(results[m].insn_events));
  }
  std::printf(
      "memory-access tracing sacrifices per-instruction completeness for a\n"
      "far smaller event volume — the design trade-off of paper SII-C(b).\n");
  return 0;
}

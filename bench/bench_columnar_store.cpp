// Columnar store vs records CSV — the million-trial storage question. A
// synthetic campaign-shaped record stream (benign-majority outcomes, zero
// taint counters on clean trials, clustered hot-path counters, a multi-
// injector v6 mix) is written both ways, then summarized and queried both
// ways, all streaming. The CTR store must hold ≥5x less disk than the CSV
// and aggregate ≥10x faster at 10^5+ records — the margins that make
// million-trial campaigns (ROADMAP: the defense-evaluation axis) routine
// instead of an I/O problem. Both paths stream record-at-a-time, so memory
// stays bounded regardless of record count.
//
// `--json` emits the table for tools/bench_to_json.sh
// (BENCH_columnar_store.json). Fixed seeds make every number reproducible.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/report.h"
#include "common/rng.h"
#include "store/ctr.h"
#include "store/query.h"

namespace {

namespace fs = std::filesystem;
using namespace chaser;
using campaign::Outcome;
using campaign::RunRecord;

// One synthetic trial, shaped like a long-running injected campaign: ~10^9
// guest instructions, outcome mix near the paper's Fig. 6 (benign-heavy),
// taint counters zero unless the fault propagated, hot-path counters
// clustered around app-typical means, and three bundled injector families.
RunRecord SyntheticRecord(Rng& rng, std::uint64_t i) {
  RunRecord r;
  r.run_seed = rng.UniformU64(0, ~0ull);
  const std::uint64_t o = rng.UniformU64(0, 99);
  r.outcome = o < 72   ? Outcome::kBenign
              : o < 87 ? Outcome::kTerminated
              : o < 95 ? Outcome::kSdc
              : o < 99 ? Outcome::kCrashed
                       : Outcome::kInfra;
  const bool clean = r.outcome == Outcome::kBenign;
  r.kind = r.outcome == Outcome::kTerminated ? vm::TerminationKind::kSignaled
                                             : vm::TerminationKind::kExited;
  r.signal = r.outcome == Outcome::kTerminated ? vm::GuestSignal::kSegv
                                               : vm::GuestSignal::kNone;
  r.inject_rank = static_cast<Rank>(rng.UniformU64(0, 3));
  r.failure_rank = clean ? -1 : r.inject_rank;
  r.deadlock = false;
  r.propagated_cross_rank = !clean && rng.UniformU64(0, 3) == 0;
  r.propagated_cross_node = r.propagated_cross_rank && rng.UniformU64(0, 1) == 0;
  r.injections = 1;
  r.tainted_reads = clean ? 0 : 2000 + rng.UniformU64(0, 500);
  r.tainted_writes = clean ? 0 : 1500 + rng.UniformU64(0, 400);
  r.peak_tainted_bytes = clean ? 0 : 4096 + 8 * rng.UniformU64(0, 256);
  r.tainted_output_bytes = r.outcome == Outcome::kSdc ? 64 : 0;
  r.instructions = 1'000'000'000 + rng.UniformU64(0, 40'000);
  r.trigger_nth = rng.UniformU64(1, r.instructions);
  r.flip_bits = 1;
  r.tb_chain_hits = 52'000'000 + rng.UniformU64(0, 9'000);
  r.tlb_hits = 310'000'000 + rng.UniformU64(0, 30'000);
  r.tlb_misses = 41'000 + rng.UniformU64(0, 900);
  r.trace_dropped = 0;
  r.taint_lost = 0;
  r.retries = 0;
  if (r.outcome == Outcome::kInfra) {
    r.infra_error = "TrialEngine: worker lost, attempt 1";
  }
  // A handful of hot injection sites, as golden-site dedup leaves behind.
  r.inject_pc = 0x401000 + 8 * rng.UniformU64(0, 63);
  r.inject_class =
      i % 2 == 0 ? guest::InstrClass::kFadd : guest::InstrClass::kFmul;
  r.sample_weight = 1.0;
  const std::uint64_t inj = rng.UniformU64(0, 2);
  r.injector = inj == 0 ? "bitflip" : (inj == 1 ? "stuckat" : "multibit");
  r.fault_class = inj == 0 ? "transient" : (inj == 1 ? "stuck-at" : "burst");
  return r;
}

std::uint64_t DirBytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    total += static_cast<std::uint64_t>(fs::file_size(e.path()));
  }
  return total;
}

struct Tally {
  std::uint64_t records = 0;
  std::uint64_t outcomes[5] = {};
  std::uint64_t matched = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  // CHASER_BENCH_RUNS scales the record count; the acceptance margin is
  // stated at >=1e5 records, so that is the default.
  const std::uint64_t n = bench::RunsFromEnv(100'000);

  if (!json) {
    bench::PrintHeader(
        "Columnar trial store vs records CSV at campaign scale",
        "storage/aggregation margins behind the million-trial query engine");
    std::printf("records: %llu (synthetic, fixed seed)\n\n",
                static_cast<unsigned long long>(n));
  }

  const std::string work =
      (fs::temp_directory_path() / "chaser_bench_columnar_store").string();
  fs::remove_all(work);
  fs::create_directories(work);
  const std::string csv_path = work + "/records.csv";
  const std::string ctr_path = work + "/records.ctr";

  // ---- write both formats, streaming record-at-a-time -----------------------
  double csv_write_s, ctr_write_s;
  {
    Rng rng(2026);
    std::vector<RunRecord> batch;  // CSV writer takes a vector; chunk it so
    batch.reserve(4096);           // memory stays bounded at any n.
    std::ofstream out(csv_path, std::ios::binary);
    std::string header;
    campaign::AppendRecordsCsvHeader(&header, campaign::kRecordsCsvVersion);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    csv_write_s = bench::TimeSecs([&] {
      std::string buf;
      for (std::uint64_t i = 0; i < n; ++i) {
        campaign::AppendRecordsCsvRow(&buf, SyntheticRecord(rng, i),
                                      campaign::kRecordsCsvVersion);
        if (buf.size() >= (1u << 16)) {
          out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
          buf.clear();
        }
      }
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      out.flush();
    });
  }
  {
    Rng rng(2026);
    store::CtrStoreInfo identity;
    identity.campaign_seed = 2026;
    identity.app = "synthetic";
    store::CtrStoreWriter writer(ctr_path, identity, {});
    ctr_write_s = bench::TimeSecs([&] {
      for (std::uint64_t i = 0; i < n; ++i) {
        writer.Add(SyntheticRecord(rng, i));
      }
      writer.Finish();
    });
  }
  const auto csv_bytes = static_cast<std::uint64_t>(fs::file_size(csv_path));
  const std::uint64_t ctr_bytes = DirBytes(ctr_path);
  const double size_ratio =
      static_cast<double>(csv_bytes) / static_cast<double>(ctr_bytes);

  // ---- summarize: the outcome tally behind `chaser_analyze summarize` -------
  Tally csv_sum, ctr_sum;
  const double csv_sum_s = bench::TimeSecs([&] {
    std::ifstream in(csv_path, std::ios::binary);
    campaign::RecordsCsvReader reader(in);
    RunRecord r;
    while (reader.Next(&r)) {
      ++csv_sum.records;
      csv_sum.outcomes[static_cast<int>(r.outcome)]++;
    }
  });
  const double ctr_sum_s = bench::TimeSecs([&] {
    store::CtrStoreScanner scanner(
        ctr_path, store::MaskOf(store::kColRunSeed) |
                      store::MaskOf(store::kColOutcome) |
                      store::MaskOf(store::kColFlags) |
                      store::MaskOf(store::kColSampleWeight));
    RunRecord r;
    while (scanner.Next(&r)) {
      ++ctr_sum.records;
      ctr_sum.outcomes[static_cast<int>(r.outcome)]++;
    }
  });
  const double sum_speedup = csv_sum_s / ctr_sum_s;

  // ---- query: the same filtered group-by + top-k sites, CSV streaming vs
  // the store's column-masked scan ---------------------------------------------
  const store::TrialFilter filter =
      store::ParseTrialFilter("outcome=sdc,injector=stuckat");
  Tally csv_q;
  std::map<std::string, std::uint64_t> csv_groups;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> csv_sites;
  const double csv_q_s = bench::TimeSecs([&] {
    std::ifstream in(csv_path, std::ios::binary);
    campaign::RecordsCsvReader reader(in);
    RunRecord r;
    while (reader.Next(&r)) {
      ++csv_q.records;
      if (!store::MatchesFilter(filter, r)) continue;
      ++csv_q.matched;
      csv_groups[r.injector.empty() ? "(default)" : r.injector]++;
      csv_sites[{r.inject_pc, static_cast<std::uint64_t>(r.inject_class)}]++;
    }
  });
  store::QueryResult ctr_q;
  const double ctr_q_s = bench::TimeSecs([&] {
    store::QueryOptions opts;
    opts.filter = filter;
    opts.group_by = store::GroupBy::kInjector;
    opts.top_k = 10;
    ctr_q = store::RunQuery(ctr_path, opts);
  });
  const double query_speedup = csv_q_s / ctr_q_s;

  // ---- self-checks ----------------------------------------------------------
  bool pass = true;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_columnar_store: FAIL %s\n", what);
      pass = false;
    }
  };
  check(csv_sum.records == n && ctr_sum.records == n,
        "both paths saw every record");
  for (int i = 0; i < 5; ++i) {
    check(csv_sum.outcomes[i] == ctr_sum.outcomes[i],
          "outcome tallies identical across formats");
  }
  check(ctr_q.matched == csv_q.matched && ctr_q.scanned == n,
        "query matched the CSV-side filter count");
  check(ctr_q.groups.size() == csv_groups.size(),
        "group-by buckets identical across formats");
  for (const auto& [label, agg] : ctr_q.groups) {
    const auto it = csv_groups.find(label);
    check(it != csv_groups.end() && it->second == agg.trials,
          "per-group trial counts identical across formats");
  }
  check(ctr_q.top_sites.size() == std::min<std::size_t>(10, csv_sites.size()),
        "top-k site count matches the CSV-side site map");
  check(size_ratio >= 5.0, "size ratio >= 5x");
  check(sum_speedup >= 10.0, "summarize speedup >= 10x");
  check(query_speedup >= 10.0, "query speedup >= 10x");

  if (json) {
    std::printf(
        "{\n  \"bench\": \"columnar_store\",\n  \"records\": %llu,\n"
        "  \"csv_bytes\": %llu,\n  \"ctr_bytes\": %llu,\n"
        "  \"size_ratio\": %.2f,\n"
        "  \"csv_write_s\": %.3f,\n  \"ctr_write_s\": %.3f,\n"
        "  \"csv_summarize_s\": %.3f,\n  \"ctr_summarize_s\": %.3f,\n"
        "  \"summarize_speedup\": %.1f,\n"
        "  \"csv_query_s\": %.3f,\n  \"ctr_query_s\": %.3f,\n"
        "  \"query_speedup\": %.1f,\n"
        "  \"streaming\": true,\n  \"pass\": %s\n}\n",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(csv_bytes),
        static_cast<unsigned long long>(ctr_bytes), size_ratio, csv_write_s,
        ctr_write_s, csv_sum_s, ctr_sum_s, sum_speedup, csv_q_s, ctr_q_s,
        query_speedup, pass ? "true" : "false");
  } else {
    std::printf("on disk      csv %10llu B   ctr %10llu B   %.2fx smaller\n",
                static_cast<unsigned long long>(csv_bytes),
                static_cast<unsigned long long>(ctr_bytes), size_ratio);
    std::printf("write        csv %8.3f s   ctr %8.3f s\n", csv_write_s,
                ctr_write_s);
    std::printf("summarize    csv %8.3f s   ctr %8.3f s   %.1fx faster\n",
                csv_sum_s, ctr_sum_s, sum_speedup);
    std::printf("query        csv %8.3f s   ctr %8.3f s   %.1fx faster\n",
                csv_q_s, ctr_q_s, query_speedup);
    std::printf("=> %s\n", pass ? "PASS" : "FAIL");
  }
  fs::remove_all(work);
  return pass ? 0 : 1;
}

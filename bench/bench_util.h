// Shared helpers for the reproduction benches.
//
// Campaign sizes default to a few hundred runs so the full harness finishes
// in minutes; set CHASER_BENCH_RUNS to scale toward the paper's 3000-5000.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/strings.h"

namespace chaser::bench {

inline std::uint64_t RunsFromEnv(std::uint64_t def) {
  const char* env = std::getenv("CHASER_BENCH_RUNS");
  if (env == nullptr) return def;
  std::uint64_t v = 0;
  if (!ParseU64(env, &v) || v == 0) return def;
  return v;
}

/// Worker count for the parallel campaign driver: CHASER_BENCH_JOBS, or all
/// hardware threads.
inline unsigned JobsFromEnv() {
  const char* env = std::getenv("CHASER_BENCH_JOBS");
  if (env != nullptr) {
    std::uint64_t v = 0;
    if (ParseU64(env, &v) && v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Wall-clock seconds of `fn()`.
template <typename Fn>
double TimeSecs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace chaser::bench

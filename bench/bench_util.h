// Shared helpers for the reproduction benches.
//
// Campaign sizes default to a few hundred runs so the full harness finishes
// in minutes; set CHASER_BENCH_RUNS to scale toward the paper's 3000-5000.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"

namespace chaser::bench {

inline std::uint64_t RunsFromEnv(std::uint64_t def) {
  const char* env = std::getenv("CHASER_BENCH_RUNS");
  if (env == nullptr) return def;
  std::uint64_t v = 0;
  if (!ParseU64(env, &v) || v == 0) return def;
  return v;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace chaser::bench

// Sampling validation — exhaustive-vs-sampled outcome-rate cross-check.
//
// An importance-sampled campaign is only useful if its estimates are right.
// This bench runs, for two guest apps (matvec, lud):
//
//   exhaustive  a large invocation-uniform campaign standing in for the
//               full fault space (one trial per golden invocation x 64 bit
//               positions is the paper-style single-bit model). The weighted
//               draw IS the invocation-uniform distribution (weight = 1), so
//               the truth run uses it with no stop rule and takes its rates
//               from the raw outcome counters — independent of the estimator
//               under test. The legacy uniform policy would NOT do: it picks
//               a rank first, over-representing low-mass ranks.
//   sampled     the same campaign under `--sample weighted --stop-ci 0.02`,
//               capped at the exhaustive space size
//
// and then asserts the tentpole acceptance criteria:
//   1. every exhaustive outcome rate lies inside the sampled campaign's
//      reported 95% Wilson interval, and
//   2. the sampled campaign committed at most 25% of the exhaustive trial
//      count before its intervals converged.
//
// `--json` emits the table for tools/bench_to_json.sh
// (BENCH_sampling_validation.json). Fixed seeds make every number here
// reproducible bit for bit.
#include <cstdio>
#include <cstring>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/sampling.h"

namespace chaser {
namespace {

constexpr double kStopCi = 0.02;
constexpr double kMaxTrialFraction = 0.25;

struct SeriesRow {
  const char* name;
  double exhaustive;           // rate measured by the uniform campaign
  campaign::WilsonInterval ci; // the sampled campaign's interval
  bool contained;
};

struct AppRow {
  const char* app;
  std::uint64_t exhaustive_space;  // invocations x 64 bit positions
  std::uint64_t exhaustive_runs;   // uniform trials actually run
  std::uint64_t sampled_trials;    // trials the stop rule committed
  bool stopped_early;
  double trial_fraction;           // sampled_trials / exhaustive_space
  SeriesRow series[4];
  bool pass;
};

AppRow ValidateApp(const char* name, apps::AppSpec spec,
                   std::uint64_t exhaustive_runs, unsigned jobs) {
  AppRow row{};
  row.app = name;

  // Exhaustive ground truth: invocation-uniform draws (weighted policy,
  // weight = 1, no stop rule), rates computed from the raw outcome counters
  // over the non-infra trials (the estimator excludes infra the same way).
  campaign::CampaignConfig config;
  config.seed = 4242;
  config.runs = exhaustive_runs;
  config.trace = false;
  config.sample_policy = campaign::SamplePolicy::kWeighted;
  campaign::ParallelCampaign exhaustive(spec, config, jobs);
  exhaustive.RunGolden();
  row.exhaustive_space = 0;
  for (const Rank r : exhaustive.inject_ranks()) {
    row.exhaustive_space += exhaustive.golden_targeted_execs(r) * 64;
  }
  const campaign::CampaignResult truth = exhaustive.Run();
  row.exhaustive_runs = truth.runs;
  std::uint64_t hangs = 0;
  for (const campaign::RunRecord& rec : truth.records) {
    if (rec.deadlock) ++hangs;
  }
  const double n = static_cast<double>(truth.runs - truth.infra);
  const double ex_benign = static_cast<double>(truth.benign) / n;
  const double ex_terminated = static_cast<double>(truth.terminated) / n;
  const double ex_sdc = static_cast<double>(truth.sdc) / n;
  const double ex_hang = static_cast<double>(hangs) / n;

  // Sampled: weighted policy with the CI-width stop, capped at the
  // exhaustive space size — the budget a truly exhaustive sweep would need.
  campaign::CampaignConfig sampled_config;
  sampled_config.seed = 77;
  sampled_config.runs = row.exhaustive_space;
  sampled_config.trace = false;
  sampled_config.keep_records = false;
  sampled_config.sample_policy = campaign::SamplePolicy::kWeighted;
  sampled_config.stop_ci = kStopCi;
  campaign::ParallelCampaign sampled(std::move(spec), sampled_config, jobs);
  const campaign::CampaignResult est = sampled.Run();
  row.sampled_trials = est.runs;
  row.stopped_early = est.stopped_early;
  row.trial_fraction = static_cast<double>(est.runs) /
                       static_cast<double>(row.exhaustive_space);

  row.series[0] = {"benign", ex_benign, est.est_benign, false};
  row.series[1] = {"terminated", ex_terminated, est.est_terminated, false};
  row.series[2] = {"sdc", ex_sdc, est.est_sdc, false};
  row.series[3] = {"hang", ex_hang, est.est_hang, false};
  row.pass = row.trial_fraction <= kMaxTrialFraction && row.stopped_early;
  for (SeriesRow& s : row.series) {
    s.contained = s.exhaustive >= s.ci.lo && s.exhaustive <= s.ci.hi;
    row.pass = row.pass && s.contained;
  }
  return row;
}

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  using namespace chaser;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const unsigned jobs = bench::JobsFromEnv();

  if (!json) {
    bench::PrintHeader(
        "Sampling validation: exhaustive vs --sample weighted --stop-ci 0.02",
        "importance-sampling correctness (unbiased rates, early stop)");
    std::printf("workers: %u\n\n", jobs);
  }

  // Exhaustive-rate budgets sized so the ground truth's own noise is well
  // under the sampled CI half-width (see sd = sqrt(pq/n)); scalable via
  // CHASER_BENCH_RUNS for quick smoke passes.
  AppRow rows[] = {
      ValidateApp("matvec", apps::BuildMatvec({}), bench::RunsFromEnv(20000),
                  jobs),
      ValidateApp("lud", apps::BuildLud({}), bench::RunsFromEnv(8000), jobs),
  };

  bool pass = true;
  for (const AppRow& row : rows) pass = pass && row.pass;

  if (json) {
    std::printf("{\n  \"bench\": \"sampling_validation\",\n");
    std::printf("  \"policy\": \"weighted\",\n  \"stop_ci\": %.4f,\n", kStopCi);
    std::printf("  \"max_trial_fraction\": %.2f,\n  \"apps\": [\n",
                kMaxTrialFraction);
    for (std::size_t i = 0; i < 2; ++i) {
      const AppRow& row = rows[i];
      std::printf(
          "    {\"app\": \"%s\", \"exhaustive_space\": %llu, "
          "\"exhaustive_runs\": %llu, \"sampled_trials\": %llu, "
          "\"stopped_early\": %s, \"trial_fraction\": %.4f, \"rates\": {",
          row.app, static_cast<unsigned long long>(row.exhaustive_space),
          static_cast<unsigned long long>(row.exhaustive_runs),
          static_cast<unsigned long long>(row.sampled_trials),
          row.stopped_early ? "true" : "false", row.trial_fraction);
      for (std::size_t s = 0; s < 4; ++s) {
        std::printf(
            "%s\"%s\": {\"exhaustive\": %.6f, \"lo\": %.6f, \"hi\": %.6f, "
            "\"contained\": %s}",
            s == 0 ? "" : ", ", row.series[s].name, row.series[s].exhaustive,
            row.series[s].ci.lo, row.series[s].ci.hi,
            row.series[s].contained ? "true" : "false");
      }
      std::printf("}, \"pass\": %s}%s\n", row.pass ? "true" : "false",
                  i == 0 ? "," : "");
    }
    std::printf("  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  for (const AppRow& row : rows) {
    std::printf(
        "%s: exhaustive space %llu trials (uniform sample of %llu), "
        "sampled stopped at %llu (%.1f%%, early stop: %s)\n",
        row.app, static_cast<unsigned long long>(row.exhaustive_space),
        static_cast<unsigned long long>(row.exhaustive_runs),
        static_cast<unsigned long long>(row.sampled_trials),
        100.0 * row.trial_fraction, row.stopped_early ? "yes" : "NO");
    std::printf("  %-10s %12s %24s\n", "outcome", "exhaustive",
                "sampled 95% wilson");
    for (const SeriesRow& s : row.series) {
      std::printf("  %-10s %11.2f%%   [%6.2f%%, %6.2f%%]   %s\n", s.name,
                  100.0 * s.exhaustive, 100.0 * s.ci.lo, 100.0 * s.ci.hi,
                  s.contained ? "contained" : "OUTSIDE (BUG)");
    }
    std::printf("  => %s\n\n", row.pass ? "PASS" : "FAIL");
  }
  std::printf("overall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// Ablation — the JIT-grade hot path, layer by layer.
//
// Times an end-to-end serial injection campaign (golden + trials, tracing on)
// with each hot-path optimisation enabled cumulatively on top of the last:
//
//   baseline        switch dispatch, no TB chaining, no software TLB,
//                   per-trial private translation caches
//   +chain          patch TB successor pointers (QEMU goto_tb)
//   +tlb            flat direct-mapped TLB in front of Memory::Translate
//   +shared-cache   one process-wide translation cache reused across trials
//   +threaded       computed-goto dispatch (falls back to switch when the
//                   build lacks CHASER_THREADED_DISPATCH)
//
// Every configuration produces bit-identical campaign results — this file
// measures only the speed of getting there. `--json` emits the summary as a
// machine-readable object for tools/bench_to_json.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "vm/vm.h"

namespace chaser {
namespace {

struct HotPathConfig {
  const char* name;
  bool chain_tbs;
  bool mem_tlb;
  bool share_cache;
  vm::Dispatch dispatch;
};

constexpr HotPathConfig kLadder[] = {
    {"baseline", false, false, false, vm::Dispatch::kSwitch},
    {"+chain", true, false, false, vm::Dispatch::kSwitch},
    {"+tlb", true, true, false, vm::Dispatch::kSwitch},
    {"+shared-cache", true, true, true, vm::Dispatch::kSwitch},
    {"+threaded", true, true, true, vm::Dispatch::kAuto},
};
constexpr int kConfigs = static_cast<int>(sizeof(kLadder) / sizeof(kLadder[0]));

struct Workload {
  const char* app;
  std::uint64_t runs;
};

constexpr Workload kWorkloads[] = {{"matvec", 120}, {"lud", 60}};
constexpr int kNumWorkloads =
    static_cast<int>(sizeof(kWorkloads) / sizeof(kWorkloads[0]));

apps::AppSpec BuildApp(const char* name) {
  if (std::strcmp(name, "lud") == 0) return apps::BuildLud({});
  return apps::BuildMatvec({});
}

/// One full serial campaign under `hp`; returns wall milliseconds.
double TimeCampaignOnce(const Workload& w, const HotPathConfig& hp) {
  campaign::CampaignConfig config;
  config.runs = w.runs;
  config.seed = 42;
  config.chain_tbs = hp.chain_tbs;
  config.mem_tlb = hp.mem_tlb;
  config.share_tb_cache = hp.share_cache;
  config.dispatch = hp.dispatch;
  campaign::Campaign c(BuildApp(w.app), config);
  const auto start = std::chrono::steady_clock::now();
  c.Run();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  using namespace chaser;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const int reps = 5;
  const int pairs = 7;

  // Methodology, tuned for hosts with coarse frequency drift (CI containers):
  //
  //  * One untimed warm-up pass per workload, so page-cache/allocator
  //    cold-start cost is not attributed to whichever config runs first.
  //  * Ladder times: whole-config campaigns interleaved round-robin across
  //    repetitions (config order never correlates with drift), min-of-N —
  //    campaign work is deterministic, so the minimum is the run with the
  //    least interference.
  //  * Headline speedup: baseline and fully-optimised campaigns alternated
  //    back-to-back; each adjacent pair yields one ratio, and the median
  //    ratio is reported. Drift that is slow compared to one campaign
  //    (~100 ms) inflates or deflates both halves of a pair together, so
  //    the ratio survives noise that poisons absolute times.
  double times[kNumWorkloads][kConfigs] = {};
  double speedups[kNumWorkloads] = {};
  for (int w = 0; w < kNumWorkloads; ++w) {
    (void)TimeCampaignOnce(kWorkloads[w], kLadder[kConfigs - 1]);  // warm-up
    (void)TimeCampaignOnce(kWorkloads[w], kLadder[0]);             // warm-up
    for (int r = 0; r < reps; ++r) {
      for (int c = 0; c < kConfigs; ++c) {
        const double ms = TimeCampaignOnce(kWorkloads[w], kLadder[c]);
        if (r == 0 || ms < times[w][c]) times[w][c] = ms;
      }
    }
    std::vector<double> ratios;
    for (int p = 0; p < pairs; ++p) {
      const double base = TimeCampaignOnce(kWorkloads[w], kLadder[0]);
      const double opt = TimeCampaignOnce(kWorkloads[w], kLadder[kConfigs - 1]);
      ratios.push_back(base / opt);
    }
    std::sort(ratios.begin(), ratios.end());
    speedups[w] = ratios[ratios.size() / 2];
  }

  if (json) {
    std::printf("{\n  \"bench\": \"ablation_dispatch\",\n");
    std::printf("  \"threaded_dispatch_available\": %s,\n",
                vm::Vm::ThreadedDispatchAvailable() ? "true" : "false");
    std::printf("  \"workloads\": [\n");
    double min_speedup = 0.0;
    for (int w = 0; w < kNumWorkloads; ++w) {
      const double speedup = speedups[w];
      if (w == 0 || speedup < min_speedup) min_speedup = speedup;
      std::printf("    {\"app\": \"%s\", \"runs\": %llu, \"jobs\": 1, "
                  "\"configs\": [",
                  kWorkloads[w].app,
                  static_cast<unsigned long long>(kWorkloads[w].runs));
      for (int c = 0; c < kConfigs; ++c) {
        std::printf("%s{\"name\": \"%s\", \"ms\": %.2f}", c == 0 ? "" : ", ",
                    kLadder[c].name, times[w][c]);
      }
      std::printf("], \"baseline_ms\": %.2f, \"optimized_ms\": %.2f, "
                  "\"speedup\": %.2f}%s\n",
                  times[w][0], times[w][kConfigs - 1], speedup,
                  w + 1 < kNumWorkloads ? "," : "");
    }
    std::printf("  ],\n  \"min_speedup\": %.2f\n}\n", min_speedup);
    return 0;
  }

  std::printf("=== Ablation: hot-path layers (serial campaign, tracing on) ===\n");
  std::printf("threaded dispatch available: %s\n\n",
              vm::Vm::ThreadedDispatchAvailable() ? "yes" : "no (switch fallback)");
  for (int w = 0; w < kNumWorkloads; ++w) {
    std::printf("%s, %llu runs:\n", kWorkloads[w].app,
                static_cast<unsigned long long>(kWorkloads[w].runs));
    for (int c = 0; c < kConfigs; ++c) {
      std::printf("  %-14s %8.2f ms   %.2fx vs baseline\n", kLadder[c].name,
                  times[w][c], times[w][0] / times[w][c]);
    }
    std::printf("  paired speedup (median of %d baseline/optimized pairs): %.2fx\n\n",
                pairs, speedups[w]);
  }
  return 0;
}

// Fig. 9 — Distribution of the number of tainted memory WRITES within a
// single run across all MPI ranks, over all fault-injection runs of CLAMR.
//
// Paper shape: heavily skewed toward small counts (most cases under ~1k
// writes), with a tail of runs where the fault keeps being rewritten.
#include <cstdio>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/histogram.h"

int main() {
  using namespace chaser;
  bench::PrintHeader(
      "Fig. 9: distribution of # tainted memory writes per run (CLAMR)",
      "paper Fig. 9");
  const std::uint64_t runs = bench::RunsFromEnv(300);

  campaign::CampaignConfig config;
  config.runs = runs;
  config.seed = 99;
  config.inject_ranks = {0, 1, 2, 3};
  campaign::Campaign c(apps::BuildClamr({}), config);
  const campaign::CampaignResult result = c.Run();

  std::uint64_t max_writes = 0;
  for (const campaign::RunRecord& rec : result.records) {
    max_writes = std::max(max_writes, rec.tainted_writes);
  }
  const std::uint64_t width = std::max<std::uint64_t>(1, max_writes / 20);
  Histogram h(width, 21);
  std::uint64_t under_median_bucket = 0;
  for (const campaign::RunRecord& rec : result.records) {
    h.Add(rec.tainted_writes);
    if (rec.tainted_writes <= max_writes / 10) ++under_median_bucket;
  }

  std::printf("%s\n", h.Render("# tainted memory writes per run").c_str());
  std::printf(
      "skew check (paper: the majority of cases sit in the lowest bucket):\n"
      "  runs with <= max/10 tainted writes: %5.2f%%\n"
      "  median (approx):                    %llu\n"
      "  p90 (approx):                       %llu\n",
      100.0 * static_cast<double>(under_median_bucket) /
          static_cast<double>(result.runs),
      static_cast<unsigned long long>(h.ApproxQuantile(0.5)),
      static_cast<unsigned long long>(h.ApproxQuantile(0.9)));
  return 0;
}

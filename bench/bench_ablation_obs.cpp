// Ablation — what observability costs, channel by channel.
//
// Times an end-to-end serial injection campaign (golden + trials, tracing on)
// with the telemetry layer in each of its states:
//
//   off       CampaignConfig::telemetry == nullptr — every ScopedPhase is a
//             thread_local load + branch; this is the product's default
//   quiet     Telemetry attached, but no trace/status/metrics outputs: phase
//             histograms and registry counters are live, spans are not
//   +status   quiet + live status.json rewrites (auto cadence)
//   +trace    +status + Chrome trace-event spans buffered and written
//
// Every configuration produces bit-identical campaign results — telemetry
// only observes. The headline number is the off-vs-quiet overhead: the
// median paired ratio must stay under 2% (the guard DESIGN.md §5.5 cites),
// or the "near-free when disabled... cheap when enabled" claim is broken.
// `--json` emits the summary for tools/bench_to_json.sh.
#include <ctime>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "obs/telemetry.h"

namespace chaser {
namespace {

enum class ObsMode { kOff, kQuiet, kStatus, kTrace };

struct ObsConfig {
  const char* name;
  ObsMode mode;
};

constexpr ObsConfig kLadder[] = {
    {"off", ObsMode::kOff},
    {"quiet", ObsMode::kQuiet},
    {"+status", ObsMode::kStatus},
    {"+trace", ObsMode::kTrace},
};
constexpr int kConfigs = static_cast<int>(sizeof(kLadder) / sizeof(kLadder[0]));

struct Workload {
  const char* app;
  std::uint64_t runs;
};

constexpr Workload kWorkloads[] = {{"matvec", 480}, {"lud", 120}};
constexpr int kNumWorkloads =
    static_cast<int>(sizeof(kWorkloads) / sizeof(kWorkloads[0]));

apps::AppSpec BuildApp(const char* name) {
  if (std::strcmp(name, "lud") == 0) return apps::BuildLud({});
  return apps::BuildMatvec({});
}

std::string ScratchDir() {
  static const std::string dir = [] {
    const std::string d =
        (std::filesystem::temp_directory_path() / "chaser_bench_obs").string();
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

double CpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

/// One full serial campaign under `mode`; returns process-CPU milliseconds.
/// CPU time, not wall time: a serial campaign is pure compute and quiet-mode
/// telemetry cost is pure compute, so CPU time measures the overhead while
/// staying immune to the scheduler preemption that makes sub-2% wall-clock
/// deltas unresolvable on a shared host. Telemetry construction and Finish()
/// are inside the timed region — a real run pays for both.
double TimeCampaignOnce(const Workload& w, ObsMode mode) {
  campaign::CampaignConfig config;
  config.runs = w.runs;
  config.seed = 42;
  const double start = CpuMs();
  {
    std::unique_ptr<obs::Telemetry> telemetry;
    if (mode != ObsMode::kOff) {
      obs::TelemetryOptions opts;
      if (mode == ObsMode::kStatus || mode == ObsMode::kTrace) {
        opts.status_path = ScratchDir() + "/status.json";
      }
      if (mode == ObsMode::kTrace) {
        opts.trace_path = ScratchDir() + "/trace.json";
      }
      telemetry = std::make_unique<obs::Telemetry>(opts);
      config.telemetry = telemetry.get();
    }
    campaign::Campaign c(BuildApp(w.app), config);
    c.Run();
    if (telemetry != nullptr) telemetry->Finish();
  }
  return CpuMs() - start;
}

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  using namespace chaser;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const int reps = 5;
  const int pairs = 5;  // blocks of 5 interleaved off/quiet run-pairs each

  // Drift-hardened methodology (a tighter cousin of bench_ablation_dispatch,
  // since a <2% guard needs more resolution than a speedup headline): untimed
  // warm-ups, round-robin min-of-N ladder times, and a paired min-of-block
  // median for the off-vs-quiet headline.
  double times[kNumWorkloads][kConfigs] = {};
  double overhead_pct[kNumWorkloads] = {};
  for (int w = 0; w < kNumWorkloads; ++w) {
    (void)TimeCampaignOnce(kWorkloads[w], ObsMode::kOff);    // warm-up
    (void)TimeCampaignOnce(kWorkloads[w], ObsMode::kTrace);  // warm-up
    for (int r = 0; r < reps; ++r) {
      for (int c = 0; c < kConfigs; ++c) {
        const double ms = TimeCampaignOnce(kWorkloads[w], kLadder[c].mode);
        if (r == 0 || ms < times[w][c]) times[w][c] = ms;
      }
    }
    // Resolving a sub-2% delta needs noise well under 1%. Two defenses:
    // noise is one-sided (preemption and frequency droop only slow a run
    // down), so each block takes the MIN of 5 runs per mode; and the off and
    // quiet runs are interleaved within a block so both mins sample the same
    // frequency window and slow drift cancels in the ratio. The headline is
    // the median block ratio.
    std::vector<double> ratios;
    for (int p = 0; p < pairs; ++p) {
      double off = 0.0, quiet = 0.0;
      for (int i = 0; i < 5; ++i) {
        const bool off_first = (p + i) % 2 == 0;
        const double a =
            TimeCampaignOnce(kWorkloads[w],
                             off_first ? ObsMode::kOff : ObsMode::kQuiet);
        const double b =
            TimeCampaignOnce(kWorkloads[w],
                             off_first ? ObsMode::kQuiet : ObsMode::kOff);
        const double o = off_first ? a : b;
        const double q = off_first ? b : a;
        off = i == 0 ? o : std::min(off, o);
        quiet = i == 0 ? q : std::min(quiet, q);
      }
      ratios.push_back(quiet / off);
    }
    std::sort(ratios.begin(), ratios.end());
    overhead_pct[w] = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  }

  double max_overhead = 0.0;
  for (int w = 0; w < kNumWorkloads; ++w) {
    if (w == 0 || overhead_pct[w] > max_overhead) max_overhead = overhead_pct[w];
  }

  if (json) {
    std::printf("{\n  \"bench\": \"ablation_obs\",\n");
    std::printf("  \"workloads\": [\n");
    for (int w = 0; w < kNumWorkloads; ++w) {
      std::printf("    {\"app\": \"%s\", \"runs\": %llu, \"jobs\": 1, "
                  "\"configs\": [",
                  kWorkloads[w].app,
                  static_cast<unsigned long long>(kWorkloads[w].runs));
      for (int c = 0; c < kConfigs; ++c) {
        std::printf("%s{\"name\": \"%s\", \"ms\": %.2f}", c == 0 ? "" : ", ",
                    kLadder[c].name, times[w][c]);
      }
      std::printf("], \"overhead_quiet_vs_off_pct\": %.2f}%s\n",
                  overhead_pct[w], w + 1 < kNumWorkloads ? "," : "");
    }
    std::printf("  ],\n  \"max_overhead_pct\": %.2f,\n", max_overhead);
    std::printf("  \"guard_under_pct\": 2.0,\n");
    std::printf("  \"guard_passed\": %s\n}\n",
                max_overhead < 2.0 ? "true" : "false");
    return 0;
  }

  std::printf(
      "=== Ablation: telemetry channels (serial campaign, tracing on) ===\n\n");
  for (int w = 0; w < kNumWorkloads; ++w) {
    std::printf("%s, %llu runs:\n", kWorkloads[w].app,
                static_cast<unsigned long long>(kWorkloads[w].runs));
    for (int c = 0; c < kConfigs; ++c) {
      std::printf("  %-8s %8.2f ms   %+.2f%% vs off\n", kLadder[c].name,
                  times[w][c], (times[w][c] / times[w][0] - 1.0) * 100.0);
    }
    std::printf(
        "  paired overhead, quiet vs off (median of %d blocks): %+.2f%%\n\n",
        pairs, overhead_pct[w]);
  }
  std::printf("max paired overhead: %+.2f%% (guard: < 2%%) — %s\n",
              max_overhead, max_overhead < 2.0 ? "PASS" : "FAIL");
  return max_overhead < 2.0 ? 0 : 1;
}

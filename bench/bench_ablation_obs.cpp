// Ablation — what observability costs, channel by channel.
//
// Times an end-to-end serial injection campaign (golden + trials, tracing on)
// with the telemetry layer in each of its states:
//
//   off       CampaignConfig::telemetry == nullptr — every ScopedPhase is a
//             thread_local load + branch; this is the product's default
//   quiet     Telemetry attached, but no trace/status/metrics outputs: phase
//             histograms and registry counters are live, spans are not
//   +export   quiet + a live HTTP scrape server (--obs-port 0) with an
//             in-process scraper hitting /metrics every ~100ms — the
//             observability-plane configuration a watched fleet worker runs
//   +status   quiet + live status.json rewrites (auto cadence)
//   +trace    +status + Chrome trace-event spans buffered and written
//
// Every configuration produces bit-identical campaign results — telemetry
// only observes. The headline numbers are the off-vs-quiet and the
// off-vs-export overheads: both median paired ratios must stay under 2%
// (the guard DESIGN.md §5.5 and §5.10 cite), or the "near-free when
// disabled... cheap when enabled/watched" claim is broken.
// `--json` emits the summary for tools/bench_to_json.sh.
#include <ctime>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "obs/export.h"
#include "obs/telemetry.h"

namespace chaser {
namespace {

enum class ObsMode { kOff, kQuiet, kExport, kStatus, kTrace };

struct ObsConfig {
  const char* name;
  ObsMode mode;
};

constexpr ObsConfig kLadder[] = {
    {"off", ObsMode::kOff},
    {"quiet", ObsMode::kQuiet},
    {"+export", ObsMode::kExport},
    {"+status", ObsMode::kStatus},
    {"+trace", ObsMode::kTrace},
};
constexpr int kConfigs = static_cast<int>(sizeof(kLadder) / sizeof(kLadder[0]));

struct Workload {
  const char* app;
  std::uint64_t runs;
};

constexpr Workload kWorkloads[] = {{"matvec", 480}, {"lud", 120}};
constexpr int kNumWorkloads =
    static_cast<int>(sizeof(kWorkloads) / sizeof(kWorkloads[0]));

apps::AppSpec BuildApp(const char* name) {
  if (std::strcmp(name, "lud") == 0) return apps::BuildLud({});
  return apps::BuildMatvec({});
}

std::string ScratchDir() {
  static const std::string dir = [] {
    const std::string d =
        (std::filesystem::temp_directory_path() / "chaser_bench_obs").string();
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

double CpuMs() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

/// One full serial campaign under `mode`; returns process-CPU milliseconds.
/// CPU time, not wall time: a serial campaign is pure compute and quiet-mode
/// telemetry cost is pure compute, so CPU time measures the overhead while
/// staying immune to the scheduler preemption that makes sub-2% wall-clock
/// deltas unresolvable on a shared host. Telemetry construction and Finish()
/// are inside the timed region — a real run pays for both.
double TimeCampaignOnce(const Workload& w, ObsMode mode) {
  campaign::CampaignConfig config;
  config.runs = w.runs;
  config.seed = 42;
  const double start = CpuMs();
  {
    std::unique_ptr<obs::Telemetry> telemetry;
    if (mode != ObsMode::kOff) {
      obs::TelemetryOptions opts;
      if (mode == ObsMode::kExport) opts.obs_port = 0;  // ephemeral
      if (mode == ObsMode::kStatus || mode == ObsMode::kTrace) {
        opts.status_path = ScratchDir() + "/status.json";
      }
      if (mode == ObsMode::kTrace) {
        opts.trace_path = ScratchDir() + "/trace.json";
      }
      telemetry = std::make_unique<obs::Telemetry>(opts);
      config.telemetry = telemetry.get();
    }
    // The +export row pays for being WATCHED, not just for listening: an
    // in-process scraper hammers /metrics at a dashboard-like ~100ms
    // cadence for the campaign's whole duration. CLOCK_PROCESS_CPUTIME_ID
    // charges the scraper thread and the serving thread to the same total.
    std::atomic<bool> stop{false};
    std::thread scraper;
    if (mode == ObsMode::kExport) {
      const std::string endpoint = telemetry->obs_endpoint();
      const std::uint16_t port = static_cast<std::uint16_t>(
          std::stoi(endpoint.substr(endpoint.rfind(':') + 1)));
      scraper = std::thread([port, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
          try {
            (void)obs::HttpGet("127.0.0.1", port, "/metrics");
          } catch (const ChaserError&) {
            // Scrape racing teardown; the campaign result is unaffected.
          }
          usleep(100 * 1000);
        }
      });
    }
    campaign::Campaign c(BuildApp(w.app), config);
    c.Run();
    if (scraper.joinable()) {
      stop.store(true);
      scraper.join();
    }
    if (telemetry != nullptr) telemetry->Finish();
  }
  return CpuMs() - start;
}

/// Median paired overhead (%) of `mode` vs off over `pairs` blocks: each
/// block interleaves off/mode runs and takes min-of-5 per side (noise is
/// one-sided), so slow frequency drift cancels in the ratio.
double PairedOverheadPct(const Workload& w, ObsMode mode, int pairs) {
  std::vector<double> ratios;
  for (int p = 0; p < pairs; ++p) {
    double off = 0.0, on = 0.0;
    for (int i = 0; i < 5; ++i) {
      const bool off_first = (p + i) % 2 == 0;
      const double a = TimeCampaignOnce(w, off_first ? ObsMode::kOff : mode);
      const double b = TimeCampaignOnce(w, off_first ? mode : ObsMode::kOff);
      const double o = off_first ? a : b;
      const double q = off_first ? b : a;
      off = i == 0 ? o : std::min(off, o);
      on = i == 0 ? q : std::min(on, q);
    }
    ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  return (ratios[ratios.size() / 2] - 1.0) * 100.0;
}

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  using namespace chaser;
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const int reps = 5;
  const int pairs = 5;  // blocks of 5 interleaved off/quiet run-pairs each

  // Drift-hardened methodology (a tighter cousin of bench_ablation_dispatch,
  // since a <2% guard needs more resolution than a speedup headline): untimed
  // warm-ups, round-robin min-of-N ladder times, and a paired min-of-block
  // median for the off-vs-quiet headline.
  double times[kNumWorkloads][kConfigs] = {};
  double overhead_pct[kNumWorkloads] = {};
  double export_pct[kNumWorkloads] = {};
  for (int w = 0; w < kNumWorkloads; ++w) {
    (void)TimeCampaignOnce(kWorkloads[w], ObsMode::kOff);    // warm-up
    (void)TimeCampaignOnce(kWorkloads[w], ObsMode::kTrace);  // warm-up
    for (int r = 0; r < reps; ++r) {
      for (int c = 0; c < kConfigs; ++c) {
        const double ms = TimeCampaignOnce(kWorkloads[w], kLadder[c].mode);
        if (r == 0 || ms < times[w][c]) times[w][c] = ms;
      }
    }
    // Resolving a sub-2% delta needs noise well under 1%; see
    // PairedOverheadPct for the block methodology. Two guarded ratios: the
    // pure instrumentation cost (quiet) and the watched-worker cost
    // (+export, scrapes included).
    overhead_pct[w] = PairedOverheadPct(kWorkloads[w], ObsMode::kQuiet, pairs);
    export_pct[w] = PairedOverheadPct(kWorkloads[w], ObsMode::kExport, pairs);
  }

  double max_overhead = 0.0;
  for (int w = 0; w < kNumWorkloads; ++w) {
    max_overhead = std::max(max_overhead,
                            std::max(overhead_pct[w], export_pct[w]));
  }

  if (json) {
    std::printf("{\n  \"bench\": \"ablation_obs\",\n");
    std::printf("  \"workloads\": [\n");
    for (int w = 0; w < kNumWorkloads; ++w) {
      std::printf("    {\"app\": \"%s\", \"runs\": %llu, \"jobs\": 1, "
                  "\"configs\": [",
                  kWorkloads[w].app,
                  static_cast<unsigned long long>(kWorkloads[w].runs));
      for (int c = 0; c < kConfigs; ++c) {
        std::printf("%s{\"name\": \"%s\", \"ms\": %.2f}", c == 0 ? "" : ", ",
                    kLadder[c].name, times[w][c]);
      }
      std::printf("], \"overhead_quiet_vs_off_pct\": %.2f, "
                  "\"overhead_export_vs_off_pct\": %.2f}%s\n",
                  overhead_pct[w], export_pct[w],
                  w + 1 < kNumWorkloads ? "," : "");
    }
    std::printf("  ],\n  \"max_overhead_pct\": %.2f,\n", max_overhead);
    std::printf("  \"guard_under_pct\": 2.0,\n");
    std::printf("  \"guard_passed\": %s\n}\n",
                max_overhead < 2.0 ? "true" : "false");
    return 0;
  }

  std::printf(
      "=== Ablation: telemetry channels (serial campaign, tracing on) ===\n\n");
  for (int w = 0; w < kNumWorkloads; ++w) {
    std::printf("%s, %llu runs:\n", kWorkloads[w].app,
                static_cast<unsigned long long>(kWorkloads[w].runs));
    for (int c = 0; c < kConfigs; ++c) {
      std::printf("  %-8s %8.2f ms   %+.2f%% vs off\n", kLadder[c].name,
                  times[w][c], (times[w][c] / times[w][0] - 1.0) * 100.0);
    }
    std::printf(
        "  paired overhead, quiet vs off (median of %d blocks): %+.2f%%\n",
        pairs, overhead_pct[w]);
    std::printf(
        "  paired overhead, +export vs off (median of %d blocks): %+.2f%%\n\n",
        pairs, export_pct[w]);
  }
  std::printf("max paired overhead: %+.2f%% (guard: < 2%%) — %s\n",
              max_overhead, max_overhead < 2.0 ? "PASS" : "FAIL");
  return max_overhead < 2.0 ? 0 : 1;
}

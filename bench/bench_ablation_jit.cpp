// Ablation — just-in-time selective instrumentation (Chaser) vs
// instrumenting every instruction (the F-SEFI strategy the paper replaces).
//
// Design claim (SII-C(a), SIII-A): because only targeted instructions carry
// the injection helper, and the helper is flushed out once the trigger
// expires, Chaser's instrumentation cost is a small fraction of
// whole-program instrumentation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "apps/app.h"
#include "vm/vm.h"

namespace chaser {
namespace {

enum class Strategy { kNone, kSelective, kInstrumentAll };

apps::AppSpec MakeApp() {
  return apps::BuildKmeans({.points = 256, .dims = 4, .clusters = 4,
                            .iterations = 5});
}

std::uint64_t RunOnce(const apps::AppSpec& spec, Strategy strategy,
                      std::uint64_t* helper_calls) {
  vm::Vm vm;
  std::uint64_t calls = 0;
  vm.set_injector_hook([&calls](vm::Vm&, std::uint64_t) { ++calls; });
  switch (strategy) {
    case Strategy::kNone:
      break;
    case Strategy::kSelective: {
      const std::set<guest::InstrClass> classes = spec.fault_classes;
      vm.SetInstrumentPredicate(
          [classes](const guest::Instruction& in, std::uint64_t) {
            return classes.count(guest::ClassOf(in.op)) != 0;
          });
      break;
    }
    case Strategy::kInstrumentAll:
      vm.SetInstrumentAll(true);
      break;
  }
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  if (helper_calls != nullptr) *helper_calls = calls;
  return vm.instret();
}

void BM_Instrumentation(benchmark::State& state, Strategy strategy) {
  const apps::AppSpec spec = MakeApp();
  std::uint64_t calls = 0;
  for (auto _ : state) {
    RunOnce(spec, strategy, &calls);
  }
  state.counters["helper_calls"] = static_cast<double>(calls);
}

BENCHMARK_CAPTURE(BM_Instrumentation, none, Strategy::kNone);
BENCHMARK_CAPTURE(BM_Instrumentation, selective_fp, Strategy::kSelective);
BENCHMARK_CAPTURE(BM_Instrumentation, instrument_all, Strategy::kInstrumentAll);

}  // namespace
}  // namespace chaser

using chaser::Strategy;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Ablation summary: instrumentation strategy (kmeans) ===\n");
  const chaser::apps::AppSpec spec = chaser::MakeApp();
  double secs[3] = {};
  std::uint64_t calls[3] = {};
  for (int s = 0; s < 3; ++s) {
    chaser::RunOnce(spec, static_cast<Strategy>(s), &calls[s]);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) {
      chaser::RunOnce(spec, static_cast<Strategy>(s), nullptr);
    }
    secs[s] = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start).count() / 3.0;
  }
  const char* names[3] = {"no instrumentation", "selective (Chaser)",
                          "instrument-all (F-SEFI)"};
  for (int s = 0; s < 3; ++s) {
    std::printf("  %-26s %.3fx vs none, %llu helper calls\n", names[s],
                secs[s] / secs[0], static_cast<unsigned long long>(calls[s]));
  }
  return 0;
}

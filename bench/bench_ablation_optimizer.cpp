// Ablation — the TCG optimizer (copy forwarding + dead-temp elimination).
//
// QEMU's TCG runs an optimizer over every translation block; ours removes
// the translator's compute-into-temp-then-move pattern. This bench measures
// the end-to-end speedup on the FP-heavy kmeans kernel and on CLAMR, and
// reports how many IR ops the optimizer eliminated.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/app.h"
#include "mpi/cluster.h"
#include "vm/vm.h"

namespace chaser {
namespace {

std::uint64_t RunKmeans(bool optimize, tcg::OptimizerStats* stats) {
  const apps::AppSpec spec = apps::BuildKmeans({});
  vm::Vm::Config config;
  config.optimize_tbs = optimize;
  vm::Vm vm(config);
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  if (stats != nullptr) *stats = vm.optimizer_stats();
  return vm.instret();
}

std::uint64_t RunClamr(bool optimize) {
  const apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 16, .cols = 16, .steps = 10, .ranks = 4});
  mpi::Cluster::Config config;
  config.num_ranks = 4;
  config.vm.optimize_tbs = optimize;
  mpi::Cluster cluster(config);
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  return job.total_instructions;
}

void BM_KmeansOptimizer(benchmark::State& state, bool optimize) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKmeans(optimize, nullptr));
  }
}

void BM_ClamrOptimizer(benchmark::State& state, bool optimize) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunClamr(optimize));
  }
}

BENCHMARK_CAPTURE(BM_KmeansOptimizer, off, false);
BENCHMARK_CAPTURE(BM_KmeansOptimizer, on, true);
BENCHMARK_CAPTURE(BM_ClamrOptimizer, off, false);
BENCHMARK_CAPTURE(BM_ClamrOptimizer, on, true);

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  chaser::tcg::OptimizerStats stats;
  chaser::RunKmeans(true, &stats);
  std::printf("\n=== Ablation summary: TCG optimizer (kmeans translation) ===\n");
  std::printf("  movs forwarded:   %llu\n",
              static_cast<unsigned long long>(stats.movs_forwarded));
  std::printf("  dead ops removed: %llu\n",
              static_cast<unsigned long long>(stats.dead_ops_removed));
  return 0;
}

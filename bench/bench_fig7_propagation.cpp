// Fig. 7 / Fig. 8 — propagation analysis from a full trace spool.
//
// The original bench_fig7_tainted_bytes samples the in-memory taint
// timeline; this bench reproduces the same curves from the *spooled* trace
// (no event cap), exercising the offline pipeline end to end: campaign with
// CampaignConfig::spool_dir -> TraceSpool on disk -> ReadTrialSpool ->
// PropagationGraph. It checks the paper's two shapes:
//
//   Fig. 7  the tainted-byte count climbs after the injection and plateaus
//           (the fault only ever touches a bounded region of memory);
//   Fig. 8  the fault spreads across ranks in the order of the hub's
//           transfer log (injection rank first).
//
// Determinism: the whole scout-spool-analyze pass runs twice with the same
// seed into two directories, and every spooled segment must be
// byte-identical — the disk format inherits the engine's reproducibility.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/propagation.h"
#include "analysis/spool.h"
#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"

namespace {

using namespace chaser;
namespace fs = std::filesystem;

struct PassResult {
  std::uint64_t case_seed = 0;
  std::string trial_dir;
  analysis::TrialSpool spool;
};

PassResult RunPass(const std::string& spool_dir, std::uint64_t runs) {
  fs::remove_all(spool_dir);

  apps::ClamrParams params{};
  params.steps = 60;
  campaign::CampaignConfig config;
  config.runs = runs;
  config.seed = 777;
  config.inject_ranks = {0, 1, 2, 3};
  config.spool_dir = spool_dir;
  // Sample densely enough that short runs still draw a curve.
  config.chaser_options.taint_sample_interval = 50'000;

  campaign::Campaign scout(apps::BuildClamr(params), config);
  const campaign::CampaignResult result = scout.Run();

  // Pick the case with the most propagation activity, preferring runs whose
  // fault crossed ranks (Fig. 8 needs at least one transfer).
  const campaign::RunRecord* top = nullptr;
  for (const campaign::RunRecord& rec : result.records) {
    if (top == nullptr ||
        std::make_tuple(rec.propagated_cross_rank, rec.tainted_writes) >
            std::make_tuple(top->propagated_cross_rank, top->tainted_writes)) {
      top = &rec;
    }
  }

  PassResult pass;
  pass.case_seed = top->run_seed;
  pass.trial_dir = spool_dir + "/trial-" + std::to_string(top->run_seed);
  pass.spool = analysis::ReadTrialSpool(pass.trial_dir);
  return pass;
}

/// Byte-compare every regular file under two directories (same relative
/// names, same contents).
bool DirsIdentical(const std::string& a, const std::string& b) {
  std::map<std::string, std::string> files_a, files_b;
  const auto slurp = [](const std::string& root,
                        std::map<std::string, std::string>* out) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      (*out)[fs::relative(entry.path(), root).string()] = std::move(bytes);
    }
  };
  slurp(a, &files_a);
  slurp(b, &files_b);
  return files_a == files_b;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 7/8: propagation analysis from the trace spool (CLAMR)",
      "paper Figs. 7 & 8 via the offline spool pipeline");

  const std::uint64_t runs = bench::RunsFromEnv(12);
  const PassResult pass = RunPass("/tmp/chaser_bench_spool_a", runs);
  std::printf("selected case seed %llu (%s)\n",
              static_cast<unsigned long long>(pass.case_seed),
              pass.trial_dir.c_str());
  for (const auto& [k, v] : pass.spool.meta) {
    std::printf("  %s=%s\n", k.c_str(), v.c_str());
  }

  const analysis::PropagationGraph graph = analysis::PropagationGraph::Build(
      analysis::DatasetFromSpool(pass.spool));

  // ---- Fig. 7: tainted bytes vs executed instructions ----------------------
  const std::map<std::uint64_t, std::uint64_t> timeline = graph.TaintTimeline();
  std::uint64_t peak = 1;
  for (const auto& [instret, bytes] : timeline) peak = std::max(peak, bytes);
  std::printf("\n%-18s %-14s\n", "instructions", "tainted bytes");
  bool seen_taint = false;
  std::uint64_t zeros_skipped = 0;
  for (const auto& [instret, bytes] : timeline) {
    if (!seen_taint && bytes == 0) {
      ++zeros_skipped;
      continue;
    }
    seen_taint = true;
    const int bar = static_cast<int>(50 * bytes / peak);
    std::printf("%-18llu %-14llu %s\n",
                static_cast<unsigned long long>(instret),
                static_cast<unsigned long long>(bytes),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  if (zeros_skipped > 0) {
    std::printf("(%llu pre-injection zero samples omitted)\n",
                static_cast<unsigned long long>(zeros_skipped));
  }

  // Shape check: the curve climbs from zero to its peak and the tail stays
  // within the fluctuation band of the plateau (paper: the fault affects a
  // bounded region, with dips as tainted bytes are overwritten).
  std::uint64_t final_bytes = 0;
  for (const auto& [instret, bytes] : timeline) final_bytes = bytes;
  const bool plateaued = peak > 0 && final_bytes * 2 >= peak;
  std::printf("shape: peak %llu bytes, final %llu bytes -> %s\n",
              static_cast<unsigned long long>(peak),
              static_cast<unsigned long long>(final_bytes),
              plateaued ? "climb-then-plateau OK"
                        : "tail decayed below half of peak");

  // ---- Fig. 8: rank spread order vs the hub transfer log -------------------
  const std::vector<Rank> order = graph.SpreadOrder();
  std::printf("\nspread order:");
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::printf("%s %d", i == 0 ? "" : " ->", order[i]);
  }
  std::printf("\n");
  constexpr std::size_t kMaxShown = 12;
  for (std::size_t i = 0;
       i < std::min(pass.spool.transfers.size(), kMaxShown); ++i) {
    const hub::TransferLogEntry& t = pass.spool.transfers[i];
    std::printf("  transfer[%llu]: rank %d -> %d tag %lld (%llu/%llu tainted)\n",
                static_cast<unsigned long long>(t.hub_seq), t.id.src, t.id.dest,
                static_cast<long long>(t.id.tag),
                static_cast<unsigned long long>(t.tainted_bytes),
                static_cast<unsigned long long>(t.payload_bytes));
  }
  if (pass.spool.transfers.size() > kMaxShown) {
    std::printf("  ... %zu more transfers\n",
                pass.spool.transfers.size() - kMaxShown);
  }
  // Consistency: every rank past the injection site must have an inbound
  // transfer, and sources must already be contaminated when they send.
  std::set<Rank> contaminated;
  for (const core::TraceEvent& e : pass.spool.events) {
    if (e.kind == core::TraceEventKind::kInjection) contaminated.insert(e.rank);
  }
  bool consistent = true;
  for (const hub::TransferLogEntry& t : pass.spool.transfers) {
    if (contaminated.count(t.id.src) == 0) consistent = false;
    contaminated.insert(t.id.dest);
  }
  for (const Rank r : order) {
    if (contaminated.count(r) == 0) consistent = false;
  }
  std::printf("spread order consistent with transfer log: %s\n",
              consistent ? "yes" : "NO");

  // ---- Determinism: same seed -> byte-identical spool ----------------------
  const PassResult pass_b = RunPass("/tmp/chaser_bench_spool_b", runs);
  const bool same_case = pass_b.case_seed == pass.case_seed;
  const bool identical =
      same_case && DirsIdentical(pass.trial_dir, pass_b.trial_dir);
  std::printf("\nrerun at the same seed: case %s, spool bytes %s\n",
              same_case ? "identical" : "DIFFERS",
              identical ? "identical" : "DIFFER");

  return (plateaued && consistent && identical) ? 0 : 1;
}

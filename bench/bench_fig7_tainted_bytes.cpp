// Fig. 7 — Tainted bytes in memory vs executed instructions for two
// randomly selected CLAMR fault-injection cases.
//
// Paper methodology (SIV-C): from a traced campaign, randomly select two
// injection cases, re-execute them with the *same* injected fault, and
// sample the number of tainted bytes every 100K executed instructions.
// Expected shape: the count climbs, fluctuates (tainted bytes get
// overwritten by clean data), and eventually plateaus — the fault only ever
// touches a bounded region of memory.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/rng.h"

int main() {
  using namespace chaser;
  bench::PrintHeader(
      "Fig. 7: tainted bytes vs executed instructions (2 CLAMR cases)",
      "paper Fig. 7");

  // Longer runs than the campaign default so the plateau is visible
  // (the paper's CLAMR runs span tens of millions of instructions).
  apps::ClamrParams params{};
  params.steps = 120;
  const std::uint64_t scout_runs = bench::RunsFromEnv(60);

  // Scout campaign: find runs whose fault actually propagates in memory.
  campaign::CampaignConfig config;
  config.runs = scout_runs;
  config.seed = 777;
  config.inject_ranks = {0, 1, 2, 3};
  config.chaser_options.taint_sample_interval = 0;  // no timeline while scouting
  campaign::Campaign scout(apps::BuildClamr(params), config);
  const campaign::CampaignResult result = scout.Run();

  // "Randomly selected" in the paper — but a case is only plottable if its
  // fault lands early enough to propagate for a while, so restrict to
  // injections in the first third of the run, then pick two distinct cases
  // at random from the top quartile by propagation activity.
  std::vector<campaign::RunRecord> ranked;
  for (const campaign::RunRecord& rec : result.records) {
    const std::uint64_t execs = scout.golden_targeted_execs(rec.inject_rank);
    if (execs > 0 && rec.trigger_nth < execs / 3 && rec.tainted_writes > 500) {
      ranked.push_back(rec);
    }
  }
  if (ranked.size() < 2) ranked = result.records;
  std::sort(ranked.begin(), ranked.end(),
            [](const campaign::RunRecord& a, const campaign::RunRecord& b) {
              return a.tainted_writes > b.tainted_writes;
            });
  const std::size_t pool = std::max<std::size_t>(2, ranked.size() / 4);
  Rng pick(9);
  const std::size_t first = pick.Index(pool);
  std::size_t second = pick.Index(pool);
  if (second == first) second = (second + 1) % pool;
  const std::uint64_t case_seeds[2] = {ranked[first].run_seed,
                                       ranked[second].run_seed};

  // Re-execute each selected case with timeline sampling enabled.
  campaign::CampaignConfig replay_config = config;
  replay_config.runs = 0;
  replay_config.chaser_options.taint_sample_interval = 100'000;
  campaign::Campaign replay(apps::BuildClamr(params), replay_config);
  replay.RunGolden();

  for (int k = 0; k < 2; ++k) {
    const campaign::RunRecord rec = replay.RunOnce(case_seeds[k]);
    std::printf("\ncase %d (seed %llu): outcome=%s, tainted reads=%llu, "
                "writes=%llu\n",
                k + 1, static_cast<unsigned long long>(case_seeds[k]),
                campaign::OutcomeName(rec.outcome),
                static_cast<unsigned long long>(rec.tainted_reads),
                static_cast<unsigned long long>(rec.tainted_writes));
    std::printf("%-18s %-14s %s\n", "instructions", "tainted bytes", "");
    // One curve per case: at each per-rank sample point (all ranks sample at
    // the same instruction counts) sum the tainted bytes across ranks — the
    // job-wide taint footprint the paper plots.
    std::map<std::uint64_t, std::uint64_t> series;
    for (Rank r = 0; r < 4; ++r) {
      for (const core::TaintSample& s :
           replay.chaser().rank_chaser(r).taint_timeline()) {
        series[s.instret] += s.tainted_bytes;
      }
    }
    std::uint64_t peak = 1;
    for (const auto& [instret, bytes] : series) peak = std::max(peak, bytes);
    // The paper's x-axis starts at the injection: skip the all-zero prefix
    // (keeping one leading zero sample for context).
    bool seen_taint = false;
    std::uint64_t zeros_skipped = 0;
    for (const auto& [instret, bytes] : series) {
      if (!seen_taint && bytes == 0) {
        const auto next = series.upper_bound(instret);
        if (next != series.end() && next->second == 0) {
          ++zeros_skipped;
          continue;
        }
      }
      if (bytes != 0) seen_taint = true;
      const int bar = static_cast<int>(50 * bytes / peak);
      std::printf("%-18llu %-14llu %s\n",
                  static_cast<unsigned long long>(instret),
                  static_cast<unsigned long long>(bytes),
                  std::string(static_cast<std::size_t>(bar), '#').c_str());
    }
    if (zeros_skipped > 0) {
      std::printf("(%llu pre-injection zero samples omitted)\n",
                  static_cast<unsigned long long>(zeros_skipped));
    }
  }
  std::printf(
      "\nshape check (paper): the tainted-byte count reaches a constant level\n"
      "(faults affect a fixed portion of memory) and fluctuates on the way as\n"
      "tainted bytes are overwritten with clean data.\n");
  return 0;
}

// Table III — Termination breakdown for the MPI application Matvec.
//
// Paper: among terminated runs (mov-operand faults injected into the master
// only), 89.77% are OS exceptions (SIGSEGV...), 9.94% MPI-runtime-detected
// errors, and 0.23% terminations surfacing on a slave node. Among the runs
// whose fault propagated master -> slave and terminated, 72.77% are OS
// exceptions and 27.23% MPI errors.
#include <cstdio>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"

int main() {
  using namespace chaser;
  bench::PrintHeader("Table III: Termination breakdown for MPI application Matvec",
                     "paper Table III");
  const std::uint64_t runs = bench::RunsFromEnv(1000);
  const unsigned jobs = bench::JobsFromEnv();

  campaign::CampaignConfig config;
  config.runs = runs;
  config.seed = 20200622;
  config.inject_ranks = {0};  // faults only on the master node (paper setup)

  // The table is produced by the parallel engine; a timed serial run of the
  // same campaign records the speedup and proves the outputs identical.
  campaign::CampaignResult r, serial;
  const double parallel_secs = bench::TimeSecs([&] {
    campaign::ParallelCampaign c(apps::BuildMatvec({}), config, jobs);
    r = c.Run();
  });
  const double serial_secs = bench::TimeSecs([&] {
    campaign::Campaign c(apps::BuildMatvec({}), config);
    serial = c.Run();
  });
  const bool identical = serial.terminated == r.terminated &&
                         serial.os_exception == r.os_exception &&
                         serial.mpi_error == r.mpi_error &&
                         serial.other_rank_failed == r.other_rank_failed &&
                         serial.propagated_runs == r.propagated_runs;

  std::printf("matvec: %llu runs, 4 ranks, mov-operand faults on the master\n",
              static_cast<unsigned long long>(runs));
  std::printf(
      "engine: parallel %u workers %.2fs, serial %.2fs, speedup %.2fx, "
      "serial/parallel identical: %s\n\n",
      jobs, parallel_secs, serial_secs,
      serial_secs / (parallel_secs > 0 ? parallel_secs : 1.0),
      identical ? "yes" : "NO (BUG)");
  std::printf("%s\n", r.Render("overall outcome distribution").c_str());

  const double term = static_cast<double>(r.terminated);
  const auto pct = [term](std::uint64_t n) {
    return term == 0 ? 0.0 : 100.0 * static_cast<double>(n) / term;
  };
  std::printf("%-14s %-18s %-22s %-18s\n", "Tests", "OS Exceptions",
              "MPI error detected", "Slave Node failed");
  std::printf("%s\n", std::string(76, '-').c_str());
  std::printf("%-14s %6.2f%%            %6.2f%%               %6.2f%%\n", "Total*",
              pct(r.os_exception), pct(r.mpi_error), pct(r.other_rank_failed));
  const double pterm = static_cast<double>(r.propagated_terminated);
  const auto ppct = [pterm](std::uint64_t n) {
    return pterm == 0 ? 0.0 : 100.0 * static_cast<double>(n) / pterm;
  };
  std::printf("%-14s %6.2f%%            %6.2f%%               %6.2f%%\n",
              "Propagation$", ppct(r.propagated_os_exception),
              ppct(r.propagated_mpi_error), 0.0);
  std::printf(
      "\n*: all terminated runs. $: terminated runs whose fault propagated\n"
      "   from the master to a slave (n=%llu of %llu propagated runs).\n",
      static_cast<unsigned long long>(r.propagated_terminated),
      static_cast<unsigned long long>(r.propagated_runs));
  std::printf(
      "paper:  Total        89.77%% / 9.94%% / 0.23%%\n"
      "        Propagation  72.77%% / 27.23%% / 0\n");
  return 0;
}

// Bench — the cost of moving TaintHub out of process.
//
// Three hub transports drive the same publish/poll workload (and a small
// end-to-end campaign), so the wire protocol's overhead is visible next to
// the in-process baseline it must stay byte-identical to:
//
//   in-process        TaintHub, direct calls
//   loopback          RemoteTaintHub -> HubServer over 127.0.0.1, batched
//                     publishes (the shard-worker configuration)
//   loopback-flushed  same, but every publish flushed immediately — what the
//                     protocol would cost without the batch
//
// `--json` emits the summary for tools/bench_to_json.sh.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "hub/remote/client.h"
#include "hub/remote/server.h"
#include "hub/tainthub.h"

namespace chaser {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One workload pass: publish `n` records and poll each back.
void PublishPollPass(hub::HubService& hub, std::uint64_t n,
                     std::size_t payload_bytes, bool flush_each) {
  hub.Clear();
  for (std::uint64_t k = 0; k < n; ++k) {
    hub::MessageTaintRecord rec;
    rec.id = {0, 1, static_cast<std::int64_t>(k % 7), k};
    rec.byte_masks.assign(payload_bytes,
                          static_cast<std::uint8_t>(0x80 | (k & 0x7f)));
    rec.src_vaddr = 0x1000 + k;
    rec.send_instret = k;
    hub.Publish(std::move(rec));
    if (flush_each) {
      // stats() round-trips, forcing the pending batch onto the wire —
      // the unbatched protocol cost.
      (void)hub.stats();
    }
  }
  for (std::uint64_t k = 0; k < n; ++k) {
    const hub::PollAttempt a =
        hub.TryPoll({0, 1, static_cast<std::int64_t>(k % 7), k}, {});
    if (a.status != hub::PollStatus::kHit) {
      std::fprintf(stderr, "bench_remote_hub: lost record %llu\n",
                   static_cast<unsigned long long>(k));
      std::exit(1);
    }
  }
}

struct Transport {
  const char* name;
  hub::HubService* hub;
  bool flush_each;
};

}  // namespace
}  // namespace chaser

int main(int argc, char** argv) {
  using namespace chaser;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  constexpr std::uint64_t kRecords = 2000;
  constexpr std::size_t kPayload = 256;
  constexpr int kReps = 5;

  hub::TaintHub local;
  hub::remote::HubServer server({});
  server.Start();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.port());
  hub::remote::RemoteTaintHub batched({endpoint});
  hub::remote::RemoteTaintHub flushed({endpoint});

  const Transport transports[] = {
      {"in-process", &local, false},
      {"loopback", &batched, false},
      {"loopback-flushed", &flushed, true},
  };

  double secs[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    PublishPollPass(*transports[t].hub, 100, kPayload,
                    transports[t].flush_each);  // warm-up
    const auto t0 = Clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      PublishPollPass(*transports[t].hub, kRecords, kPayload,
                      transports[t].flush_each);
    }
    secs[t] = SecondsSince(t0);
  }

  // End-to-end: a small matvec campaign on each transport (the number that
  // matters to a shard worker deciding whether a remote hub is affordable).
  double campaign_secs[2] = {0, 0};
  for (int t = 0; t < 2; ++t) {
    campaign::CampaignConfig config;
    config.runs = 30;
    config.seed = 7;
    if (t == 1) config.hub_endpoints = {endpoint};
    const auto t0 = Clock::now();
    campaign::Campaign c(apps::BuildMatvec({}), config);
    (void)c.Run();
    campaign_secs[t] = SecondsSince(t0);
  }

  const double ops = static_cast<double>(kRecords) * 2 * kReps;
  if (json) {
    std::printf(
        "{\"bench\": \"remote_hub\", \"records\": %llu, "
        "\"payload_bytes\": %zu,\n"
        " \"publish_poll_us_per_op\": {\"in_process\": %.3f, "
        "\"loopback\": %.3f, \"loopback_flushed\": %.3f},\n"
        " \"campaign_s\": {\"in_process\": %.3f, \"loopback\": %.3f}}\n",
        static_cast<unsigned long long>(kRecords), kPayload,
        1e6 * secs[0] / ops, 1e6 * secs[1] / ops, 1e6 * secs[2] / ops,
        campaign_secs[0], campaign_secs[1]);
  } else {
    std::printf("remote hub: %llu records x %d reps, %zu-byte masks\n",
                static_cast<unsigned long long>(kRecords), kReps, kPayload);
    for (int t = 0; t < 3; ++t) {
      std::printf("  %-18s %8.3f us/op  (%.2fx in-process)\n",
                  transports[t].name, 1e6 * secs[t] / ops,
                  secs[t] / secs[0]);
    }
    std::printf("  matvec campaign, 30 runs: in-process %.3fs, loopback "
                "%.3fs (%.2fx)\n",
                campaign_secs[0], campaign_secs[1],
                campaign_secs[1] / campaign_secs[0]);
  }
  server.Stop();
  return 0;
}

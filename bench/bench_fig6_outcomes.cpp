// Fig. 6 — Fault-injection outcome distributions for bfs, kmeans, lud,
// Matvec and CLAMR (benign / terminated / SDC), plus the §IV-B CLAMR
// detected/undetected split (paper: 83.71% detected, 11.89% undetected but
// correct, 4.38% undetected and incorrect).
#include <cstdio>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/report.h"

namespace {

struct Row {
  const char* name;
  chaser::campaign::CampaignResult result;
};

}  // namespace

int main() {
  using namespace chaser;
  bench::PrintHeader("Fig. 6: Fault injection results (benign/terminated/SDC)",
                     "paper Fig. 6 + the CLAMR detection split of SIV-B");
  const std::uint64_t runs = bench::RunsFromEnv(400);
  std::printf("runs per application: %llu (paper: 3000-5000)\n\n",
              static_cast<unsigned long long>(runs));

  std::vector<Row> rows;
  const auto run_campaign = [&](const char* name, apps::AppSpec spec,
                                std::set<Rank> inject_ranks) {
    campaign::CampaignConfig config;
    config.runs = runs;
    config.seed = 4242;
    config.inject_ranks = std::move(inject_ranks);
    campaign::Campaign c(std::move(spec), config);
    rows.push_back({name, c.Run()});
    std::printf("  ... %s done\n", name);
  };

  run_campaign("bfs", apps::BuildBfs({}), {0});
  run_campaign("kmeans", apps::BuildKmeans({}), {0});
  run_campaign("lud", apps::BuildLud({}), {0});
  run_campaign("matvec", apps::BuildMatvec({}), {0});
  run_campaign("clamr", apps::BuildClamr({}), {0, 1, 2, 3});

  std::printf("\n%-10s %10s %12s %10s   (fault classes per paper SIV-A/B)\n",
              "app", "benign", "terminated", "sdc");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const Row& row : rows) {
    std::printf("%-10s %9.2f%% %11.2f%% %9.2f%%\n", row.name,
                row.result.Pct(row.result.benign),
                row.result.Pct(row.result.terminated),
                row.result.Pct(row.result.sdc));
  }

  // CLAMR detection analysis (SIV-B): "terminated" for CLAMR is dominated by
  // its own conservation checker -> "detected"; benign = undetected but
  // correct; SDC = undetected and incorrect.
  const campaign::CampaignResult& clamr = rows.back().result;
  const double n = static_cast<double>(clamr.runs);
  std::printf(
      "\nCLAMR detection split (paper: detected 83.71%%, undetected-correct\n"
      "11.89%%, undetected-incorrect 4.38%%):\n");
  std::printf("  detected (checker + other terminations): %5.2f%%\n",
              100.0 * static_cast<double>(clamr.terminated) / n);
  std::printf("    of which the conservation checker:     %5.2f%%\n",
              100.0 * static_cast<double>(clamr.assert_detected) / n);
  std::printf("  undetected, correct result (benign):     %5.2f%%\n",
              100.0 * static_cast<double>(clamr.benign) / n);
  std::printf("  undetected, incorrect result (SDC):      %5.2f%%\n",
              100.0 * static_cast<double>(clamr.sdc) / n);

  // Bonus analysis the trace enables (paper SIII-C: the log "will provide us
  // with new ways to analyze ... soft errors' impact"): predict SDC from the
  // trace alone — did tainted bytes reach the output stream?
  std::printf("\ntrace-only SDC prediction (tainted bytes reached output):\n");
  for (const Row& row : rows) {
    const campaign::SdcPredictionStats p =
        campaign::AnalyzeSdcPrediction(row.result.records);
    std::printf("  %-8s precision %5.1f%%  recall %5.1f%%  "
                "(tp=%llu fp=%llu fn=%llu tn=%llu)\n",
                row.name, 100.0 * p.precision, 100.0 * p.recall,
                static_cast<unsigned long long>(p.true_positives),
                static_cast<unsigned long long>(p.false_positives),
                static_cast<unsigned long long>(p.false_negatives),
                static_cast<unsigned long long>(p.true_negatives));
  }
  return 0;
}

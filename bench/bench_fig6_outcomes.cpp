// Fig. 6 — Fault-injection outcome distributions for bfs, kmeans, lud,
// Matvec and CLAMR (benign / terminated / SDC), plus the §IV-B CLAMR
// detected/undetected split (paper: 83.71% detected, 11.89% undetected but
// correct, 4.38% undetected and incorrect).
#include <cstdio>

#include "apps/app.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/report.h"

namespace {

struct Row {
  const char* name;
  chaser::campaign::CampaignResult result;
};

}  // namespace

int main() {
  using namespace chaser;
  bench::PrintHeader("Fig. 6: Fault injection results (benign/terminated/SDC)",
                     "paper Fig. 6 + the CLAMR detection split of SIV-B");
  const std::uint64_t runs = bench::RunsFromEnv(400);
  const unsigned jobs = bench::JobsFromEnv();
  std::printf("runs per application: %llu (paper: 3000-5000), %u workers\n\n",
              static_cast<unsigned long long>(runs),
              jobs);

  // Parallel-engine speedup, recorded on a 1000-run kmeans campaign; the
  // outcome counts are compared so any serial/parallel divergence is visible
  // right in the bench output.
  {
    campaign::CampaignConfig config;
    config.runs = bench::RunsFromEnv(1000);
    config.seed = 4242;
    campaign::CampaignResult serial_result, parallel_result;
    const double serial_secs = bench::TimeSecs([&] {
      campaign::Campaign c(apps::BuildKmeans({}), config);
      serial_result = c.Run();
    });
    const double parallel_secs = bench::TimeSecs([&] {
      campaign::ParallelCampaign c(apps::BuildKmeans({}), config, jobs);
      parallel_result = c.Run();
    });
    const bool identical =
        serial_result.benign == parallel_result.benign &&
        serial_result.terminated == parallel_result.terminated &&
        serial_result.sdc == parallel_result.sdc;
    std::printf(
        "parallel campaign engine (kmeans, %llu runs):\n"
        "  serial    %.2fs\n"
        "  %2u jobs   %.2fs   speedup %.2fx   outcome-identical: %s\n\n",
        static_cast<unsigned long long>(config.runs), serial_secs, jobs,
        parallel_secs, serial_secs / (parallel_secs > 0 ? parallel_secs : 1.0),
        identical ? "yes" : "NO (BUG)");
  }

  std::vector<Row> rows;
  const auto run_campaign = [&](const char* name, apps::AppSpec spec,
                                std::set<Rank> inject_ranks) {
    campaign::CampaignConfig config;
    config.runs = runs;
    config.seed = 4242;
    config.inject_ranks = std::move(inject_ranks);
    campaign::ParallelCampaign c(std::move(spec), config, jobs);
    rows.push_back({name, c.Run()});
    std::printf("  ... %s done\n", name);
  };

  run_campaign("bfs", apps::BuildBfs({}), {0});
  run_campaign("kmeans", apps::BuildKmeans({}), {0});
  run_campaign("lud", apps::BuildLud({}), {0});
  run_campaign("matvec", apps::BuildMatvec({}), {0});
  run_campaign("clamr", apps::BuildClamr({}), {0, 1, 2, 3});

  std::printf("\n%-10s %10s %12s %10s   (fault classes per paper SIV-A/B)\n",
              "app", "benign", "terminated", "sdc");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const Row& row : rows) {
    std::printf("%-10s %9.2f%% %11.2f%% %9.2f%%\n", row.name,
                row.result.Pct(row.result.benign),
                row.result.Pct(row.result.terminated),
                row.result.Pct(row.result.sdc));
  }

  // CLAMR detection analysis (SIV-B): "terminated" for CLAMR is dominated by
  // its own conservation checker -> "detected"; benign = undetected but
  // correct; SDC = undetected and incorrect.
  const campaign::CampaignResult& clamr = rows.back().result;
  const double n = static_cast<double>(clamr.runs);
  std::printf(
      "\nCLAMR detection split (paper: detected 83.71%%, undetected-correct\n"
      "11.89%%, undetected-incorrect 4.38%%):\n");
  std::printf("  detected (checker + other terminations): %5.2f%%\n",
              100.0 * static_cast<double>(clamr.terminated) / n);
  std::printf("    of which the conservation checker:     %5.2f%%\n",
              100.0 * static_cast<double>(clamr.assert_detected) / n);
  std::printf("  undetected, correct result (benign):     %5.2f%%\n",
              100.0 * static_cast<double>(clamr.benign) / n);
  std::printf("  undetected, incorrect result (SDC):      %5.2f%%\n",
              100.0 * static_cast<double>(clamr.sdc) / n);

  // Bonus analysis the trace enables (paper SIII-C: the log "will provide us
  // with new ways to analyze ... soft errors' impact"): predict SDC from the
  // trace alone — did tainted bytes reach the output stream?
  std::printf("\ntrace-only SDC prediction (tainted bytes reached output):\n");
  for (const Row& row : rows) {
    const campaign::SdcPredictionStats p =
        campaign::AnalyzeSdcPrediction(row.result.records);
    std::printf("  %-8s precision %5.1f%%  recall %5.1f%%  "
                "(tp=%llu fp=%llu fn=%llu tn=%llu)\n",
                row.name, 100.0 * p.precision, 100.0 * p.recall,
                static_cast<unsigned long long>(p.true_positives),
                static_cast<unsigned long long>(p.false_positives),
                static_cast<unsigned long long>(p.false_negatives),
                static_cast<unsigned long long>(p.true_negatives));
  }
  return 0;
}

// Ablation — TaintHub coordination cost.
//
// Design claim (SV, related work): with TaintHub, receivers of *clean*
// messages pay only a hash lookup — they never parse message contents,
// unlike in-band header schemes. This bench measures the MPI hook cost on a
// message-heavy CLAMR job in three configurations:
//
//   no-hooks          the runtime without Chaser's MPI hooks
//   hooks-clean       hooks installed, no fault -> every message clean
//   hooks-tainted     hooks installed, an early fault keeps halo messages
//                     tainted -> publish + poll + re-apply on every exchange
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "apps/app.h"
#include "core/chaser_mpi.h"
#include "core/corrupt.h"
#include "guest/operands.h"
#include "core/trigger.h"
#include "mpi/cluster.h"

namespace chaser {
namespace {

enum class HubMode { kNoHooks, kHooksClean, kHooksTainted };

apps::AppSpec MakeApp() {
  return apps::BuildClamr({.global_rows = 16, .cols = 16, .steps = 30, .ranks = 4});
}

struct HubRunStats {
  std::uint64_t publishes = 0;
  std::uint64_t polls = 0;
  std::uint64_t messages = 0;
};

HubRunStats RunOnce(const apps::AppSpec& spec, HubMode mode) {
  mpi::Cluster cluster({.num_ranks = spec.num_ranks});
  core::Chaser::Options opts;
  opts.taint_sample_interval = 0;
  core::ChaserMpi chaser(cluster, opts);
  if (mode == HubMode::kNoHooks) {
    cluster.SetMessageHooks(nullptr);
  }
  core::InjectionCommand cmd;
  cmd.target_program = spec.program.name;
  cmd.target_classes = spec.fault_classes;
  cmd.trace = true;
  if (mode == HubMode::kHooksTainted) {
    // Keep the run behaviour-identical (original values) but make the halo
    // rows tainted from the very first targeted execution.
    struct TouchAll final : core::FaultInjector {
      void Inject(core::InjectionContext& ctx) override {
        const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
        for (const std::uint8_t f : ops.fp_sources) {
          ctx.records.push_back(core::TouchFpRegister(ctx.vm, f));
        }
      }
      std::string name() const override { return "touch-all"; }
    };
    cmd.trigger = std::make_shared<core::GroupTrigger>(1, 1, 2000);
    cmd.injector = std::make_shared<TouchAll>();
  }
  chaser.Arm(cmd, {0});
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  if (!job.completed) std::abort();
  return {chaser.hub().stats().publishes, chaser.hub().stats().polls,
          cluster.messages_delivered()};
}

void BM_Hub(benchmark::State& state, HubMode mode) {
  const apps::AppSpec spec = MakeApp();
  HubRunStats stats;
  for (auto _ : state) {
    stats = RunOnce(spec, mode);
  }
  state.counters["hub_publishes"] = static_cast<double>(stats.publishes);
  state.counters["hub_polls"] = static_cast<double>(stats.polls);
  state.counters["messages"] = static_cast<double>(stats.messages);
}

BENCHMARK_CAPTURE(BM_Hub, no_hooks, HubMode::kNoHooks);
BENCHMARK_CAPTURE(BM_Hub, hooks_clean, HubMode::kHooksClean);
BENCHMARK_CAPTURE(BM_Hub, hooks_tainted, HubMode::kHooksTainted);

}  // namespace
}  // namespace chaser

using chaser::HubMode;

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Ablation summary: TaintHub hook cost (CLAMR halos) ===\n");
  const chaser::apps::AppSpec spec = chaser::MakeApp();
  const char* names[3] = {"no hooks", "hooks, clean msgs", "hooks, tainted msgs"};
  double secs[3] = {};
  for (int m = 0; m < 3; ++m) {
    const chaser::HubRunStats stats = chaser::RunOnce(spec, static_cast<HubMode>(m));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) chaser::RunOnce(spec, static_cast<HubMode>(m));
    secs[m] = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start).count() / 3.0;
    std::printf("  %-22s %.3fx   (publishes=%llu polls=%llu messages=%llu)\n",
                names[m], secs[m] / (secs[0] > 0 ? secs[0] : 1.0),
                static_cast<unsigned long long>(stats.publishes),
                static_cast<unsigned long long>(stats.polls),
                static_cast<unsigned long long>(stats.messages));
  }
  std::printf(
      "clean messages cost no hub traffic at all (sender-side early return),\n"
      "matching the paper's argument for TaintHub over in-band headers.\n");
  return 0;
}

// Table II — Lines of code (LOC) required to develop injectors.
//
// The paper reports ~100 LOC per injector built on Chaser's exported
// interfaces (Probabilistic 97, Deterministic 100, Group 98). This bench
// counts the real LOC of the three bundled injector plugins in this
// repository (header + implementation, as a plugin author would write them).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

/// Counts non-empty lines in a file; returns 0 if unreadable.
std::size_t CountLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t loc = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos != std::string::npos) ++loc;
  }
  return loc;
}

}  // namespace

int main() {
  chaser::bench::PrintHeader(
      "Table II: Lines of code (LOC) required to develop injectors",
      "paper Table II (Probabilistic 97 / Deterministic 100 / Group 98)");

  const std::string base = std::string(CHASER_SOURCE_DIR) + "/src/core/injectors/";
  const struct {
    const char* name;
    const char* stem;
    int paper_loc;
  } rows[] = {
      {"Probabilistic Injector", "probabilistic_injector", 97},
      {"Deterministic Injector", "deterministic_injector", 100},
      {"Group Injector", "group_injector", 98},
  };

  std::printf("%-25s %-12s %-12s\n", "InjectorName", "LOC (ours)", "LOC (paper)");
  std::printf("%s\n", std::string(52, '-').c_str());
  bool all_found = true;
  for (const auto& row : rows) {
    const std::size_t loc = CountLoc(base + row.stem + ".h") +
                            CountLoc(base + row.stem + ".cpp");
    if (loc == 0) all_found = false;
    std::printf("%-25s %-12zu %-12d\n", row.name, loc, row.paper_loc);
  }
  if (!all_found) {
    std::printf("(warning: some sources not found under %s)\n", base.c_str());
  }
  std::printf(
      "\nEach injector is a self-contained plugin using only the exported\n"
      "interfaces (InjectionContext, OperandsOf, CORRUPT_REGISTER/MEMORY),\n"
      "matching the paper's ~100-LOC development-effort claim.\n");
  return 0;
}

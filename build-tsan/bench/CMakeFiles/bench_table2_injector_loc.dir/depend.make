# Empty dependencies file for bench_table2_injector_loc.
# This may be replaced when dependencies are built.

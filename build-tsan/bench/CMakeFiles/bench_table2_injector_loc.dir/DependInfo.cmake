
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_injector_loc.cpp" "bench/CMakeFiles/bench_table2_injector_loc.dir/bench_table2_injector_loc.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_injector_loc.dir/bench_table2_injector_loc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/campaign/CMakeFiles/chaser_campaign.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/chaser_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hub/CMakeFiles/chaser_hub.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mpi/CMakeFiles/chaser_mpi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/chaser_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vm/CMakeFiles/chaser_vm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/taint/CMakeFiles/chaser_taint.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tcg/CMakeFiles/chaser_tcg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/guest/CMakeFiles/chaser_guest.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/chaser_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

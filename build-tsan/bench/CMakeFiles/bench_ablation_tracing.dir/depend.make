# Empty dependencies file for bench_ablation_tracing.
# This may be replaced when dependencies are built.

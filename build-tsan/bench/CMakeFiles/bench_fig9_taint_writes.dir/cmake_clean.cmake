file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_taint_writes.dir/bench_fig9_taint_writes.cpp.o"
  "CMakeFiles/bench_fig9_taint_writes.dir/bench_fig9_taint_writes.cpp.o.d"
  "bench_fig9_taint_writes"
  "bench_fig9_taint_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_taint_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_taint_writes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_outcomes.dir/bench_fig6_outcomes.cpp.o"
  "CMakeFiles/bench_fig6_outcomes.dir/bench_fig6_outcomes.cpp.o.d"
  "bench_fig6_outcomes"
  "bench_fig6_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_outcomes.
# This may be replaced when dependencies are built.

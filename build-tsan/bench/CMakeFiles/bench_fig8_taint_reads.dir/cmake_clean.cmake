file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_taint_reads.dir/bench_fig8_taint_reads.cpp.o"
  "CMakeFiles/bench_fig8_taint_reads.dir/bench_fig8_taint_reads.cpp.o.d"
  "bench_fig8_taint_reads"
  "bench_fig8_taint_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_taint_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_taint_reads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tainted_bytes.dir/bench_fig7_tainted_bytes.cpp.o"
  "CMakeFiles/bench_fig7_tainted_bytes.dir/bench_fig7_tainted_bytes.cpp.o.d"
  "bench_fig7_tainted_bytes"
  "bench_fig7_tainted_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tainted_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

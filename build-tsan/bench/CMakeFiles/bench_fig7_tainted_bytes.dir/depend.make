# Empty dependencies file for bench_fig7_tainted_bytes.
# This may be replaced when dependencies are built.

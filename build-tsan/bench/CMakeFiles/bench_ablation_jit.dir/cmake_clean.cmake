file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_jit.dir/bench_ablation_jit.cpp.o"
  "CMakeFiles/bench_ablation_jit.dir/bench_ablation_jit.cpp.o.d"
  "bench_ablation_jit"
  "bench_ablation_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

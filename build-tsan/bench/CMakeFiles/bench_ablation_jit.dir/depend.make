# Empty dependencies file for bench_ablation_jit.
# This may be replaced when dependencies are built.

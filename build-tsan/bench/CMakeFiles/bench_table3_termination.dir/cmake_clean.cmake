file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_termination.dir/bench_table3_termination.cpp.o"
  "CMakeFiles/bench_table3_termination.dir/bench_table3_termination.cpp.o.d"
  "bench_table3_termination"
  "bench_table3_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table3_termination.
# This may be replaced when dependencies are built.

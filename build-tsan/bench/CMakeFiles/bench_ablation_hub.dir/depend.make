# Empty dependencies file for bench_ablation_hub.
# This may be replaced when dependencies are built.

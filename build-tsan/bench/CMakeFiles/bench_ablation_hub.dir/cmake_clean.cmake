file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hub.dir/bench_ablation_hub.cpp.o"
  "CMakeFiles/bench_ablation_hub.dir/bench_ablation_hub.cpp.o.d"
  "bench_ablation_hub"
  "bench_ablation_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hub_test.dir/hub_test.cpp.o"
  "CMakeFiles/hub_test.dir/hub_test.cpp.o.d"
  "hub_test"
  "hub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hub_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/guest_test.dir/guest_test.cpp.o"
  "CMakeFiles/guest_test.dir/guest_test.cpp.o.d"
  "guest_test"
  "guest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

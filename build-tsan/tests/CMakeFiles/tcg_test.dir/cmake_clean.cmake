file(REMOVE_RECURSE
  "CMakeFiles/tcg_test.dir/tcg_test.cpp.o"
  "CMakeFiles/tcg_test.dir/tcg_test.cpp.o.d"
  "tcg_test"
  "tcg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tcg_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chaser_run.dir/chaser_run.cpp.o"
  "CMakeFiles/chaser_run.dir/chaser_run.cpp.o.d"
  "chaser_run"
  "chaser_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

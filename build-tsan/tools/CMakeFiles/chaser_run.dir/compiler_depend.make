# Empty compiler generated dependencies file for chaser_run.
# This may be replaced when dependencies are built.

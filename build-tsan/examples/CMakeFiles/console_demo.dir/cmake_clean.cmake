file(REMOVE_RECURSE
  "CMakeFiles/console_demo.dir/console_demo.cpp.o"
  "CMakeFiles/console_demo.dir/console_demo.cpp.o.d"
  "console_demo"
  "console_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/console_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

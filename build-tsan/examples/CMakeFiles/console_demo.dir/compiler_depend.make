# Empty compiler generated dependencies file for console_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/post_analysis.dir/post_analysis.cpp.o"
  "CMakeFiles/post_analysis.dir/post_analysis.cpp.o.d"
  "post_analysis"
  "post_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

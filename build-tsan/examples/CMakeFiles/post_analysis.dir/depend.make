# Empty dependencies file for post_analysis.
# This may be replaced when dependencies are built.

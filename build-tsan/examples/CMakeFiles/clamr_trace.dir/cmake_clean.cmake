file(REMOVE_RECURSE
  "CMakeFiles/clamr_trace.dir/clamr_trace.cpp.o"
  "CMakeFiles/clamr_trace.dir/clamr_trace.cpp.o.d"
  "clamr_trace"
  "clamr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clamr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for clamr_trace.
# This may be replaced when dependencies are built.

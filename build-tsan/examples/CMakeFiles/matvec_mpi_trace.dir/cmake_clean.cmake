file(REMOVE_RECURSE
  "CMakeFiles/matvec_mpi_trace.dir/matvec_mpi_trace.cpp.o"
  "CMakeFiles/matvec_mpi_trace.dir/matvec_mpi_trace.cpp.o.d"
  "matvec_mpi_trace"
  "matvec_mpi_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matvec_mpi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for matvec_mpi_trace.
# This may be replaced when dependencies are built.

# Empty dependencies file for custom_injector.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/custom_injector.dir/custom_injector.cpp.o"
  "CMakeFiles/custom_injector.dir/custom_injector.cpp.o.d"
  "custom_injector"
  "custom_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chaser_common.dir/histogram.cpp.o"
  "CMakeFiles/chaser_common.dir/histogram.cpp.o.d"
  "CMakeFiles/chaser_common.dir/log.cpp.o"
  "CMakeFiles/chaser_common.dir/log.cpp.o.d"
  "CMakeFiles/chaser_common.dir/strings.cpp.o"
  "CMakeFiles/chaser_common.dir/strings.cpp.o.d"
  "libchaser_common.a"
  "libchaser_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

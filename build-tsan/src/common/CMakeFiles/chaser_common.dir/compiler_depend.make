# Empty compiler generated dependencies file for chaser_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchaser_common.a"
)

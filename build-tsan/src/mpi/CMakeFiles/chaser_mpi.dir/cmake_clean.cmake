file(REMOVE_RECURSE
  "CMakeFiles/chaser_mpi.dir/cluster.cpp.o"
  "CMakeFiles/chaser_mpi.dir/cluster.cpp.o.d"
  "libchaser_mpi.a"
  "libchaser_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

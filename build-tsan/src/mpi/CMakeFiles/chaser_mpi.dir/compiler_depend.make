# Empty compiler generated dependencies file for chaser_mpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchaser_mpi.a"
)

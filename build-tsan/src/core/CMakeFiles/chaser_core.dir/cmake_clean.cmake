file(REMOVE_RECURSE
  "CMakeFiles/chaser_core.dir/chaser.cpp.o"
  "CMakeFiles/chaser_core.dir/chaser.cpp.o.d"
  "CMakeFiles/chaser_core.dir/chaser_mpi.cpp.o"
  "CMakeFiles/chaser_core.dir/chaser_mpi.cpp.o.d"
  "CMakeFiles/chaser_core.dir/console.cpp.o"
  "CMakeFiles/chaser_core.dir/console.cpp.o.d"
  "CMakeFiles/chaser_core.dir/corrupt.cpp.o"
  "CMakeFiles/chaser_core.dir/corrupt.cpp.o.d"
  "CMakeFiles/chaser_core.dir/injectors/deterministic_injector.cpp.o"
  "CMakeFiles/chaser_core.dir/injectors/deterministic_injector.cpp.o.d"
  "CMakeFiles/chaser_core.dir/injectors/group_injector.cpp.o"
  "CMakeFiles/chaser_core.dir/injectors/group_injector.cpp.o.d"
  "CMakeFiles/chaser_core.dir/injectors/probabilistic_injector.cpp.o"
  "CMakeFiles/chaser_core.dir/injectors/probabilistic_injector.cpp.o.d"
  "CMakeFiles/chaser_core.dir/trace.cpp.o"
  "CMakeFiles/chaser_core.dir/trace.cpp.o.d"
  "CMakeFiles/chaser_core.dir/trigger.cpp.o"
  "CMakeFiles/chaser_core.dir/trigger.cpp.o.d"
  "libchaser_core.a"
  "libchaser_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

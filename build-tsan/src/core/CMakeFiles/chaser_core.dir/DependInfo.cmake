
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chaser.cpp" "src/core/CMakeFiles/chaser_core.dir/chaser.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/chaser.cpp.o.d"
  "/root/repo/src/core/chaser_mpi.cpp" "src/core/CMakeFiles/chaser_core.dir/chaser_mpi.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/chaser_mpi.cpp.o.d"
  "/root/repo/src/core/console.cpp" "src/core/CMakeFiles/chaser_core.dir/console.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/console.cpp.o.d"
  "/root/repo/src/core/corrupt.cpp" "src/core/CMakeFiles/chaser_core.dir/corrupt.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/corrupt.cpp.o.d"
  "/root/repo/src/core/injectors/deterministic_injector.cpp" "src/core/CMakeFiles/chaser_core.dir/injectors/deterministic_injector.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/injectors/deterministic_injector.cpp.o.d"
  "/root/repo/src/core/injectors/group_injector.cpp" "src/core/CMakeFiles/chaser_core.dir/injectors/group_injector.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/injectors/group_injector.cpp.o.d"
  "/root/repo/src/core/injectors/probabilistic_injector.cpp" "src/core/CMakeFiles/chaser_core.dir/injectors/probabilistic_injector.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/injectors/probabilistic_injector.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/chaser_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/trigger.cpp" "src/core/CMakeFiles/chaser_core.dir/trigger.cpp.o" "gcc" "src/core/CMakeFiles/chaser_core.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hub/CMakeFiles/chaser_hub.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mpi/CMakeFiles/chaser_mpi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vm/CMakeFiles/chaser_vm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/taint/CMakeFiles/chaser_taint.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/guest/CMakeFiles/chaser_guest.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/chaser_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tcg/CMakeFiles/chaser_tcg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

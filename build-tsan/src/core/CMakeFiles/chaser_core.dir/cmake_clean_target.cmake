file(REMOVE_RECURSE
  "libchaser_core.a"
)

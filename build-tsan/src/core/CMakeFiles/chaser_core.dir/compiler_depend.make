# Empty compiler generated dependencies file for chaser_core.
# This may be replaced when dependencies are built.

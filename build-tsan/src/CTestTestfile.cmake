# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("guest")
subdirs("tcg")
subdirs("vm")
subdirs("taint")
subdirs("core")
subdirs("mpi")
subdirs("hub")
subdirs("apps")
subdirs("campaign")

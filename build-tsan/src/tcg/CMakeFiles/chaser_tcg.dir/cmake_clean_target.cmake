file(REMOVE_RECURSE
  "libchaser_tcg.a"
)

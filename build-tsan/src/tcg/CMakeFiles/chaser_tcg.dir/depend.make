# Empty dependencies file for chaser_tcg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chaser_tcg.dir/ir.cpp.o"
  "CMakeFiles/chaser_tcg.dir/ir.cpp.o.d"
  "CMakeFiles/chaser_tcg.dir/optimizer.cpp.o"
  "CMakeFiles/chaser_tcg.dir/optimizer.cpp.o.d"
  "CMakeFiles/chaser_tcg.dir/translator.cpp.o"
  "CMakeFiles/chaser_tcg.dir/translator.cpp.o.d"
  "libchaser_tcg.a"
  "libchaser_tcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_tcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chaser_guest.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/builder.cpp" "src/guest/CMakeFiles/chaser_guest.dir/builder.cpp.o" "gcc" "src/guest/CMakeFiles/chaser_guest.dir/builder.cpp.o.d"
  "/root/repo/src/guest/disasm.cpp" "src/guest/CMakeFiles/chaser_guest.dir/disasm.cpp.o" "gcc" "src/guest/CMakeFiles/chaser_guest.dir/disasm.cpp.o.d"
  "/root/repo/src/guest/isa.cpp" "src/guest/CMakeFiles/chaser_guest.dir/isa.cpp.o" "gcc" "src/guest/CMakeFiles/chaser_guest.dir/isa.cpp.o.d"
  "/root/repo/src/guest/operands.cpp" "src/guest/CMakeFiles/chaser_guest.dir/operands.cpp.o" "gcc" "src/guest/CMakeFiles/chaser_guest.dir/operands.cpp.o.d"
  "/root/repo/src/guest/program.cpp" "src/guest/CMakeFiles/chaser_guest.dir/program.cpp.o" "gcc" "src/guest/CMakeFiles/chaser_guest.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/chaser_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

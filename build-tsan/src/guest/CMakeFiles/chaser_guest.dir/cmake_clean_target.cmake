file(REMOVE_RECURSE
  "libchaser_guest.a"
)

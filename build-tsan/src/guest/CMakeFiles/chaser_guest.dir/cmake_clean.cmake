file(REMOVE_RECURSE
  "CMakeFiles/chaser_guest.dir/builder.cpp.o"
  "CMakeFiles/chaser_guest.dir/builder.cpp.o.d"
  "CMakeFiles/chaser_guest.dir/disasm.cpp.o"
  "CMakeFiles/chaser_guest.dir/disasm.cpp.o.d"
  "CMakeFiles/chaser_guest.dir/isa.cpp.o"
  "CMakeFiles/chaser_guest.dir/isa.cpp.o.d"
  "CMakeFiles/chaser_guest.dir/operands.cpp.o"
  "CMakeFiles/chaser_guest.dir/operands.cpp.o.d"
  "CMakeFiles/chaser_guest.dir/program.cpp.o"
  "CMakeFiles/chaser_guest.dir/program.cpp.o.d"
  "libchaser_guest.a"
  "libchaser_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chaser_vm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchaser_vm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/chaser_vm.dir/exec.cpp.o"
  "CMakeFiles/chaser_vm.dir/exec.cpp.o.d"
  "CMakeFiles/chaser_vm.dir/memory.cpp.o"
  "CMakeFiles/chaser_vm.dir/memory.cpp.o.d"
  "CMakeFiles/chaser_vm.dir/vm.cpp.o"
  "CMakeFiles/chaser_vm.dir/vm.cpp.o.d"
  "libchaser_vm.a"
  "libchaser_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

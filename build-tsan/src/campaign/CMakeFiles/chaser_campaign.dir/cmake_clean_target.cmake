file(REMOVE_RECURSE
  "libchaser_campaign.a"
)

# Empty compiler generated dependencies file for chaser_campaign.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chaser_campaign.dir/campaign.cpp.o"
  "CMakeFiles/chaser_campaign.dir/campaign.cpp.o.d"
  "CMakeFiles/chaser_campaign.dir/parallel.cpp.o"
  "CMakeFiles/chaser_campaign.dir/parallel.cpp.o.d"
  "CMakeFiles/chaser_campaign.dir/report.cpp.o"
  "CMakeFiles/chaser_campaign.dir/report.cpp.o.d"
  "libchaser_campaign.a"
  "libchaser_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chaser_taint.
# This may be replaced when dependencies are built.

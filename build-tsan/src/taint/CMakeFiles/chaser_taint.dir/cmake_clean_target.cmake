file(REMOVE_RECURSE
  "libchaser_taint.a"
)

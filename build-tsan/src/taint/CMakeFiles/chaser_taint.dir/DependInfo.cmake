
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taint/taint.cpp" "src/taint/CMakeFiles/chaser_taint.dir/taint.cpp.o" "gcc" "src/taint/CMakeFiles/chaser_taint.dir/taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tcg/CMakeFiles/chaser_tcg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/chaser_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/guest/CMakeFiles/chaser_guest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/chaser_taint.dir/taint.cpp.o"
  "CMakeFiles/chaser_taint.dir/taint.cpp.o.d"
  "libchaser_taint.a"
  "libchaser_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

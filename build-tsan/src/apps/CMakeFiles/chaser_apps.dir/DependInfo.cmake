
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs.cpp" "src/apps/CMakeFiles/chaser_apps.dir/bfs.cpp.o" "gcc" "src/apps/CMakeFiles/chaser_apps.dir/bfs.cpp.o.d"
  "/root/repo/src/apps/clamr.cpp" "src/apps/CMakeFiles/chaser_apps.dir/clamr.cpp.o" "gcc" "src/apps/CMakeFiles/chaser_apps.dir/clamr.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/chaser_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/chaser_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/lud.cpp" "src/apps/CMakeFiles/chaser_apps.dir/lud.cpp.o" "gcc" "src/apps/CMakeFiles/chaser_apps.dir/lud.cpp.o.d"
  "/root/repo/src/apps/matvec.cpp" "src/apps/CMakeFiles/chaser_apps.dir/matvec.cpp.o" "gcc" "src/apps/CMakeFiles/chaser_apps.dir/matvec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/guest/CMakeFiles/chaser_guest.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/chaser_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for chaser_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chaser_apps.dir/bfs.cpp.o"
  "CMakeFiles/chaser_apps.dir/bfs.cpp.o.d"
  "CMakeFiles/chaser_apps.dir/clamr.cpp.o"
  "CMakeFiles/chaser_apps.dir/clamr.cpp.o.d"
  "CMakeFiles/chaser_apps.dir/kmeans.cpp.o"
  "CMakeFiles/chaser_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/chaser_apps.dir/lud.cpp.o"
  "CMakeFiles/chaser_apps.dir/lud.cpp.o.d"
  "CMakeFiles/chaser_apps.dir/matvec.cpp.o"
  "CMakeFiles/chaser_apps.dir/matvec.cpp.o.d"
  "libchaser_apps.a"
  "libchaser_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchaser_apps.a"
)

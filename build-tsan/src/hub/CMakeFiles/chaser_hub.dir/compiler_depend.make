# Empty compiler generated dependencies file for chaser_hub.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chaser_hub.dir/mpi_hooks.cpp.o"
  "CMakeFiles/chaser_hub.dir/mpi_hooks.cpp.o.d"
  "CMakeFiles/chaser_hub.dir/tainthub.cpp.o"
  "CMakeFiles/chaser_hub.dir/tainthub.cpp.o.d"
  "libchaser_hub.a"
  "libchaser_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaser_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchaser_hub.a"
)

// Tests for src/obs: metrics registry aggregation (incl. across threads —
// the `tsan` label vets the lock-free shard write path), histogram bucket
// edges, scoped-timer nesting, the live status channel's monotonic progress,
// and the identity guarantee — campaign outputs are byte-identical with
// telemetry on or off, serial and parallel.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "guest/builder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/status.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"

namespace chaser::obs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("chaser_obs_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Registry ----------------------------------------------------------------

TEST(Metrics, CounterAggregatesAcrossThreads) {
  Registry reg;
  Counter& c = reg.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kIncsPerThread);
  // Same name returns the same metric; the handle survives re-registration.
  reg.GetCounter("test_total").Inc(5);
  EXPECT_EQ(c.Value(), kThreads * kIncsPerThread + 5);
}

TEST(Metrics, HistogramObserveAcrossThreads) {
  Registry reg;
  Histogram& h = reg.GetHistogram("lat_ns", LatencyBoundsNs());
  constexpr int kThreads = 6;
  constexpr std::uint64_t kObsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kObsPerThread; ++i) {
        h.Observe(static_cast<std::uint64_t>(t) * 1000 + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kObsPerThread);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t n : h.BucketCounts()) bucket_sum += n;
  EXPECT_EQ(bucket_sum, h.Count()) << "every sample must land in some bucket";
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Registry reg;
  Histogram& h = reg.GetHistogram("edges", {10, 100});
  h.Observe(0);
  h.Observe(10);   // == bound: first bucket (inclusive upper bound)
  h.Observe(11);   // one past: second bucket
  h.Observe(100);  // == last bound: second bucket
  h.Observe(101);  // past every bound: overflow
  const std::vector<std::uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 0u + 10 + 11 + 100 + 101);
  // Cumulative: 2/5 at bound 10, 4/5 at bound 100.
  EXPECT_EQ(h.ApproxQuantile(0.4), 10u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 100u);
  EXPECT_EQ(h.ApproxQuantile(0.8), 100u);
}

TEST(Metrics, RegistryJsonIsDeterministicAndNameSorted) {
  Registry reg;
  reg.GetCounter("zeta").Inc(3);
  reg.GetCounter("alpha").Inc(1);
  reg.GetGauge("gauge_a").Set(-7);
  reg.GetHistogram("h", {10}).Observe(4);
  const std::string a = reg.ToJson();
  const std::string b = reg.ToJson();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
  EXPECT_NE(a.find("\"gauge_a\": -7"), std::string::npos) << a;
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("zeta").Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h", {10}).Count(), 0u);
}

// ---- Phase profiler ----------------------------------------------------------

TEST(Profiler, ScopedPhaseIsInertWithoutAProfiler) {
  ASSERT_EQ(ThreadProfiler(), nullptr);
  // Must not crash, allocate into any registry, or require any setup.
  const ScopedPhase a(Phase::kTranslate);
  const ScopedPhase b(Phase::kExecute);
}

TEST(Profiler, ScopedTimerNestingTracksDepthAndFeedsHistograms) {
  Registry reg;
  PhaseProfiler prof(&reg, nullptr, 1);
  SetThreadProfiler(&prof);
  {
    const ScopedPhase trial(Phase::kTrial);
    EXPECT_EQ(prof.depth(), 1u);
    {
      const ScopedPhase exec(Phase::kExecute);
      EXPECT_EQ(prof.depth(), 2u);
      const ScopedPhase translate(Phase::kTranslate);
      EXPECT_EQ(prof.depth(), 3u);
    }
    const ScopedPhase inject(Phase::kInject);
    EXPECT_EQ(prof.depth(), 2u);
  }
  EXPECT_EQ(prof.depth(), 0u);
  SetThreadProfiler(nullptr);

  EXPECT_EQ(reg.GetHistogram("phase_trial_ns", LatencyBoundsNs()).Count(), 1u);
  EXPECT_EQ(reg.GetHistogram("phase_execute_ns", LatencyBoundsNs()).Count(), 1u);
  EXPECT_EQ(reg.GetHistogram("phase_translate_ns", LatencyBoundsNs()).Count(),
            1u);
  EXPECT_EQ(reg.GetHistogram("phase_inject_ns", LatencyBoundsNs()).Count(), 1u);
}

TEST(Profiler, SpansReachTheTraceWriterWithPhaseNames) {
  const std::string dir = TempDir("spans");
  Registry reg;
  TraceJsonWriter writer(dir + "/t.json");
  const std::uint32_t tid = writer.RegisterThread("main");
  PhaseProfiler prof(&reg, &writer, tid);
  SetThreadProfiler(&prof);
  {
    const ScopedPhase outer(Phase::kExecute);
    const ScopedPhase inner(Phase::kTranslate);
  }
  SetThreadProfiler(nullptr);
  prof.Flush();
  writer.Finish();
  const std::string trace = Slurp(dir + "/t.json");
  EXPECT_NE(trace.find("\"name\":\"execute\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"translate\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"main\""), std::string::npos)
      << "thread-name metadata event missing: " << trace;
  fs::remove_all(dir);
}

// ---- Status channel ----------------------------------------------------------

std::uint64_t ParseDone(const std::string& json) {
  const auto pos = json.find("\"done\": ");
  EXPECT_NE(pos, std::string::npos) << json;
  return std::strtoull(json.c_str() + pos + 8, nullptr, 10);
}

TEST(Status, DoneIsMonotonicAcrossRewrites) {
  const std::string dir = TempDir("status");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 10, .every = 1});
  std::uint64_t last_done = 0;
  for (int i = 0; i < 10; ++i) {
    writer.OnTrialDone(/*outcome=*/0, 0, 0, /*replayed=*/false);
    const std::string json = Slurp(path);
    const std::uint64_t done = ParseDone(json);
    EXPECT_GE(done, last_done) << "done must never go backwards";
    EXPECT_LE(done, 10u);
    EXPECT_NE(json.find("\"running\": true"), std::string::npos) << json;
    last_done = done;
  }
  writer.Finish();
  const std::string final_json = Slurp(path);
  EXPECT_EQ(ParseDone(final_json), 10u);
  EXPECT_NE(final_json.find("\"running\": false"), std::string::npos)
      << final_json;
  fs::remove_all(dir);
}

TEST(Status, ReplayedTrialsCountTowardDoneButNotTheRate) {
  const std::string dir = TempDir("status_replay");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 4, .every = 1});
  writer.OnTrialDone(0, 0, 0, /*replayed=*/true);
  writer.OnTrialDone(1, 0, 0, /*replayed=*/true);
  writer.OnTrialDone(2, 0, 0, /*replayed=*/false);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  writer.Finish();
  const std::string json = Slurp(path);
  EXPECT_EQ(ParseDone(json), 4u);
  EXPECT_NE(json.find("\"replayed\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"benign\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"terminated\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sdc\": 1"), std::string::npos) << json;
  fs::remove_all(dir);
}

TEST(Status, EtaIsNullWhileUnknownAndZeroWhenNothingRemains) {
  const std::string dir = TempDir("status_eta");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 3, .every = 1});
  // Replayed trials are excluded from the rate: trials remain but nothing
  // has executed here, so the ETA is genuinely unknown — null, never 0.
  writer.OnTrialDone(0, 0, 0, /*replayed=*/true);
  EXPECT_NE(Slurp(path).find("\"eta_s\": null"), std::string::npos)
      << Slurp(path);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  // No trials left: 0.0 ("finishing"), not null.
  EXPECT_NE(Slurp(path).find("\"eta_s\": 0.0"), std::string::npos)
      << Slurp(path);
  writer.Finish();
  fs::remove_all(dir);
}

TEST(Status, EstimatesBlockAppearsOnlyWhenASourceIsSet) {
  const std::string dir = TempDir("status_estimates");
  const std::string without = dir + "/plain.json";
  {
    StatusWriter writer({.path = without, .app = "t", .total = 1, .every = 1});
    writer.OnTrialDone(0, 0, 0, false);
    writer.Finish();
  }
  EXPECT_EQ(Slurp(without).find("\"estimates\""), std::string::npos);

  const std::string with = dir + "/sampled.json";
  {
    StatusWriter::Options options{
        .path = with, .app = "t", .total = 1, .every = 1};
    options.estimates = [] {
      EstimateSnapshot es;
      es.trials = 40;
      es.effective_n = 38.5;
      es.stop_width = 0.02;
      es.converged = true;
      es.sdc = {.rate = 0.25, .lo = 0.15, .hi = 0.35};
      return es;
    };
    StatusWriter writer(std::move(options));
    writer.OnTrialDone(2, 0, 0, false);
    writer.Finish();
  }
  const std::string json = Slurp(with);
  EXPECT_NE(json.find("\"estimates\": {\"trials\": 40"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"converged\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sdc\": {\"rate\": 0.250000"), std::string::npos)
      << json;
  fs::remove_all(dir);
}

// ---- Campaign integration: identity on/off, serial and parallel --------------

using campaign::Campaign;
using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::ParallelCampaign;
using campaign::WriteRecordsCsv;
using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

/// Same single-process accumulator campaign_test drives — cheap and steers
/// through benign/sdc/terminated outcomes.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 40) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

std::string ResultCsv(const CampaignResult& result) {
  std::ostringstream csv;
  WriteRecordsCsv(result.records, csv);
  return csv.str();
}

TEST(TelemetryIdentity, SerialReportIsByteIdenticalWithTelemetryOnOrOff) {
  const std::string dir = TempDir("identity_serial");
  CampaignConfig config;
  config.runs = 12;
  config.seed = 21;

  Campaign plain(AccumulatorApp(), config);
  const std::string csv_off = ResultCsv(plain.Run());

  Telemetry telemetry({.trace_path = dir + "/t.json",
                       .status_path = dir + "/s.json",
                       .metrics_path = dir + "/m.json"});
  config.telemetry = &telemetry;
  Campaign instrumented(AccumulatorApp(), config);
  const std::string csv_on = ResultCsv(instrumented.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_off, csv_on)
      << "telemetry observed its way into the campaign results";
  const std::string status = Slurp(dir + "/s.json");
  EXPECT_EQ(ParseDone(status), 12u);
  EXPECT_NE(status.find("\"running\": false"), std::string::npos);
  EXPECT_NE(Slurp(dir + "/m.json").find("campaign_trials_total"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(TelemetryIdentity, ParallelMatchesSerialWithTelemetryAttached) {
  const std::string dir = TempDir("identity_parallel");
  CampaignConfig config;
  config.runs = 12;
  config.seed = 21;

  Campaign serial(AccumulatorApp(), config);
  const std::string csv_serial = ResultCsv(serial.Run());

  Telemetry telemetry({.status_path = dir + "/s.json"});
  config.telemetry = &telemetry;
  ParallelCampaign parallel(AccumulatorApp(), config, /*jobs=*/4);
  const std::string csv_parallel = ResultCsv(parallel.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_serial, csv_parallel);
  EXPECT_EQ(ParseDone(Slurp(dir + "/s.json")), 12u);
  fs::remove_all(dir);
}

TEST(TelemetryIdentity, MpiCampaignTraceCoversTheInstrumentedPhases) {
  const std::string dir = TempDir("trace_phases");
  CampaignConfig config;
  config.runs = 8;
  config.seed = 3;

  Campaign plain(apps::BuildMatvec({}), config);
  const std::string csv_off = ResultCsv(plain.Run());

  Telemetry telemetry({.trace_path = dir + "/t.json"});
  config.telemetry = &telemetry;
  Campaign instrumented(apps::BuildMatvec({}), config);
  const std::string csv_on = ResultCsv(instrumented.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_off, csv_on);
  const std::string trace = Slurp(dir + "/t.json");
  int phases = 0;
  for (const char* name : {"golden", "trial", "translate", "execute", "inject",
                           "taint-propagate", "hub-publish", "hub-poll"}) {
    if (trace.find("\"name\":\"" + std::string(name) + "\"") !=
        std::string::npos) {
      ++phases;
    }
  }
  EXPECT_GE(phases, 5) << "expected at least 5 distinct phases in the trace";
  EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(Telemetry, TrialCountersLandInTheGlobalRegistry) {
  Registry::Global().Reset();
  Telemetry telemetry({});
  telemetry.BeginCampaign("t", 2);
  telemetry.AttachThread("main");
  TrialStats t;
  t.outcome = 2;  // sdc
  t.instructions = 1000;
  t.injections = 3;
  telemetry.OnTrialDone(t, 0, 500);
  t.outcome = 0;  // benign
  t.replayed = true;
  telemetry.OnTrialDone(t, 0, 0);
  telemetry.DetachThread();
  telemetry.Finish();
  Registry& reg = Registry::Global();
  EXPECT_EQ(reg.GetCounter("campaign_trials_total").Value(), 2u);
  EXPECT_EQ(reg.GetCounter("campaign_trials_replayed").Value(), 1u);
  EXPECT_EQ(reg.GetCounter("campaign_outcome_sdc").Value(), 1u);
  // Replayed trials did not execute here: no per-trial hot-path traffic.
  EXPECT_EQ(reg.GetCounter("guest_instructions_total").Value(), 1000u);
  EXPECT_EQ(reg.GetCounter("injections_total").Value(), 3u);
  Registry::Global().Reset();
}

}  // namespace
}  // namespace chaser::obs

// Tests for src/obs: metrics registry aggregation (incl. across threads —
// the `tsan` label vets the lock-free shard write path), histogram bucket
// edges, scoped-timer nesting, the live status channel's monotonic progress,
// and the identity guarantee — campaign outputs are byte-identical with
// telemetry on or off, serial and parallel.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "common/error.h"
#include "common/fileio.h"
#include "guest/builder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/status.h"
#include "obs/telemetry.h"
#include "obs/trace_merge.h"
#include "obs/trace_writer.h"

namespace chaser::obs {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("chaser_obs_test_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Registry ----------------------------------------------------------------

TEST(Metrics, CounterAggregatesAcrossThreads) {
  Registry reg;
  Counter& c = reg.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kIncsPerThread);
  // Same name returns the same metric; the handle survives re-registration.
  reg.GetCounter("test_total").Inc(5);
  EXPECT_EQ(c.Value(), kThreads * kIncsPerThread + 5);
}

TEST(Metrics, HistogramObserveAcrossThreads) {
  Registry reg;
  Histogram& h = reg.GetHistogram("lat_ns", LatencyBoundsNs());
  constexpr int kThreads = 6;
  constexpr std::uint64_t kObsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kObsPerThread; ++i) {
        h.Observe(static_cast<std::uint64_t>(t) * 1000 + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kObsPerThread);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t n : h.BucketCounts()) bucket_sum += n;
  EXPECT_EQ(bucket_sum, h.Count()) << "every sample must land in some bucket";
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Registry reg;
  Histogram& h = reg.GetHistogram("edges", {10, 100});
  h.Observe(0);
  h.Observe(10);   // == bound: first bucket (inclusive upper bound)
  h.Observe(11);   // one past: second bucket
  h.Observe(100);  // == last bound: second bucket
  h.Observe(101);  // past every bound: overflow
  const std::vector<std::uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 0u + 10 + 11 + 100 + 101);
  // Cumulative: 2/5 at bound 10, 4/5 at bound 100.
  EXPECT_EQ(h.ApproxQuantile(0.4), 10u);
  EXPECT_EQ(h.ApproxQuantile(0.5), 100u);
  EXPECT_EQ(h.ApproxQuantile(0.8), 100u);
}

TEST(Metrics, RegistryJsonIsDeterministicAndNameSorted) {
  Registry reg;
  reg.GetCounter("zeta").Inc(3);
  reg.GetCounter("alpha").Inc(1);
  reg.GetGauge("gauge_a").Set(-7);
  reg.GetHistogram("h", {10}).Observe(4);
  const std::string a = reg.ToJson();
  const std::string b = reg.ToJson();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
  EXPECT_NE(a.find("\"gauge_a\": -7"), std::string::npos) << a;
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("zeta").Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h", {10}).Count(), 0u);
}

// ---- Phase profiler ----------------------------------------------------------

TEST(Profiler, ScopedPhaseIsInertWithoutAProfiler) {
  ASSERT_EQ(ThreadProfiler(), nullptr);
  // Must not crash, allocate into any registry, or require any setup.
  const ScopedPhase a(Phase::kTranslate);
  const ScopedPhase b(Phase::kExecute);
}

TEST(Profiler, ScopedTimerNestingTracksDepthAndFeedsHistograms) {
  Registry reg;
  PhaseProfiler prof(&reg, nullptr, 1);
  SetThreadProfiler(&prof);
  {
    const ScopedPhase trial(Phase::kTrial);
    EXPECT_EQ(prof.depth(), 1u);
    {
      const ScopedPhase exec(Phase::kExecute);
      EXPECT_EQ(prof.depth(), 2u);
      const ScopedPhase translate(Phase::kTranslate);
      EXPECT_EQ(prof.depth(), 3u);
    }
    const ScopedPhase inject(Phase::kInject);
    EXPECT_EQ(prof.depth(), 2u);
  }
  EXPECT_EQ(prof.depth(), 0u);
  SetThreadProfiler(nullptr);

  EXPECT_EQ(reg.GetHistogram("phase_trial_ns", LatencyBoundsNs()).Count(), 1u);
  EXPECT_EQ(reg.GetHistogram("phase_execute_ns", LatencyBoundsNs()).Count(), 1u);
  EXPECT_EQ(reg.GetHistogram("phase_translate_ns", LatencyBoundsNs()).Count(),
            1u);
  EXPECT_EQ(reg.GetHistogram("phase_inject_ns", LatencyBoundsNs()).Count(), 1u);
}

TEST(Profiler, SpansReachTheTraceWriterWithPhaseNames) {
  const std::string dir = TempDir("spans");
  Registry reg;
  TraceJsonWriter writer(dir + "/t.json");
  const std::uint32_t tid = writer.RegisterThread("main");
  PhaseProfiler prof(&reg, &writer, tid);
  SetThreadProfiler(&prof);
  {
    const ScopedPhase outer(Phase::kExecute);
    const ScopedPhase inner(Phase::kTranslate);
  }
  SetThreadProfiler(nullptr);
  prof.Flush();
  writer.Finish();
  const std::string trace = Slurp(dir + "/t.json");
  EXPECT_NE(trace.find("\"name\":\"execute\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"translate\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"main\""), std::string::npos)
      << "thread-name metadata event missing: " << trace;
  fs::remove_all(dir);
}

// ---- Status channel ----------------------------------------------------------

std::uint64_t ParseDone(const std::string& json) {
  const auto pos = json.find("\"done\": ");
  EXPECT_NE(pos, std::string::npos) << json;
  return std::strtoull(json.c_str() + pos + 8, nullptr, 10);
}

TEST(Status, DoneIsMonotonicAcrossRewrites) {
  const std::string dir = TempDir("status");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 10, .every = 1});
  std::uint64_t last_done = 0;
  for (int i = 0; i < 10; ++i) {
    writer.OnTrialDone(/*outcome=*/0, 0, 0, /*replayed=*/false);
    const std::string json = Slurp(path);
    const std::uint64_t done = ParseDone(json);
    EXPECT_GE(done, last_done) << "done must never go backwards";
    EXPECT_LE(done, 10u);
    EXPECT_NE(json.find("\"running\": true"), std::string::npos) << json;
    last_done = done;
  }
  writer.Finish();
  const std::string final_json = Slurp(path);
  EXPECT_EQ(ParseDone(final_json), 10u);
  EXPECT_NE(final_json.find("\"running\": false"), std::string::npos)
      << final_json;
  fs::remove_all(dir);
}

TEST(Status, ReplayedTrialsCountTowardDoneButNotTheRate) {
  const std::string dir = TempDir("status_replay");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 4, .every = 1});
  writer.OnTrialDone(0, 0, 0, /*replayed=*/true);
  writer.OnTrialDone(1, 0, 0, /*replayed=*/true);
  writer.OnTrialDone(2, 0, 0, /*replayed=*/false);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  writer.Finish();
  const std::string json = Slurp(path);
  EXPECT_EQ(ParseDone(json), 4u);
  EXPECT_NE(json.find("\"replayed\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"benign\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"terminated\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sdc\": 1"), std::string::npos) << json;
  fs::remove_all(dir);
}

TEST(Status, EtaIsNullWhileUnknownAndZeroWhenNothingRemains) {
  const std::string dir = TempDir("status_eta");
  const std::string path = dir + "/status.json";
  StatusWriter writer({.path = path, .app = "t", .total = 3, .every = 1});
  // Replayed trials are excluded from the rate: trials remain but nothing
  // has executed here, so the ETA is genuinely unknown — null, never 0.
  writer.OnTrialDone(0, 0, 0, /*replayed=*/true);
  EXPECT_NE(Slurp(path).find("\"eta_s\": null"), std::string::npos)
      << Slurp(path);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  writer.OnTrialDone(0, 0, 0, /*replayed=*/false);
  // No trials left: 0.0 ("finishing"), not null.
  EXPECT_NE(Slurp(path).find("\"eta_s\": 0.0"), std::string::npos)
      << Slurp(path);
  writer.Finish();
  fs::remove_all(dir);
}

TEST(Status, EstimatesBlockAppearsOnlyWhenASourceIsSet) {
  const std::string dir = TempDir("status_estimates");
  const std::string without = dir + "/plain.json";
  {
    StatusWriter writer({.path = without, .app = "t", .total = 1, .every = 1});
    writer.OnTrialDone(0, 0, 0, false);
    writer.Finish();
  }
  EXPECT_EQ(Slurp(without).find("\"estimates\""), std::string::npos);

  const std::string with = dir + "/sampled.json";
  {
    StatusWriter::Options options{
        .path = with, .app = "t", .total = 1, .every = 1};
    options.estimates = [] {
      EstimateSnapshot es;
      es.trials = 40;
      es.effective_n = 38.5;
      es.stop_width = 0.02;
      es.converged = true;
      es.sdc = {.rate = 0.25, .lo = 0.15, .hi = 0.35};
      return es;
    };
    StatusWriter writer(std::move(options));
    writer.OnTrialDone(2, 0, 0, false);
    writer.Finish();
  }
  const std::string json = Slurp(with);
  EXPECT_NE(json.find("\"estimates\": {\"trials\": 40"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"converged\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sdc\": {\"rate\": 0.250000"), std::string::npos)
      << json;
  fs::remove_all(dir);
}

// ---- Prometheus exposition and the scrape server -----------------------------

TEST(Prometheus, RendersCountersGaugesAndCumulativeHistograms) {
  Registry reg;
  reg.GetCounter("b_total").Inc(3);
  reg.GetCounter("a_total").Inc(1);  // registered later, renders first
  reg.GetGauge("a_gauge").Set(-5);
  Histogram& h = reg.GetHistogram("lat_ns", {10, 100});
  h.Observe(5);    // bucket le=10
  h.Observe(50);   // bucket le=100
  h.Observe(500);  // overflow: only le=+Inf
  const std::string text = reg.ToPrometheus();

  EXPECT_NE(text.find("# TYPE b_total counter\nb_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE a_gauge gauge\na_gauge -5\n"), std::string::npos)
      << text;
  // Buckets are cumulative and the +Inf bucket equals _count.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"10\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_bucket{le=\"100\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ns_sum 555\n"), std::string::npos) << text;
  // Families render name-sorted within each kind, whatever the
  // registration order.
  EXPECT_LT(text.find("# TYPE a_total"), text.find("# TYPE b_total"));
}

TEST(Prometheus, LabeledSeriesShareOneTypeLine) {
  Registry reg;
  reg.GetCounter(LabeledName("cmds_total", "cmd", "poll")).Inc(2);
  reg.GetCounter(LabeledName("cmds_total", "cmd", "publish")).Inc(7);
  // A longer unlabeled name that sorts BETWEEN the base and its labeled
  // series in raw key order — the renderer must still group the family.
  reg.GetCounter("cmds_total_other").Inc(1);
  const std::string text = reg.ToPrometheus();

  const std::size_t type_pos = text.find("# TYPE cmds_total counter");
  ASSERT_NE(type_pos, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE cmds_total counter", type_pos + 1),
            std::string::npos)
      << "one TYPE line per family:\n" << text;
  EXPECT_NE(text.find("cmds_total{cmd=\"poll\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("cmds_total{cmd=\"publish\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cmds_total_other counter"), std::string::npos);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  EXPECT_EQ(LabeledName("m", "k", "a\"b\\c\nd"),
            "m{k=\"a\\\"b\\\\c\\nd\"}");
  Registry reg;
  reg.GetCounter(LabeledName("m", "k", "a\"b")).Inc();
  EXPECT_NE(reg.ToPrometheus().find("m{k=\"a\\\"b\"} 1\n"), std::string::npos);
}

TEST(Prometheus, PrometheusValueFindsASeries) {
  const std::string text =
      "# TYPE x counter\nx 4\nx_more 9\n# TYPE y gauge\ny -2\n";
  double v = 0.0;
  ASSERT_TRUE(PrometheusValue(text, "x", &v));
  EXPECT_DOUBLE_EQ(v, 4.0);
  ASSERT_TRUE(PrometheusValue(text, "y", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_FALSE(PrometheusValue(text, "z", &v));
}

TEST(ExportServer, ServesMetricsStatusAndHealth) {
  Registry reg;
  reg.GetCounter("served_total").Inc(11);
  ExportServer::Options options;
  options.registry = &reg;
  options.status_body = [] { return std::string("{\"live\": true}\n"); };
  ExportServer server(std::move(options));
  ASSERT_GT(server.port(), 0) << "port 0 must bind an ephemeral port";

  const HttpResponse metrics = HttpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("served_total 11\n"), std::string::npos);

  const HttpResponse status = HttpGet("127.0.0.1", server.port(), "/status");
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(status.body, "{\"live\": true}\n");

  const HttpResponse health = HttpGet("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse missing = HttpGet("127.0.0.1", server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  server.Stop();
}

TEST(ExportServer, StatusWithoutASourceIs404) {
  Registry reg;
  ExportServer::Options options;
  options.registry = &reg;
  ExportServer server(std::move(options));
  EXPECT_EQ(HttpGet("127.0.0.1", server.port(), "/status").status, 404);
}

TEST(ExportServer, ScrapesWhileRecordersHammerTheRegistry) {
  // The tsan-vetted contract behind the <2% overhead claim: scrapes hold
  // the registry mutex briefly while writers stay lock-free; neither side
  // torn-reads the other. 4 writer threads + live HTTP scrapes.
  Registry reg;
  ExportServer::Options options;
  options.registry = &reg;
  ExportServer server(std::move(options));

  Counter& c = reg.GetCounter("hammer_total");
  Histogram& h = reg.GetHistogram("hammer_ns", {100, 1000});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&c, &h, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.Inc();
        h.Observe(i++ % 2000);
      }
    });
  }
  for (int scrape = 0; scrape < 20; ++scrape) {
    const HttpResponse r = HttpGet("127.0.0.1", server.port(), "/metrics");
    ASSERT_EQ(r.status, 200);
    double total = 0.0, count = 0.0, inf = 0.0;
    ASSERT_TRUE(PrometheusValue(r.body, "hammer_total", &total));
    ASSERT_TRUE(PrometheusValue(r.body, "hammer_ns_count", &count));
    ASSERT_TRUE(
        PrometheusValue(r.body, "hammer_ns_bucket{le=\"+Inf\"}", &inf));
    EXPECT_EQ(count, inf) << "_count must equal the +Inf bucket mid-storm";
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  server.Stop();
  const std::string text = reg.ToPrometheus();
  double total = 0.0;
  ASSERT_TRUE(PrometheusValue(text, "hammer_total", &total));
  EXPECT_EQ(static_cast<std::uint64_t>(total), c.Value());
}

// ---- Trace merge -------------------------------------------------------------

TEST(TraceMerge, StitchesProcessesAndAlignsClocks) {
  const std::string dir = TempDir("trace_merge");
  const std::string path_a = dir + "/a.json";
  const std::string path_b = dir + "/b.json";
  {
    TraceJsonWriter w(path_a, /*pid=*/1, "shard-0");
    const std::uint32_t tid = w.RegisterThread("main");
    w.AddSpan(tid, "trial", 1'000'000, 2'000'000, {});
    w.Finish();
  }
  {
    TraceJsonWriter w(path_b, /*pid=*/1, "shard-1");
    // Pretend this process's clock runs 5ms behind the hub's.
    w.SetClockOffsetUs(5000);
    const std::uint32_t tid = w.RegisterThread("main");
    w.AddSpan(tid, "trial", 1'000'000, 2'000'000, {});
    w.Finish();
  }
  TraceMergeStats stats;
  const std::string merged = MergeChromeTraces(
      {ReadFileToString(path_a), ReadFileToString(path_b)}, &stats);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.max_skew_us, 5000);
  // File order fixes process identity: a=1, b=2.
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("shard-0"), std::string::npos);
  EXPECT_NE(merged.find("shard-1"), std::string::npos);
  // Both files share one RealtimeAnchorUs (same process); b's +5000us offset
  // makes it the later anchor, so its events shift +5000us while a's stay.
  EXPECT_NE(merged.find("\"ts\":1000.000"), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"ts\":6000.000"), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"chaserClockAnchorUs\": "), std::string::npos);
  fs::remove_all(dir);
}

TEST(TraceMerge, RejectsADocumentWithoutAnAnchor) {
  EXPECT_THROW(MergeChromeTraces({"{\"traceEvents\": [\n]\n}"}),
               ConfigError);
}

// ---- Render-only status (the /status feed) -----------------------------------

TEST(Status, RenderSnapshotWorksWithoutAFile) {
  StatusWriter::Options options{.path = "", .app = "t", .total = 4, .every = 1};
  options.obs_endpoint = "127.0.0.1:9100";
  StatusWriter writer(std::move(options));
  writer.OnTrialDone(0, 0, 0, false);
  const std::string live = writer.RenderSnapshot();
  EXPECT_NE(live.find("\"running\": true"), std::string::npos) << live;
  EXPECT_NE(live.find("\"done\": 1"), std::string::npos);
  EXPECT_NE(live.find("\"obs\": \"127.0.0.1:9100\""), std::string::npos);
  EXPECT_EQ(writer.writes(), 0u) << "no path, no file writes";
  writer.Finish();
  EXPECT_NE(writer.RenderSnapshot().find("\"running\": false"),
            std::string::npos);
}

TEST(Telemetry, ExportServerServesTheCampaignStatus) {
  Registry::Global().Reset();
  TelemetryOptions options;
  options.obs_port = 0;  // ephemeral
  Telemetry telemetry(std::move(options));
  const std::string endpoint = telemetry.obs_endpoint();
  ASSERT_NE(endpoint, "");
  const auto colon = endpoint.rfind(':');
  const std::uint16_t port =
      static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1)));

  // Before BeginCampaign: a placeholder, not an error.
  EXPECT_NE(HttpGet("127.0.0.1", port, "/status")
                .body.find("\"started\": false"),
            std::string::npos);

  telemetry.BeginCampaign("probe", 2);
  TrialStats t;
  telemetry.OnTrialDone(t, 0, 100);
  const HttpResponse status = HttpGet("127.0.0.1", port, "/status");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"app\": \"probe\""), std::string::npos);
  EXPECT_NE(status.body.find("\"done\": 1"), std::string::npos);
  EXPECT_NE(status.body.find("\"obs\": \"" + endpoint + "\""),
            std::string::npos)
      << "the status document advertises its own scrape endpoint";

  const HttpResponse metrics = HttpGet("127.0.0.1", port, "/metrics");
  double trials = 0.0;
  ASSERT_TRUE(PrometheusValue(metrics.body, "campaign_trials_total", &trials));
  EXPECT_DOUBLE_EQ(trials, 1.0);
  telemetry.Finish();
  // The endpoint keeps answering after Finish (dashboards read final state).
  EXPECT_NE(HttpGet("127.0.0.1", port, "/status")
                .body.find("\"running\": false"),
            std::string::npos);
  Registry::Global().Reset();
}

// ---- Campaign integration: identity on/off, serial and parallel --------------

using campaign::Campaign;
using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::ParallelCampaign;
using campaign::WriteRecordsCsv;
using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

/// Same single-process accumulator campaign_test drives — cheap and steers
/// through benign/sdc/terminated outcomes.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 40) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

std::string ResultCsv(const CampaignResult& result) {
  std::ostringstream csv;
  WriteRecordsCsv(result.records, csv);
  return csv.str();
}

TEST(TelemetryIdentity, SerialReportIsByteIdenticalWithTelemetryOnOrOff) {
  const std::string dir = TempDir("identity_serial");
  CampaignConfig config;
  config.runs = 12;
  config.seed = 21;

  Campaign plain(AccumulatorApp(), config);
  const std::string csv_off = ResultCsv(plain.Run());

  Telemetry telemetry({.trace_path = dir + "/t.json",
                       .status_path = dir + "/s.json",
                       .metrics_path = dir + "/m.json"});
  config.telemetry = &telemetry;
  Campaign instrumented(AccumulatorApp(), config);
  const std::string csv_on = ResultCsv(instrumented.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_off, csv_on)
      << "telemetry observed its way into the campaign results";
  const std::string status = Slurp(dir + "/s.json");
  EXPECT_EQ(ParseDone(status), 12u);
  EXPECT_NE(status.find("\"running\": false"), std::string::npos);
  EXPECT_NE(Slurp(dir + "/m.json").find("campaign_trials_total"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(TelemetryIdentity, ParallelMatchesSerialWithTelemetryAttached) {
  const std::string dir = TempDir("identity_parallel");
  CampaignConfig config;
  config.runs = 12;
  config.seed = 21;

  Campaign serial(AccumulatorApp(), config);
  const std::string csv_serial = ResultCsv(serial.Run());

  Telemetry telemetry({.status_path = dir + "/s.json"});
  config.telemetry = &telemetry;
  ParallelCampaign parallel(AccumulatorApp(), config, /*jobs=*/4);
  const std::string csv_parallel = ResultCsv(parallel.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_serial, csv_parallel);
  EXPECT_EQ(ParseDone(Slurp(dir + "/s.json")), 12u);
  fs::remove_all(dir);
}

TEST(TelemetryIdentity, MpiCampaignTraceCoversTheInstrumentedPhases) {
  const std::string dir = TempDir("trace_phases");
  CampaignConfig config;
  config.runs = 8;
  config.seed = 3;

  Campaign plain(apps::BuildMatvec({}), config);
  const std::string csv_off = ResultCsv(plain.Run());

  Telemetry telemetry({.trace_path = dir + "/t.json"});
  config.telemetry = &telemetry;
  Campaign instrumented(apps::BuildMatvec({}), config);
  const std::string csv_on = ResultCsv(instrumented.Run());
  telemetry.Finish();

  EXPECT_EQ(csv_off, csv_on);
  const std::string trace = Slurp(dir + "/t.json");
  int phases = 0;
  for (const char* name : {"golden", "trial", "translate", "execute", "inject",
                           "taint-propagate", "hub-publish", "hub-poll"}) {
    if (trace.find("\"name\":\"" + std::string(name) + "\"") !=
        std::string::npos) {
      ++phases;
    }
  }
  EXPECT_GE(phases, 5) << "expected at least 5 distinct phases in the trace";
  EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(Telemetry, TrialCountersLandInTheGlobalRegistry) {
  Registry::Global().Reset();
  Telemetry telemetry({});
  telemetry.BeginCampaign("t", 2);
  telemetry.AttachThread("main");
  TrialStats t;
  t.outcome = 2;  // sdc
  t.instructions = 1000;
  t.injections = 3;
  telemetry.OnTrialDone(t, 0, 500);
  t.outcome = 0;  // benign
  t.replayed = true;
  telemetry.OnTrialDone(t, 0, 0);
  telemetry.DetachThread();
  telemetry.Finish();
  Registry& reg = Registry::Global();
  EXPECT_EQ(reg.GetCounter("campaign_trials_total").Value(), 2u);
  EXPECT_EQ(reg.GetCounter("campaign_trials_replayed").Value(), 1u);
  EXPECT_EQ(reg.GetCounter("campaign_outcome_sdc").Value(), 1u);
  // Replayed trials did not execute here: no per-trial hot-path traffic.
  EXPECT_EQ(reg.GetCounter("guest_instructions_total").Value(), 1000u);
  EXPECT_EQ(reg.GetCounter("injections_total").Value(), 3u);
  Registry::Global().Reset();
}

}  // namespace
}  // namespace chaser::obs

// Tests for the campaign post-analysis module: CSV round-trips and the
// offline propagation statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/report.h"
#include "common/error.h"
#include "core/trace.h"

namespace chaser::campaign {
namespace {

RunRecord SampleRecord(std::uint64_t seed) {
  RunRecord r;
  r.run_seed = seed;
  r.outcome = Outcome::kTerminated;
  r.kind = vm::TerminationKind::kSignaled;
  r.signal = vm::GuestSignal::kSegv;
  r.inject_rank = 0;
  r.failure_rank = 2;
  r.deadlock = false;
  r.propagated_cross_rank = true;
  r.propagated_cross_node = true;
  r.injections = 1;
  r.tainted_reads = 123;
  r.tainted_writes = 45;
  r.peak_tainted_bytes = 678;
  r.trigger_nth = 999;
  r.flip_bits = 2;
  r.instructions = 1'000'000;
  r.trace_dropped = 41;
  return r;
}

TEST(Report, RecordsCsvRoundTrip) {
  std::vector<RunRecord> records{SampleRecord(1), SampleRecord(2)};
  records[1].outcome = Outcome::kBenign;
  records[1].kind = vm::TerminationKind::kExited;
  records[1].signal = vm::GuestSignal::kNone;
  records[1].failure_rank = -1;

  std::stringstream ss;
  WriteRecordsCsv(records, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].run_seed, 1u);
  EXPECT_EQ(back[0].outcome, Outcome::kTerminated);
  EXPECT_EQ(back[0].signal, vm::GuestSignal::kSegv);
  EXPECT_EQ(back[0].failure_rank, 2);
  EXPECT_TRUE(back[0].propagated_cross_node);
  EXPECT_EQ(back[0].tainted_reads, 123u);
  EXPECT_EQ(back[0].trace_dropped, 41u);
  EXPECT_EQ(back[1].outcome, Outcome::kBenign);
  EXPECT_EQ(back[1].failure_rank, -1);
}

TEST(Report, AppendBufferWriterIsByteExact) {
  // The writer formats rows into one preallocated append buffer instead of
  // per-field ostream inserts; pin the exact bytes so any future formatter
  // change that would perturb archived CSVs (or the CTR export identity)
  // fails here first.
  std::stringstream ss;
  WriteRecordsCsv({SampleRecord(1)}, ss);
  EXPECT_EQ(ss.str(),
            "#chaser-records-csv v4\n"
            "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
            "propagated_cross_rank,propagated_cross_node,injections,"
            "tainted_reads,tainted_writes,peak_tainted_bytes,"
            "tainted_output_bytes,trigger_nth,flip_bits,instructions,"
            "trace_dropped,taint_lost,retries,infra_error,tb_chain_hits,"
            "tlb_hits,tlb_misses\n"
            "1,terminated,os-exception,SIGSEGV,0,2,0,1,1,1,123,45,678,0,999,2,"
            "1000000,41,0,0,,0,0,0\n");

  // And the streamed output is exactly header + per-row appends, including
  // across the 64 KiB chunked-flush boundary.
  std::vector<RunRecord> many;
  for (std::uint64_t i = 0; i < 1500; ++i) many.push_back(SampleRecord(i));
  std::stringstream streamed;
  WriteRecordsCsv(many, streamed);
  std::string expected;
  AppendRecordsCsvHeader(&expected, 4);
  for (const RunRecord& r : many) AppendRecordsCsvRow(&expected, r, 4);
  EXPECT_GT(expected.size(), std::size_t{1} << 16);
  EXPECT_EQ(streamed.str(), expected);
}

TEST(Report, ReadRejectsBadHeader) {
  std::stringstream ss("nonsense\n1,2,3\n");
  EXPECT_THROW(ReadRecordsCsv(ss), ConfigError);
}

// ---- Format versioning --------------------------------------------------------

constexpr const char* kHeaderV1 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions";

TEST(Report, WriterEmitsVersionLine) {
  // Uniform campaigns keep writing the legacy v4 layout byte for byte;
  // sampled campaigns opt into v5, and only custom-injector campaigns (any
  // record naming its injector) write the current (v6) format.
  std::stringstream uniform;
  WriteRecordsCsv({SampleRecord(1)}, uniform);
  EXPECT_EQ(uniform.str().rfind("#chaser-records-csv v4\n", 0), 0u)
      << "uniform campaigns must stay byte-identical to pre-sampling builds";

  std::stringstream sampled;
  WriteRecordsCsv({SampleRecord(1)}, sampled, SamplePolicy::kWeighted);
  EXPECT_EQ(sampled.str().rfind("#chaser-records-csv v5\n", 0), 0u)
      << "sampled default-injector campaigns must stay byte-identical to "
         "pre-registry builds";

  RunRecord custom = SampleRecord(1);
  custom.injector = "multibit";
  custom.fault_class = "transient-bitflip";
  std::stringstream injected;
  WriteRecordsCsv({custom}, injected);
  const std::string expect =
      "#chaser-records-csv v" + std::to_string(kRecordsCsvVersion) + "\n";
  EXPECT_EQ(injected.str().rfind(expect, 0), 0u)
      << "files must self-identify with the shared kRecordsCsvVersion so the "
         "next column growth cannot silently misparse them";
}

TEST(Report, SamplingFieldsRoundTripThroughV5) {
  RunRecord rec = SampleRecord(21);
  rec.inject_pc = 4242;
  rec.inject_class = guest::InstrClass::kFmul;
  rec.sample_weight = 3.0625;
  std::stringstream ss;
  WriteRecordsCsv({rec}, ss, SamplePolicy::kStratified);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].inject_pc, 4242u);
  EXPECT_EQ(back[0].inject_class, guest::InstrClass::kFmul);
  EXPECT_EQ(back[0].sample_weight, 3.0625);
}

TEST(Report, ReadRejectsNewerVersion) {
  // A v7 file from a future build must fail loudly as "too new" — never
  // be silently misparsed with this build's column map.
  std::stringstream ss("#chaser-records-csv v7\nanything\n");
  try {
    ReadRecordsCsv(ss);
    FAIL() << "a newer format version must be rejected";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("v7"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("reads up to"), std::string::npos);
  }
}

TEST(Report, HotPathCountersRoundTripThroughV4) {
  RunRecord rec = SampleRecord(11);
  rec.tb_chain_hits = 4096;
  rec.tlb_hits = 777;
  rec.tlb_misses = 13;
  std::stringstream ss;
  WriteRecordsCsv({rec}, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].tb_chain_hits, 4096u);
  EXPECT_EQ(back[0].tlb_hits, 777u);
  EXPECT_EQ(back[0].tlb_misses, 13u);
}

TEST(Report, ReadsV3FilesWithoutHotPathCounters) {
  // A v3 file (pre hot-path counters) must keep parsing; new fields zero.
  std::stringstream in(
      "#chaser-records-csv v3\n" + std::string(kHeaderV1) +
      ",trace_dropped,taint_lost,retries,infra_error\n" +
      "5,sdc,exited,none,0,-1,0,1,0,1,10,20,30,40,50,2,1000,7,3,1,\n");
  const std::vector<RunRecord> back = ReadRecordsCsv(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].run_seed, 5u);
  EXPECT_EQ(back[0].taint_lost, 3u);
  EXPECT_EQ(back[0].retries, 1u);
  EXPECT_EQ(back[0].tb_chain_hits, 0u);
  EXPECT_EQ(back[0].tlb_hits, 0u);
  EXPECT_EQ(back[0].tlb_misses, 0u);
}

TEST(Report, NewFieldsRoundTripThroughV3) {
  RunRecord rec = SampleRecord(9);
  rec.taint_lost = 4;
  rec.retries = 2;
  RunRecord infra;
  infra.run_seed = 10;
  infra.outcome = Outcome::kInfra;
  infra.retries = 3;
  infra.infra_error = "TrialEngine: the disk caught fire";
  std::stringstream ss;
  WriteRecordsCsv({rec, infra}, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].taint_lost, 4u);
  EXPECT_EQ(back[0].retries, 2u);
  EXPECT_EQ(back[0].infra_error, "");
  EXPECT_EQ(back[1].outcome, Outcome::kInfra);
  EXPECT_EQ(back[1].retries, 3u);
  EXPECT_EQ(back[1].infra_error, "TrialEngine: the disk caught fire");
}

TEST(Report, InfraErrorCellIsSanitized) {
  RunRecord infra;
  infra.run_seed = 1;
  infra.outcome = Outcome::kInfra;
  infra.infra_error = "line one\nwith,commas\rand returns";
  std::stringstream ss;
  WriteRecordsCsv({infra}, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].infra_error, "line one with commas and returns");
}

TEST(Report, ReadsLegacyV2FilesWithoutVersionLine) {
  // A file written before the version line existed: bare 18-column header.
  // (PR 2 grew the format to this width; those files must keep parsing.)
  std::stringstream in(
      std::string(kHeaderV1) + ",trace_dropped\n" +
      "5,sdc,exited,none,0,-1,0,1,0,1,10,20,30,40,50,2,1000,7\n");
  const std::vector<RunRecord> back = ReadRecordsCsv(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].run_seed, 5u);
  EXPECT_EQ(back[0].outcome, Outcome::kSdc);
  EXPECT_EQ(back[0].instructions, 1000u);
  EXPECT_EQ(back[0].trace_dropped, 7u);
  // Fields that postdate v2 default to empty/zero.
  EXPECT_EQ(back[0].taint_lost, 0u);
  EXPECT_EQ(back[0].retries, 0u);
  EXPECT_EQ(back[0].infra_error, "");
}

TEST(Report, ReadsLegacyV1FilesWithoutTraceDropped) {
  // The original 17-column format (pre trace_dropped). Reading one of these
  // with the 18-column reader used to throw "expected 18 fields, got 17".
  std::stringstream in(std::string(kHeaderV1) + "\n" +
                       "5,benign,exited,none,0,-1,0,0,0,1,10,20,30,40,50,2,999\n");
  const std::vector<RunRecord> back = ReadRecordsCsv(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].run_seed, 5u);
  EXPECT_EQ(back[0].instructions, 999u);
  EXPECT_EQ(back[0].trace_dropped, 0u);
}

TEST(Report, RejectsFutureVersion) {
  std::stringstream in("#chaser-records-csv v99\nwhatever\n");
  EXPECT_THROW(ReadRecordsCsv(in), ConfigError);
}

TEST(Report, RejectsVersionHeaderMismatch) {
  // Claims v1 but carries the v2 header: refuse rather than guess widths.
  std::stringstream in("#chaser-records-csv v1\n" + std::string(kHeaderV1) +
                       ",trace_dropped\n");
  EXPECT_THROW(ReadRecordsCsv(in), ConfigError);
}

TEST(Report, RejectsWrongWidthForDeclaredVersion) {
  // A v1 row inside a v3 file must fail loudly, not zero-fill.
  std::stringstream out;
  WriteRecordsCsv({}, out);
  std::stringstream in(out.str() +
                       "5,benign,exited,none,0,-1,0,0,0,1,10,20,30,40,50,2,999\n");
  EXPECT_THROW(ReadRecordsCsv(in), ConfigError);
}

TEST(Report, ReadRejectsShortRow) {
  std::stringstream out;
  WriteRecordsCsv({}, out);
  std::stringstream in(out.str() + "1,benign,exited\n");
  EXPECT_THROW(ReadRecordsCsv(in), ConfigError);
}

TEST(Report, ReadRejectsBadEnum) {
  std::stringstream out;
  WriteRecordsCsv({SampleRecord(1)}, out);
  std::string csv = out.str();
  const auto pos = csv.find("terminated");
  csv.replace(pos, 10, "exploded!!");
  std::stringstream in(csv);
  EXPECT_THROW(ReadRecordsCsv(in), ConfigError);
}

TEST(Report, TimelineCsvFormat) {
  std::vector<core::TaintSample> samples{{0, 100, 5}, {1, 200, 7}};
  std::stringstream ss;
  WriteTimelineCsv(samples, ss);
  EXPECT_EQ(ss.str(), "rank,instret,tainted_bytes\n0,100,5\n1,200,7\n");
}

TEST(Report, TraceLogCsv) {
  core::TraceLog log;
  log.Add({.kind = core::TraceEventKind::kTaintedRead, .rank = 1, .instret = 9,
           .pc = 2, .vaddr = 0x10, .paddr = 0x20, .size = 8, .value = 0xab,
           .taint = 0xff});
  std::stringstream ss;
  log.WriteCsv(ss);
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("kind,rank,instret"), std::string::npos);
  EXPECT_NE(csv.find("T-READ,1,9,0x0000000000400008"), std::string::npos);
}

TEST(Report, AnalyzePropagationMatchesHandCounts) {
  std::vector<RunRecord> records(4);
  records[0].tainted_reads = 10;
  records[0].tainted_writes = 5;   // more reads
  records[1].tainted_reads = 3;
  records[1].tainted_writes = 0;   // only reads (and more reads)
  records[2].tainted_reads = 0;
  records[2].tainted_writes = 9;   // only writes
  records[3].tainted_reads = 2;
  records[3].tainted_writes = 2;   // balanced
  const PropagationStats stats = AnalyzePropagation(records);
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.total_tainted_reads, 15u);
  EXPECT_EQ(stats.total_tainted_writes, 16u);
  EXPECT_EQ(stats.max_tainted_reads, 10u);
  EXPECT_EQ(stats.max_tainted_writes, 9u);
  EXPECT_DOUBLE_EQ(stats.pct_more_reads_than_writes, 50.0);
  EXPECT_DOUBLE_EQ(stats.pct_only_reads, 25.0);
  EXPECT_DOUBLE_EQ(stats.pct_only_writes, 25.0);
}

TEST(Report, AnalyzeEmptyIsSafe) {
  const PropagationStats stats = AnalyzePropagation({});
  EXPECT_EQ(stats.runs, 0u);
  EXPECT_DOUBLE_EQ(stats.pct_only_reads, 0.0);
}

TEST(Report, SdcPredictionHandCounts) {
  std::vector<RunRecord> records(5);
  records[0].kind = vm::TerminationKind::kExited;
  records[0].outcome = Outcome::kSdc;
  records[0].tainted_output_bytes = 8;   // tp
  records[1].kind = vm::TerminationKind::kExited;
  records[1].outcome = Outcome::kBenign;
  records[1].tainted_output_bytes = 8;   // fp (over-approximation)
  records[2].kind = vm::TerminationKind::kExited;
  records[2].outcome = Outcome::kSdc;
  records[2].tainted_output_bytes = 0;   // fn (control-flow-only propagation)
  records[3].kind = vm::TerminationKind::kExited;
  records[3].outcome = Outcome::kBenign;
  records[3].tainted_output_bytes = 0;   // tn
  records[4].kind = vm::TerminationKind::kSignaled;  // terminated: excluded
  records[4].outcome = Outcome::kTerminated;
  const SdcPredictionStats p = AnalyzeSdcPrediction(records);
  EXPECT_EQ(p.completed_runs, 4u);
  EXPECT_EQ(p.true_positives, 1u);
  EXPECT_EQ(p.false_positives, 1u);
  EXPECT_EQ(p.false_negatives, 1u);
  EXPECT_EQ(p.true_negatives, 1u);
  EXPECT_DOUBLE_EQ(p.precision, 0.5);
  EXPECT_DOUBLE_EQ(p.recall, 0.5);
}

TEST(Report, SdcPredictionEmptySafe) {
  const SdcPredictionStats p = AnalyzeSdcPrediction({});
  EXPECT_EQ(p.completed_runs, 0u);
  EXPECT_DOUBLE_EQ(p.precision, 0.0);
}

TEST(Report, TaintedOutputBytesCsvRoundTrip) {
  RunRecord rec = SampleRecord(3);
  rec.tainted_output_bytes = 321;
  std::stringstream ss;
  WriteRecordsCsv({rec}, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].tainted_output_bytes, 321u);
}

TEST(Report, EndToEndCampaignExport) {
  apps::AppSpec spec = apps::BuildBfs({.nodes = 64, .avg_degree = 4});
  CampaignConfig config;
  config.runs = 10;
  config.seed = 77;
  Campaign c(std::move(spec), config);
  const CampaignResult result = c.Run();

  std::stringstream ss;
  WriteRecordsCsv(result.records, ss);
  const std::vector<RunRecord> back = ReadRecordsCsv(ss);
  ASSERT_EQ(back.size(), result.records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].outcome, result.records[i].outcome);
    EXPECT_EQ(back[i].run_seed, result.records[i].run_seed);
    EXPECT_EQ(back[i].tainted_writes, result.records[i].tainted_writes);
  }
}

}  // namespace
}  // namespace chaser::campaign

// Integration tests: full Chaser workflows across modules — armed via the
// console, injected into MPI jobs, traced across rank boundaries, with the
// Fig. 7-style tainted-bytes timeline.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "core/chaser_mpi.h"
#include "core/console.h"
#include "core/injectors/deterministic_injector.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "mpi/cluster.h"

namespace chaser {
namespace {

TEST(Integration, ConsoleCommandDrivesSingleVmInjection) {
  apps::AppSpec spec = apps::BuildKmeans({.points = 32, .dims = 2, .clusters = 2,
                                          .iterations = 2});
  vm::Vm vm;
  core::Chaser chaser(vm);

  core::PluginRegistry registry;
  registry.LoadPlugin("fault_injection", [&] {
    return core::MakeFaultInjectionPlugin(
        [&](core::InjectionCommand cmd) { chaser.Arm(std::move(cmd)); });
  });
  registry.Dispatch("inject_fault -p kmeans -i fadd,fmul -m det -c 100 -b 2 -s 4");

  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_EQ(chaser.injections().size(), 1u);
  EXPECT_EQ(chaser.injections()[0].exec_count, 100u);
}

/// Custom injector built on the exported interfaces (the paper's
/// extensibility story): corrupts the *stored value* of the first store
/// instruction it is offered, then goes quiet.
class PayloadInjector final : public core::FaultInjector {
 public:
  void Inject(core::InjectionContext& ctx) override {
    if (done_ || ctx.instr.op != guest::Opcode::kSt) return;
    done_ = true;
    ctx.records.push_back(
        core::CorruptIntRegister(ctx.vm, ctx.instr.rs2, 0xffull << 8));
  }
  std::string name() const override { return "payload"; }

 private:
  bool done_ = false;
};

TEST(Integration, MatvecMasterPayloadFaultTracedIntoSlave) {
  // Corrupt a staged *data value* in the master (a low mantissa byte, so the
  // job completes), then verify the taint travels: hub transfer recorded,
  // slave logs tainted reads, output is SDC.
  apps::AppSpec spec = apps::BuildMatvec({.rows = 12, .cols = 6, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  core::ChaserMpi chaser(cluster);

  core::InjectionCommand cmd;
  cmd.target_program = "matvec";
  cmd.target_classes = {guest::InstrClass::kMov};
  // Offer executions 70..130 to the injector (inside the row-staging loop,
  // past the header/permutation phase); it fires on the first store.
  cmd.trigger = std::make_shared<core::GroupTrigger>(70, 1, 60);
  cmd.injector = std::make_shared<PayloadInjector>();
  cmd.seed = 11;
  chaser.Arm(cmd, {0});

  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  ASSERT_TRUE(job.completed) << job.first_failure_message;
  EXPECT_EQ(chaser.total_injections(), 1u);

  ASSERT_TRUE(chaser.FaultPropagatedFrom(0));
  EXPECT_TRUE(chaser.FaultPropagatedAcrossNodes());
  // The slave that received the tainted block shows taint activity.
  EXPECT_GT(chaser.total_tainted_reads(), 0u);
  bool slave_traced = false;
  for (Rank r = 1; r < 4; ++r) {
    if (chaser.rank_chaser(r).trace_log().tainted_reads() > 0) slave_traced = true;
  }
  EXPECT_TRUE(slave_traced);
}

TEST(Integration, TraceEventsCarryRankLabels) {
  apps::AppSpec spec = apps::BuildMatvec({.rows = 12, .cols = 6, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  core::ChaserMpi chaser(cluster);
  core::InjectionCommand cmd;
  cmd.target_program = "matvec";
  cmd.target_classes = {guest::InstrClass::kMov};
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(40);
  cmd.injector = std::make_shared<core::DeterministicInjector>(1, 0xff00);
  chaser.Arm(cmd, {0});
  cluster.Start(spec.program);
  cluster.Run();
  for (const core::TraceEvent& e : chaser.rank_chaser(0).trace_log().events()) {
    EXPECT_EQ(e.rank, 0);
  }
}

TEST(Integration, ClamrTaintTimelineShowsPlateau) {
  // Fig. 7 methodology: run CLAMR with a deterministic FP fault; the
  // tainted-byte count, sampled every N instructions, climbs and then
  // stabilises (the fault only ever touches a bounded region).
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 8, .cols = 8, .steps = 10, .ranks = 1});
  mpi::Cluster cluster({.num_ranks = 1});
  core::Chaser::Options opts;
  opts.taint_sample_interval = 1'000;
  core::ChaserMpi chaser(cluster, opts);

  core::InjectionCommand cmd;
  cmd.target_program = "clamr";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(500);
  cmd.injector = std::make_shared<core::DeterministicInjector>(0, 1ull << 30);
  cmd.seed = 2;
  chaser.Arm(cmd, {0});
  cluster.Start(spec.program);
  cluster.Run();  // may terminate via the checker; timeline is still valid

  const auto& timeline = chaser.rank_chaser(0).taint_timeline();
  ASSERT_GT(timeline.size(), 3u);
  std::uint64_t peak = 0;
  for (const core::TaintSample& s : timeline) {
    peak = std::max(peak, s.tainted_bytes);
  }
  EXPECT_GT(peak, 0u);
  // Bounded: tainted bytes never exceed the guest's mapped field memory.
  EXPECT_LT(peak, 64u * 1024u);
}

TEST(Integration, SameSeedSameTimeline) {
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 8, .cols = 8, .steps = 6, .ranks = 1});
  auto run_once = [&spec](std::uint64_t seed) {
    mpi::Cluster cluster({.num_ranks = 1});
    core::Chaser::Options opts;
    opts.taint_sample_interval = 5'000;
    core::ChaserMpi chaser(cluster, opts);
    core::InjectionCommand cmd;
    cmd.target_program = "clamr";
    cmd.target_classes = spec.fault_classes;
    cmd.trigger = std::make_shared<core::DeterministicTrigger>(321);
    cmd.injector = std::make_shared<core::ProbabilisticInjector>(2);
    cmd.seed = seed;
    chaser.Arm(cmd, {0});
    cluster.Start(spec.program);
    cluster.Run();
    std::vector<std::uint64_t> bytes;
    for (const core::TaintSample& s : chaser.rank_chaser(0).taint_timeline()) {
      bytes.push_back(s.tainted_bytes);
    }
    return bytes;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  // (Different seeds flip different bits; the timeline usually differs, but
  // that is not guaranteed, so only the equality direction is asserted.)
}

TEST(Integration, TracingOffHasNoTaintActivityButSameResult) {
  apps::AppSpec spec = apps::BuildLud({.n = 8});
  auto run = [&spec](bool trace) {
    vm::Vm vm;
    core::Chaser chaser(vm);
    core::InjectionCommand cmd;
    cmd.target_program = "lud";
    cmd.target_classes = spec.fault_classes;
    cmd.trigger = std::make_shared<core::DeterministicTrigger>(50);
    cmd.injector = std::make_shared<core::DeterministicInjector>(0, 1ull << 40);
    cmd.trace = trace;
    chaser.Arm(cmd);
    vm.StartProcess(spec.program);
    vm.RunToCompletion();
    return std::make_tuple(vm.output(3), chaser.trace_log().tainted_reads(),
                           chaser.trace_log().tainted_writes());
  };
  const auto [out_on, reads_on, writes_on] = run(true);
  const auto [out_off, reads_off, writes_off] = run(false);
  EXPECT_EQ(out_on, out_off) << "tracing must not perturb execution";
  EXPECT_GT(reads_on + writes_on, 0u);
  EXPECT_EQ(reads_off + writes_off, 0u);
}

TEST(Integration, JitDetachShrinksInstrumentationCost) {
  // After the deterministic trigger fires, fi_clean_cb detaches the injector
  // and flushes the cache — subsequent TBs are clean. Compare against a
  // NeverTrigger run where the instrumentation stays in place.
  apps::AppSpec spec = apps::BuildKmeans({.points = 64, .dims = 4, .clusters = 4,
                                          .iterations = 4});
  auto count_injector_calls = [&spec](std::shared_ptr<const core::Trigger> trigger) {
    vm::Vm vm;
    core::Chaser chaser(vm);
    core::InjectionCommand cmd;
    cmd.target_program = "kmeans";
    cmd.target_classes = spec.fault_classes;
    cmd.trigger = std::move(trigger);
    // Zero-effect injector (flip nothing isn't allowed; flip+flip back via
    // two runs isn't needed — touch keeps the value).
    struct NullInjector : core::FaultInjector {
      void Inject(core::InjectionContext& ctx) override {
        ctx.records.push_back(core::TouchIntRegister(ctx.vm, 0));
      }
      std::string name() const override { return "null"; }
    };
    cmd.injector = std::make_shared<NullInjector>();
    cmd.trace = false;
    chaser.Arm(cmd);
    vm.StartProcess(spec.program);
    vm.RunToCompletion();
    return chaser.targeted_executions();
  };
  const std::uint64_t with_detach =
      count_injector_calls(std::make_shared<core::DeterministicTrigger>(10));
  const std::uint64_t without_detach =
      count_injector_calls(std::make_shared<core::NeverTrigger>());
  EXPECT_EQ(with_detach, 10u);
  EXPECT_GT(without_detach, 1000u);
}

TEST(Integration, CampaignReproducesSingleRunFromRecordSeed) {
  // The paper re-executes interesting cases with the same injected fault;
  // RunOnce(rec.run_seed) must reproduce the recorded outcome.
  apps::AppSpec spec = apps::BuildBfs({.nodes = 64, .avg_degree = 4});
  campaign::CampaignConfig config;
  config.runs = 20;
  config.seed = 42;
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  ASSERT_FALSE(result.records.empty());
  for (std::size_t i = 0; i < 5 && i < result.records.size(); ++i) {
    const campaign::RunRecord& rec = result.records[i];
    const campaign::RunRecord replay = c.RunOnce(rec.run_seed);
    EXPECT_EQ(replay.outcome, rec.outcome);
    EXPECT_EQ(replay.trigger_nth, rec.trigger_nth);
    EXPECT_EQ(replay.tainted_reads, rec.tainted_reads);
    EXPECT_EQ(replay.tainted_writes, rec.tainted_writes);
  }
}

}  // namespace
}  // namespace chaser

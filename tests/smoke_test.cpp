// End-to-end smoke tests: if these pass, the whole pipeline (assembler ->
// translator -> execution engine -> taint -> injection -> MPI -> campaign)
// is wired correctly. Module-level details live in the per-module tests.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "core/chaser.h"
#include "core/chaser_mpi.h"
#include "core/injectors/deterministic_injector.h"
#include "core/trigger.h"
#include "guest/builder.h"
#include "mpi/cluster.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

// Tiny program: sum 1..10 into r1, exit with it as the code.
guest::Program SumProgram() {
  ProgramBuilder b("sum");
  b.MovI(R(1), 0);
  b.MovI(R(2), 1);
  auto loop = b.Here("loop");
  (void)loop;
  b.Add(R(1), R(1), R(2));
  b.AddI(R(2), R(2), 1);
  b.CmpI(R(2), 11);
  b.Br(Cond::kLt, loop);
  b.Mov(R(8), R(1));  // preserve the sum (Exit clobbers r1)
  b.Exit(55);
  return b.Finalize();
}

TEST(Smoke, TinyProgramRuns) {
  vm::Vm vm;
  const guest::Program p = SumProgram();
  vm.StartProcess(p);
  EXPECT_EQ(vm.RunToCompletion(), vm::RunState::kTerminated);
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.exit_code(), 55);
  EXPECT_EQ(vm.cpu().IntReg(8), 55u);
}

TEST(Smoke, BfsRunsClean) {
  apps::AppSpec spec = apps::BuildBfs({.nodes = 64, .avg_degree = 4});
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  ASSERT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.output(3).size(), 64u * 8u);
  // Node 0 has level 1; the chain guarantees every node is visited.
  const auto* levels = reinterpret_cast<const std::uint64_t*>(vm.output(3).data());
  EXPECT_EQ(levels[0], 1u);
  for (int i = 0; i < 64; ++i) EXPECT_GT(levels[i], 0u) << "node " << i;
}

TEST(Smoke, MatvecClusterRunsClean) {
  apps::AppSpec spec = apps::BuildMatvec({.rows = 12, .cols = 8, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  EXPECT_TRUE(job.completed) << job.first_failure_message;
  EXPECT_EQ(cluster.rank_vm(0).output(3).size(), 12u * 8u);
}

TEST(Smoke, ClamrClusterConservesMass) {
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 8, .cols = 8, .steps = 5, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  EXPECT_TRUE(job.completed) << job.first_failure_message
                             << " rank=" << job.first_failure_rank;
}

TEST(Smoke, InjectionChangesRegisterAndTaints) {
  // Inject a deterministic single-bit flip into the 3rd add of the sum loop
  // and verify the result changed and the trace saw the injection.
  vm::Vm vm;
  core::Chaser chaser(vm);
  core::InjectionCommand cmd;
  cmd.target_program = "sum";
  cmd.target_classes = {guest::InstrClass::kAdd};
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(3);
  cmd.injector = core::DeterministicInjector::Create(0, 1ull << 4);  // flip bit 4
  chaser.Arm(cmd);

  const guest::Program p = SumProgram();
  vm.StartProcess(p);
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  ASSERT_EQ(chaser.injections().size(), 1u);
  EXPECT_EQ(chaser.injections()[0].flip_mask, 1ull << 4);
  // r8 holds the accumulated sum, which absorbed the corrupted operand.
  EXPECT_NE(vm.cpu().IntReg(8), 55u);
  EXPECT_GE(chaser.trace_log().injections(), 1u);
}

TEST(Smoke, CampaignMatvecClassifiesOutcomes) {
  apps::AppSpec spec = apps::BuildMatvec({.rows = 12, .cols = 8, .ranks = 4});
  campaign::CampaignConfig config;
  config.runs = 25;
  config.seed = 7;
  config.inject_ranks = {0};
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  EXPECT_EQ(result.benign + result.terminated + result.sdc, 25u);
}

}  // namespace
}  // namespace chaser

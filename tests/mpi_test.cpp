// Unit tests for src/mpi: point-to-point messaging, collectives, argument
// validation (the source of "MPI error detected" outcomes), scheduling,
// deadlock detection, and message hooks.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "common/error.h"
#include "guest/builder.h"
#include "mpi/cluster.h"

namespace chaser::mpi {
namespace {

using guest::Cond;
using guest::F;
using guest::MpiDatatype;
using guest::MpiOp;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

constexpr std::int64_t kDouble = static_cast<std::int64_t>(MpiDatatype::kDouble);
constexpr std::int64_t kInt64 = static_cast<std::int64_t>(MpiDatatype::kInt64);

std::deque<guest::Program>& Programs() {
  static std::deque<guest::Program> programs;
  return programs;
}

/// SPMD program: rank 0 sends `payload` doubles to rank 1 with `tag`;
/// rank 1 receives into a buffer and re-exports it on fd 3.
const guest::Program& SendRecvProgram() {
  static const guest::Program* p = [] {
    ProgramBuilder b("sendrecv");
    const std::vector<double> payload{1.5, 2.5, 3.5};
    const GuestAddr src = b.DataF64("src", payload);
    const GuestAddr dst = b.Bss("dst", 3 * 8);
    b.Sys(Sys::kMpiInit);
    b.Sys(Sys::kMpiCommRank);
    b.Mov(R(10), R(0));
    auto receiver = b.NewLabel("receiver");
    auto done = b.NewLabel("done");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, receiver);
    b.MovI(R(1), static_cast<std::int64_t>(src));
    b.MovI(R(2), 3);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 1);
    b.MovI(R(5), 7);
    b.Sys(Sys::kMpiSend);
    b.Jmp(done);
    b.Bind(receiver);
    b.MovI(R(1), static_cast<std::int64_t>(dst));
    b.MovI(R(2), 3);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 0);
    b.MovI(R(5), 7);
    b.Sys(Sys::kMpiRecv);
    b.MovI(R(4), static_cast<std::int64_t>(dst));
    b.MovI(R(5), 24);
    b.Write(3, R(4), R(5));
    b.Bind(done);
    b.Sys(Sys::kMpiFinalize);
    b.Exit(0);
    Programs().push_back(b.Finalize());
    return &Programs().back();
  }();
  return *p;
}

TEST(Mpi, SendRecvDeliversPayload) {
  Cluster cluster({.num_ranks = 2});
  cluster.Start(SendRecvProgram());
  const JobResult job = cluster.Run();
  ASSERT_TRUE(job.completed) << job.first_failure_message;
  const std::string& out = cluster.rank_vm(1).output(3);
  ASSERT_EQ(out.size(), 24u);
  double values[3];
  std::memcpy(values, out.data(), 24);
  EXPECT_DOUBLE_EQ(values[0], 1.5);
  EXPECT_DOUBLE_EQ(values[1], 2.5);
  EXPECT_DOUBLE_EQ(values[2], 3.5);
  EXPECT_EQ(cluster.messages_delivered(), 1u);
}

TEST(Mpi, ReceiverBlocksUntilSenderRuns) {
  // Rank 1 (receiver) scheduled before rank 0 would block: verify the
  // round-robin scheduler makes progress and the job still completes.
  Cluster cluster({.num_ranks = 2, .quantum = 5});
  cluster.Start(SendRecvProgram());
  EXPECT_TRUE(cluster.Run().completed);
}

/// Builds an SPMD program that runs `emit_rank0` on rank 0 and exits 0 on
/// other ranks (which still init/finalize).
template <typename EmitFn>
const guest::Program& Rank0Program(const std::string& name, EmitFn emit_rank0) {
  ProgramBuilder b(name);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto skip = b.NewLabel("skip");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, skip);
  emit_rank0(b);
  b.Bind(skip);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  return Programs().back();
}

TEST(Mpi, InvalidRankIsMpiError) {
  const guest::Program& p = Rank0Program("badrank", [](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 8);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 1);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 57);  // no such rank
    b.MovI(R(5), 1);
    b.Sys(Sys::kMpiSend);
  });
  Cluster cluster({.num_ranks = 2});
  cluster.Start(p);
  const JobResult job = cluster.Run();
  EXPECT_FALSE(job.completed);
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kMpiError);
  EXPECT_NE(job.first_failure_message.find("invalid rank"), std::string::npos);
}

TEST(Mpi, InvalidDatatypeIsMpiError) {
  const guest::Program& p = Rank0Program("baddt", [](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 8);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 1);
    b.MovI(R(3), 99);  // invalid datatype
    b.MovI(R(4), 1);
    b.MovI(R(5), 1);
    b.Sys(Sys::kMpiSend);
  });
  Cluster cluster({.num_ranks = 2});
  cluster.Start(p);
  const JobResult job = cluster.Run();
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kMpiError);
  EXPECT_NE(job.first_failure_message.find("invalid datatype"), std::string::npos);
}

TEST(Mpi, HugeCountIsMpiError) {
  const guest::Program& p = Rank0Program("badcount", [](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 8);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 1ll << 40);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 1);
    b.MovI(R(5), 1);
    b.Sys(Sys::kMpiSend);
  });
  Cluster cluster({.num_ranks = 2});
  cluster.Start(p);
  EXPECT_EQ(cluster.Run().first_failure_kind, vm::TerminationKind::kMpiError);
}

TEST(Mpi, NegativeTagOnSendIsMpiError) {
  const guest::Program& p = Rank0Program("badtag", [](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 8);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 1);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 1);
    b.MovI(R(5), -1);
    b.Sys(Sys::kMpiSend);
  });
  Cluster cluster({.num_ranks = 2});
  cluster.Start(p);
  EXPECT_EQ(cluster.Run().first_failure_kind, vm::TerminationKind::kMpiError);
}

TEST(Mpi, UnmappedSendBufferIsOsException) {
  const guest::Program& p = Rank0Program("badbuf", [](ProgramBuilder& b) {
    b.MovI(R(1), 0xdead0000);
    b.MovI(R(2), 4);
    b.MovI(R(3), kDouble);
    b.MovI(R(4), 1);
    b.MovI(R(5), 1);
    b.Sys(Sys::kMpiSend);
  });
  Cluster cluster({.num_ranks = 2});
  cluster.Start(p);
  const JobResult job = cluster.Run();
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kSignaled);
  EXPECT_EQ(job.first_failure_signal, vm::GuestSignal::kSegv);
}

TEST(Mpi, MpiCallBeforeInitIsMpiError) {
  ProgramBuilder b("noinit");
  const GuestAddr buf = b.Bss("buf", 8);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), 1);
  b.MovI(R(3), kDouble);
  b.MovI(R(4), 0);
  b.MovI(R(5), 1);
  b.Sys(Sys::kMpiSend);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 1});
  cluster.Start(Programs().back());
  const JobResult job = cluster.Run();
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kMpiError);
  EXPECT_NE(job.first_failure_message.find("MPI_Init"), std::string::npos);
}

TEST(Mpi, TruncationDetectedAtReceiver) {
  // Rank 0 sends 4 doubles; rank 1 only has room for 2.
  ProgramBuilder b("trunc");
  const std::vector<double> payload{1, 2, 3, 4};
  const GuestAddr src = b.DataF64("src", payload);
  const GuestAddr dst = b.Bss("dst", 2 * 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto receiver = b.NewLabel("receiver");
  auto done = b.NewLabel("done");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, receiver);
  b.MovI(R(1), static_cast<std::int64_t>(src));
  b.MovI(R(2), 4);
  b.MovI(R(3), kDouble);
  b.MovI(R(4), 1);
  b.MovI(R(5), 3);
  b.Sys(Sys::kMpiSend);
  b.Jmp(done);
  b.Bind(receiver);
  b.MovI(R(1), static_cast<std::int64_t>(dst));
  b.MovI(R(2), 2);
  b.MovI(R(3), kDouble);
  b.MovI(R(4), 0);
  b.MovI(R(5), 3);
  b.Sys(Sys::kMpiRecv);
  b.Bind(done);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 2});
  cluster.Start(Programs().back());
  const JobResult job = cluster.Run();
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kMpiError);
  EXPECT_EQ(job.first_failure_rank, 1);
  EXPECT_NE(job.first_failure_message.find("truncated"), std::string::npos);
}

TEST(Mpi, DeadlockDetected) {
  // Everyone receives, nobody sends.
  ProgramBuilder b("deadlock");
  const GuestAddr buf = b.Bss("buf", 8);
  b.Sys(Sys::kMpiInit);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), 1);
  b.MovI(R(3), kDouble);
  b.MovI(R(4), -1);  // any source
  b.MovI(R(5), -1);  // any tag
  b.Sys(Sys::kMpiRecv);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 2});
  cluster.Start(Programs().back());
  const JobResult job = cluster.Run();
  EXPECT_FALSE(job.completed);
  EXPECT_TRUE(job.deadlock);
  EXPECT_EQ(cluster.rank_vm(0).termination(), vm::TerminationKind::kMpiError);
}

TEST(Mpi, FifoOrderPerChannel) {
  // Rank 0 sends the values 0..9 with the same tag; rank 1 must see them in
  // order (receive into slots sequentially; verify monotone).
  ProgramBuilder b("fifo");
  const GuestAddr src = b.Bss("src", 8);
  const GuestAddr dst = b.Bss("dst", 10 * 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto receiver = b.NewLabel("receiver");
  auto done = b.NewLabel("done");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, receiver);
  // Sender: for i in 0..9 { src = i; send(src) }
  b.MovI(R(11), 0);
  {
    auto loop = b.Here("send_loop");
    b.MovI(R(9), static_cast<std::int64_t>(src));
    b.St(R(9), 0, R(11));
    b.MovI(R(1), static_cast<std::int64_t>(src));
    b.MovI(R(2), 1);
    b.MovI(R(3), kInt64);
    b.MovI(R(4), 1);
    b.MovI(R(5), 5);
    b.Sys(Sys::kMpiSend);
    b.AddI(R(11), R(11), 1);
    b.CmpI(R(11), 10);
    b.Br(Cond::kLt, loop);
  }
  b.Jmp(done);
  b.Bind(receiver);
  b.MovI(R(11), 0);
  {
    auto loop = b.Here("recv_loop");
    b.MovI(R(9), static_cast<std::int64_t>(dst));
    b.ShlI(R(8), R(11), 3);
    b.Add(R(9), R(9), R(8));
    b.Mov(R(1), R(9));
    b.MovI(R(2), 1);
    b.MovI(R(3), kInt64);
    b.MovI(R(4), 0);
    b.MovI(R(5), 5);
    b.Sys(Sys::kMpiRecv);
    b.AddI(R(11), R(11), 1);
    b.CmpI(R(11), 10);
    b.Br(Cond::kLt, loop);
  }
  b.MovI(R(4), static_cast<std::int64_t>(dst));
  b.MovI(R(5), 80);
  b.Write(3, R(4), R(5));
  b.Bind(done);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 2, .quantum = 50});
  cluster.Start(Programs().back());
  ASSERT_TRUE(cluster.Run().completed);
  const std::string& out = cluster.rank_vm(1).output(3);
  ASSERT_EQ(out.size(), 80u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::uint64_t v = 0;
    std::memcpy(&v, out.data() + i * 8, 8);
    EXPECT_EQ(v, i);
  }
}

TEST(Mpi, BcastReachesAllRanks) {
  ProgramBuilder b("bcast");
  const std::vector<double> payload{42.0, 43.0};
  const GuestAddr root_data = b.DataF64("rootdata", payload);
  const GuestAddr buf = b.Bss("buf", 16);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto use_bss = b.NewLabel("use_bss");
  auto go = b.NewLabel("go");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, use_bss);
  b.MovI(R(1), static_cast<std::int64_t>(root_data));
  b.Jmp(go);
  b.Bind(use_bss);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.Bind(go);
  b.Mov(R(12), R(1));  // remember my buffer
  b.MovI(R(2), 2);
  b.MovI(R(3), kDouble);
  b.MovI(R(4), 0);
  b.Sys(Sys::kMpiBcast);
  b.Mov(R(4), R(12));
  b.MovI(R(5), 16);
  b.Write(3, R(4), R(5));
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 4});
  cluster.Start(Programs().back());
  ASSERT_TRUE(cluster.Run().completed);
  for (Rank r = 0; r < 4; ++r) {
    double v[2];
    ASSERT_EQ(cluster.rank_vm(r).output(3).size(), 16u) << r;
    std::memcpy(v, cluster.rank_vm(r).output(3).data(), 16);
    EXPECT_DOUBLE_EQ(v[0], 42.0) << r;
    EXPECT_DOUBLE_EQ(v[1], 43.0) << r;
  }
}

TEST(Mpi, ReduceSumsAcrossRanks) {
  // Each rank contributes (rank+1); root gets sum = 1+2+3+4 = 10.
  ProgramBuilder b("reduce");
  const GuestAddr sendbuf = b.Bss("sendbuf", 8);
  const GuestAddr recvbuf = b.Bss("recvbuf", 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  b.AddI(R(9), R(10), 1);
  b.CvtIF(F(0), R(9));
  b.MovI(R(9), static_cast<std::int64_t>(sendbuf));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(1), static_cast<std::int64_t>(sendbuf));
  b.MovI(R(2), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(3), 1);
  b.MovI(R(4), kDouble);
  b.MovI(R(5), static_cast<std::int64_t>(MpiOp::kSum));
  b.MovI(R(6), 0);
  b.Sys(Sys::kMpiReduce);
  auto not_root = b.NewLabel("not_root");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, not_root);
  b.MovI(R(4), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Bind(not_root);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 4});
  cluster.Start(Programs().back());
  ASSERT_TRUE(cluster.Run().completed);
  double v = 0;
  std::memcpy(&v, cluster.rank_vm(0).output(3).data(), 8);
  EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Mpi, BarrierSynchronisesAllRanks) {
  // Each rank spins rank*2000 instructions, then barriers, 3 times over.
  ProgramBuilder b("barrier");
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  b.MovI(R(12), 0);  // round
  auto round = b.Here("round");
  b.MulI(R(11), R(10), 500);
  {
    auto spin = b.NewLabel("spin");
    auto spun = b.NewLabel("spun");
    b.Bind(spin);
    b.CmpI(R(11), 0);
    b.Br(Cond::kLe, spun);
    b.SubI(R(11), R(11), 1);
    b.Jmp(spin);
    b.Bind(spun);
  }
  b.Sys(Sys::kMpiBarrier);
  b.AddI(R(12), R(12), 1);
  b.CmpI(R(12), 3);
  b.Br(Cond::kLt, round);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 4, .quantum = 100});
  cluster.Start(Programs().back());
  EXPECT_TRUE(cluster.Run().completed);
}

TEST(Mpi, NodeMapping) {
  Cluster c1({.num_ranks = 4, .ranks_per_node = 1});
  EXPECT_EQ(c1.node_of(0), 0);
  EXPECT_EQ(c1.node_of(3), 3);
  Cluster c2({.num_ranks = 4, .ranks_per_node = 2});
  EXPECT_EQ(c2.node_of(0), 0);
  EXPECT_EQ(c2.node_of(1), 0);
  EXPECT_EQ(c2.node_of(2), 1);
}

TEST(Mpi, HooksObserveSendAndRecv) {
  struct RecordingHooks : MessageHooks {
    int sends = 0, recvs = 0;
    Envelope last;
    void OnSend(vm::Vm&, const Envelope& env, GuestAddr) override {
      ++sends;
      last = env;
    }
    void OnRecvComplete(vm::Vm&, const Envelope&, GuestAddr) override { ++recvs; }
  };
  RecordingHooks hooks;
  Cluster cluster({.num_ranks = 2});
  cluster.SetMessageHooks(&hooks);
  cluster.Start(SendRecvProgram());
  ASSERT_TRUE(cluster.Run().completed);
  EXPECT_EQ(hooks.sends, 1);
  EXPECT_EQ(hooks.recvs, 1);
  EXPECT_EQ(hooks.last.src, 0);
  EXPECT_EQ(hooks.last.dest, 1);
  EXPECT_EQ(hooks.last.tag, 7);
  EXPECT_EQ(hooks.last.payload.size(), 24u);
}

TEST(Mpi, ClearGuestMemTaintHelper) {
  Cluster cluster({.num_ranks = 1});
  cluster.Start(SendRecvProgram());
  vm::Vm& vm = cluster.rank_vm(0);
  vm.taint().set_enabled(true);
  const GuestAddr dst = SendRecvProgram().DataAddr("src");
  const auto pa = vm.memory().Translate(dst);
  ASSERT_TRUE(pa.has_value());
  vm.taint().SetMemTaintByte(*pa, 0xff);
  ClearGuestMemTaint(vm, dst, 8);
  EXPECT_EQ(vm.taint().GetMemTaintByte(*pa), 0u);
}

TEST(Mpi, BadConfigThrows) {
  EXPECT_THROW(Cluster({.num_ranks = 0}), ConfigError);
  EXPECT_THROW(Cluster({.num_ranks = 2, .ranks_per_node = 0}), ConfigError);
}

}  // namespace
}  // namespace chaser::mpi

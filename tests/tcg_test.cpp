// Unit tests for src/tcg: flag semantics, translator lowering, TB formation,
// Chaser's instrumentation splicing (paper Fig. 3).
#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "guest/builder.h"
#include "tcg/ir.h"
#include "tcg/translator.h"

namespace chaser::tcg {
namespace {

using guest::Cond;
using guest::F;
using guest::Opcode;
using guest::ProgramBuilder;
using guest::R;

// ---- Flags -----------------------------------------------------------------

TEST(Flags, ComputeFlagsSignedUnsigned) {
  // 5 vs 5: equal only.
  EXPECT_EQ(ComputeFlags(5, 5), kFlagEq);
  // 3 vs 7: less in both orders.
  EXPECT_EQ(ComputeFlags(3, 7), kFlagLtS | kFlagLtU);
  // -1 vs 1: signed less, unsigned greater.
  EXPECT_EQ(ComputeFlags(static_cast<std::uint64_t>(-1), 1), kFlagLtS);
  // 1 vs -1: unsigned less, signed greater.
  EXPECT_EQ(ComputeFlags(1, static_cast<std::uint64_t>(-1)), kFlagLtU);
}

TEST(Flags, CondHoldsTable) {
  const std::uint64_t eq = kFlagEq;
  const std::uint64_t lt = kFlagLtS | kFlagLtU;
  const std::uint64_t gt = 0;
  EXPECT_TRUE(CondHolds(Cond::kEq, eq));
  EXPECT_FALSE(CondHolds(Cond::kEq, lt));
  EXPECT_TRUE(CondHolds(Cond::kNe, lt));
  EXPECT_TRUE(CondHolds(Cond::kLt, lt));
  EXPECT_TRUE(CondHolds(Cond::kLe, lt));
  EXPECT_TRUE(CondHolds(Cond::kLe, eq));
  EXPECT_TRUE(CondHolds(Cond::kGt, gt));
  EXPECT_FALSE(CondHolds(Cond::kGt, eq));
  EXPECT_TRUE(CondHolds(Cond::kGe, eq));
  EXPECT_TRUE(CondHolds(Cond::kGe, gt));
  EXPECT_TRUE(CondHolds(Cond::kLtU, lt));
  EXPECT_TRUE(CondHolds(Cond::kGeU, gt));
}

TEST(Flags, FpUnorderedSetsNothing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ComputeFlagsF(nan, 1.0), 0u);
  EXPECT_EQ(ComputeFlagsF(1.0, nan), 0u);
  EXPECT_EQ(ComputeFlagsF(1.0, 1.0), kFlagEq);
  EXPECT_EQ(ComputeFlagsF(0.5, 1.0), kFlagLtS | kFlagLtU);
}

// ---- Translator ------------------------------------------------------------

guest::Program SmallProgram() {
  ProgramBuilder b("p");
  b.MovI(R(1), 10);       // 0
  b.AddI(R(1), R(1), 1);  // 1
  b.Fadd(F(0), F(1), F(2));  // 2
  b.CmpI(R(1), 11);       // 3
  auto target = b.NewLabel();
  b.Br(Cond::kEq, target);   // 4 — ends the TB
  b.Bind(target);
  b.Exit(0);              // 5..7
  return b.Finalize();
}

TEST(Translator, TbEndsAtBranch) {
  const guest::Program p = SmallProgram();
  Translator t;
  const TranslationBlock tb = t.Translate(p, 0);
  EXPECT_EQ(tb.start_pc, 0u);
  EXPECT_EQ(tb.num_insns, 5u);  // movi, addi, fadd, cmp, br
  ASSERT_FALSE(tb.ops.empty());
  EXPECT_EQ(tb.ops.back().opc, TcgOpc::kBrCond);
  EXPECT_EQ(tb.ops.back().imm, 5u);   // taken target
  EXPECT_EQ(tb.ops.back().imm2, 5u);  // fallthrough (label bound right after)
}

TEST(Translator, EveryInsnGetsInsnStart) {
  const guest::Program p = SmallProgram();
  const TranslationBlock tb = Translator().Translate(p, 0);
  unsigned starts = 0;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kInsnStart) ++starts;
  }
  EXPECT_EQ(starts, tb.num_insns);
}

TEST(Translator, MaxTbInsnsCapChainsToNextPc) {
  ProgramBuilder b("p");
  for (int i = 0; i < 10; ++i) b.Nop();
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Translator::Options opts;
  opts.max_tb_insns = 4;
  const TranslationBlock tb = Translator(opts).Translate(p, 0);
  EXPECT_EQ(tb.num_insns, 4u);
  EXPECT_EQ(tb.ops.back().opc, TcgOpc::kGotoTb);
  EXPECT_EQ(tb.ops.back().imm, 4u);
}

TEST(Translator, SyscallEndsTb) {
  ProgramBuilder b("p");
  b.Exit(0);  // movi, movi, syscall
  const guest::Program p = b.Finalize();
  const TranslationBlock tb = Translator().Translate(p, 0);
  EXPECT_EQ(tb.num_insns, 3u);
  // Second-to-last op is the syscall helper; last is goto_tb.
  ASSERT_GE(tb.ops.size(), 2u);
  const TcgOp& helper = tb.ops[tb.ops.size() - 2];
  EXPECT_EQ(helper.opc, TcgOpc::kCallHelper);
  EXPECT_EQ(helper.helper, HelperId::kSyscall);
}

TEST(Translator, CallPushesReturnIndex) {
  ProgramBuilder b("p");
  auto fn = b.NewLabel("fn");
  b.Call(fn);   // 0
  b.Exit(0);    // 1..3
  b.Bind(fn);
  b.Ret();      // 4
  const guest::Program p = b.Finalize();
  const TranslationBlock tb = Translator().Translate(p, 0);
  // Expect a store of constant 1 (return index) and goto target 4.
  bool saw_store = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kQemuSt) saw_store = true;
  }
  EXPECT_TRUE(saw_store);
  EXPECT_EQ(tb.ops.back().opc, TcgOpc::kGotoTb);
  EXPECT_EQ(tb.ops.back().imm, 4u);
}

TEST(Translator, RetIsDynamicExit) {
  ProgramBuilder b("p");
  b.Ret();
  const guest::Program p = b.Finalize();
  const TranslationBlock tb = Translator().Translate(p, 0);
  EXPECT_EQ(tb.ops.back().opc, TcgOpc::kExitTb);
}

TEST(Translator, GuestPcAttachedToOps) {
  const guest::Program p = SmallProgram();
  const TranslationBlock tb = Translator().Translate(p, 0);
  // Ops produced for the fadd at index 2 carry guest_pc == 2.
  bool saw_fadd = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kFAdd) {
      saw_fadd = true;
      EXPECT_EQ(op.guest_pc, 2u);
    }
  }
  EXPECT_TRUE(saw_fadd);
}

TEST(Translator, OutOfRangePcThrows) {
  const guest::Program p = SmallProgram();
  EXPECT_THROW(Translator().Translate(p, 10'000), ConfigError);
}

// ---- Instrumentation (the Chaser hook) ----------------------------------------

TEST(Instrument, SelectiveInsertionBeforeTarget) {
  const guest::Program p = SmallProgram();
  Translator::Options opts;
  opts.instrument = [](const guest::Instruction& in, std::uint64_t) {
    return guest::ClassOf(in.op) == guest::InstrClass::kFadd;
  };
  const TranslationBlock tb = Translator(opts).Translate(p, 0);
  EXPECT_TRUE(tb.instrumented);
  // Exactly one injector call, placed before the fadd's IR (between the
  // fadd's insn_start and its helper_fadd op).
  int injector_idx = -1, fadd_idx = -1;
  for (std::size_t i = 0; i < tb.ops.size(); ++i) {
    if (tb.ops[i].opc == TcgOpc::kCallHelper &&
        tb.ops[i].helper == HelperId::kFaultInjector) {
      EXPECT_EQ(injector_idx, -1) << "multiple injector calls";
      injector_idx = static_cast<int>(i);
      EXPECT_EQ(tb.ops[i].imm, 2u);  // fadd is instruction #2
    }
    if (tb.ops[i].opc == TcgOpc::kFAdd) fadd_idx = static_cast<int>(i);
  }
  ASSERT_NE(injector_idx, -1);
  ASSERT_NE(fadd_idx, -1);
  EXPECT_LT(injector_idx, fadd_idx);
}

TEST(Instrument, NoPredicateNoInstrumentation) {
  const guest::Program p = SmallProgram();
  const TranslationBlock tb = Translator().Translate(p, 0);
  EXPECT_FALSE(tb.instrumented);
  for (const TcgOp& op : tb.ops) {
    EXPECT_FALSE(op.opc == TcgOpc::kCallHelper &&
                 op.helper == HelperId::kFaultInjector);
  }
}

TEST(Instrument, InstrumentAllHitsEveryInstruction) {
  const guest::Program p = SmallProgram();
  Translator::Options opts;
  opts.instrument_all = true;
  const TranslationBlock tb = Translator(opts).Translate(p, 0);
  unsigned calls = 0;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kCallHelper && op.helper == HelperId::kFaultInjector) {
      ++calls;
    }
  }
  EXPECT_EQ(calls, tb.num_insns);
}

TEST(Instrument, ResultOnlyInstructionInjectedAfter) {
  // movi has no source operands: the helper must follow its IR so corrupting
  // the destination is not overwritten by the move itself.
  ProgramBuilder b("p");
  b.MovI(R(1), 42);
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Translator::Options opts;
  opts.instrument = [](const guest::Instruction& in, std::uint64_t) {
    return in.op == Opcode::kMovRI && in.rd == 1;
  };
  const TranslationBlock tb = Translator(opts).Translate(p, 0);
  int injector_idx = -1, write_idx = -1;
  for (std::size_t i = 0; i < tb.ops.size(); ++i) {
    const TcgOp& op = tb.ops[i];
    if (op.opc == TcgOpc::kCallHelper && op.helper == HelperId::kFaultInjector) {
      injector_idx = static_cast<int>(i);
    }
    if (op.opc == TcgOpc::kMov && op.dst == EnvInt(1)) write_idx = static_cast<int>(i);
  }
  ASSERT_NE(injector_idx, -1);
  ASSERT_NE(write_idx, -1);
  EXPECT_GT(injector_idx, write_idx);
}

// ---- Printer -------------------------------------------------------------------

TEST(Printer, TbListingContainsOps) {
  const guest::Program p = SmallProgram();
  const TranslationBlock tb = Translator().Translate(p, 0);
  const std::string s = PrintTb(tb);
  EXPECT_NE(s.find("insn_start"), std::string::npos);
  EXPECT_NE(s.find("helper_fadd"), std::string::npos);
  EXPECT_NE(s.find("brcond"), std::string::npos);
}

TEST(Printer, InjectorCallRendered) {
  const guest::Program p = SmallProgram();
  Translator::Options opts;
  opts.instrument_all = true;
  const std::string s = PrintTb(Translator(opts).Translate(p, 0));
  EXPECT_NE(s.find("DECAF_inject_fault"), std::string::npos);
}

}  // namespace
}  // namespace chaser::tcg

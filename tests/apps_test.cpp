// Tests for src/apps: every guest application's golden output is checked
// against an independent host-side reference implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "apps/app.h"
#include "common/error.h"
#include "common/rng.h"
#include "mpi/cluster.h"
#include "vm/vm.h"

namespace chaser::apps {
namespace {

std::vector<double> AsDoubles(const std::string& bytes) {
  std::vector<double> out(bytes.size() / 8);
  std::memcpy(out.data(), bytes.data(), out.size() * 8);
  return out;
}

std::vector<std::uint64_t> AsU64(const std::string& bytes) {
  std::vector<std::uint64_t> out(bytes.size() / 8);
  std::memcpy(out.data(), bytes.data(), out.size() * 8);
  return out;
}

// ---- bfs -----------------------------------------------------------------------

TEST(AppsBfs, MatchesHostReferenceBfs) {
  const BfsParams params{.nodes = 128, .avg_degree = 5, .seed = 11};
  AppSpec spec = BuildBfs(params);
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  ASSERT_EQ(vm.termination(), vm::TerminationKind::kExited);
  const std::vector<std::uint64_t> levels = AsU64(vm.output(3));
  ASSERT_EQ(levels.size(), params.nodes);

  // Host reference: regenerate the same graph (same Rng discipline).
  Rng rng(params.seed);
  std::vector<std::uint64_t> row_ptr(params.nodes + 1, 0);
  std::vector<std::uint64_t> col;
  for (std::uint64_t u = 0; u < params.nodes; ++u) {
    row_ptr[u] = col.size();
    if (u + 1 < params.nodes) col.push_back(u + 1);
    for (std::uint64_t e = 1; e < params.avg_degree; ++e) {
      col.push_back(rng.UniformU64(0, params.nodes - 1));
    }
  }
  row_ptr[params.nodes] = col.size();
  std::vector<std::uint64_t> ref(params.nodes, 0);
  std::vector<std::uint64_t> queue{0};
  ref[0] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint64_t u = queue[head];
    for (std::uint64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      const std::uint64_t v = col[e];
      if (ref[v] == 0) {
        ref[v] = ref[u] + 1;
        queue.push_back(v);
      }
    }
  }
  EXPECT_EQ(levels, ref);
}

TEST(AppsBfs, TargetsCmpClass) {
  EXPECT_EQ(BuildBfs({.nodes = 16}).fault_classes,
            (std::set<guest::InstrClass>{guest::InstrClass::kCmp}));
}

// ---- kmeans ----------------------------------------------------------------------

TEST(AppsKmeans, MatchesHostReferenceLloyd) {
  const KmeansParams params{.points = 64, .dims = 3, .clusters = 3,
                            .iterations = 4, .seed = 21};
  AppSpec spec = BuildKmeans(params);
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  ASSERT_EQ(vm.termination(), vm::TerminationKind::kExited);
  const std::vector<double> got = AsDoubles(vm.output(3));
  ASSERT_EQ(got.size(), params.clusters * params.dims);

  // Host reference with identical arithmetic order.
  Rng rng(params.seed);
  const std::uint64_t n = params.points, d = params.dims, k = params.clusters;
  std::vector<double> pts(n * d);
  for (double& p : pts) p = rng.UniformDouble(0.0, 10.0);
  std::vector<double> c(pts.begin(), pts.begin() + k * d);
  for (std::uint64_t it = 0; it < params.iterations; ++it) {
    std::vector<double> sums(k * d, 0.0);
    std::vector<std::uint64_t> counts(k, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t best = 0;
      double bestd = 1e300;
      for (std::uint64_t kk = 0; kk < k; ++kk) {
        double dist = 0;
        for (std::uint64_t j = 0; j < d; ++j) {
          const double diff = pts[i * d + j] - c[kk * d + j];
          dist += diff * diff;
        }
        if (dist < bestd) {
          bestd = dist;
          best = kk;
        }
      }
      ++counts[best];
      for (std::uint64_t j = 0; j < d; ++j) sums[best * d + j] += pts[i * d + j];
    }
    for (std::uint64_t kk = 0; kk < k; ++kk) {
      if (counts[kk] == 0) continue;
      for (std::uint64_t j = 0; j < d; ++j) {
        c[kk * d + j] = sums[kk * d + j] / static_cast<double>(counts[kk]);
      }
    }
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], c[i]) << "centroid element " << i;
  }
}

// ---- lud -----------------------------------------------------------------------

TEST(AppsLud, MatchesHostReferenceDoolittle) {
  const LudParams params{.n = 12, .seed = 31};
  AppSpec spec = BuildLud(params);
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  ASSERT_EQ(vm.termination(), vm::TerminationKind::kExited);
  const std::vector<double> got = AsDoubles(vm.output(3));
  ASSERT_EQ(got.size(), params.n * params.n);

  Rng rng(params.seed);
  const std::uint64_t n = params.n;
  std::vector<double> a(n * n);
  for (double& v : a) v = rng.UniformDouble(-1.0, 1.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i * n + i] = static_cast<double>(n) + rng.UniformDouble(0.0, 1.0);
  }
  for (std::uint64_t k = 0; k + 1 < n; ++k) {
    for (std::uint64_t i = k + 1; i < n; ++i) {
      a[i * n + k] /= a[k * n + k];
      for (std::uint64_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= a[i * n + k] * a[k * n + j];
      }
    }
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], a[i]) << "LU element " << i;
  }
}

TEST(AppsLud, LuFactorsReproduceMatrix) {
  // Independent validity check: L*U must reconstruct the original matrix.
  const LudParams params{.n = 8, .seed = 32};
  AppSpec spec = BuildLud(params);
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  const std::vector<double> lu = AsDoubles(vm.output(3));
  const std::uint64_t n = params.n;

  Rng rng(params.seed);
  std::vector<double> orig(n * n);
  for (double& v : orig) v = rng.UniformDouble(-1.0, 1.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    orig[i * n + i] = static_cast<double>(n) + rng.UniformDouble(0.0, 1.0);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      double sum = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        const double l = (i == k) ? 1.0 : (k < i ? lu[i * n + k] : 0.0);
        const double u = (k <= j) ? lu[k * n + j] : 0.0;
        sum += l * u;
      }
      EXPECT_NEAR(sum, orig[i * n + j], 1e-9) << i << "," << j;
    }
  }
}

// ---- matvec ----------------------------------------------------------------------

TEST(AppsMatvec, MatchesHostReferenceProduct) {
  const MatvecParams params{.rows = 12, .cols = 6, .ranks = 4, .seed = 41};
  AppSpec spec = BuildMatvec(params);
  mpi::Cluster cluster({.num_ranks = params.ranks});
  cluster.Start(spec.program);
  ASSERT_TRUE(cluster.Run().completed);
  const std::vector<double> got = AsDoubles(cluster.rank_vm(0).output(3));
  ASSERT_EQ(got.size(), params.rows);

  Rng rng(params.seed);
  std::vector<double> a(params.rows * params.cols);
  for (double& v : a) v = rng.UniformDouble(-1.0, 1.0);
  std::vector<double> x(params.cols);
  for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
  for (std::uint64_t i = 0; i < params.rows; ++i) {
    double sum = 0;
    for (std::uint64_t j = 0; j < params.cols; ++j) sum += a[i * params.cols + j] * x[j];
    EXPECT_DOUBLE_EQ(got[i], sum) << "row " << i;
  }
}

TEST(AppsMatvec, SlavesExportPartials) {
  AppSpec spec = BuildMatvec({.rows = 12, .cols = 6, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  ASSERT_TRUE(cluster.Run().completed);
  for (Rank r = 1; r < 4; ++r) {
    EXPECT_EQ(cluster.rank_vm(r).output(3).size(), 4u * 8u) << "rank " << r;
  }
}

TEST(AppsMatvec, ValidatesConfiguration) {
  EXPECT_THROW(BuildMatvec({.rows = 10, .cols = 4, .ranks = 4}), ConfigError);
  EXPECT_THROW(BuildMatvec({.rows = 10, .cols = 4, .ranks = 1}), ConfigError);
}

TEST(AppsMatvec, TargetsMovClass) {
  EXPECT_EQ(BuildMatvec({.rows = 12, .cols = 4, .ranks = 4}).fault_classes,
            (std::set<guest::InstrClass>{guest::InstrClass::kMov}));
}

// ---- clamr ------------------------------------------------------------------------

TEST(AppsClamr, CleanRunConservesAndExportsFields) {
  const ClamrParams params{.global_rows = 16, .cols = 16, .steps = 8, .ranks = 4};
  AppSpec spec = BuildClamr(params);
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();
  ASSERT_TRUE(job.completed) << job.first_failure_message;
  // Each rank: interior field (4*16 doubles) + refine count (8 bytes);
  // rank 0 additionally the three conserved sums (24 bytes).
  EXPECT_EQ(cluster.rank_vm(1).output(3).size(), 4u * 16u * 8u + 8u);
  EXPECT_EQ(cluster.rank_vm(0).output(3).size(), 4u * 16u * 8u + 8u + 24u);
}

TEST(AppsClamr, MassMatchesInitialAnalyticSum) {
  const ClamrParams params{.global_rows = 16, .cols = 16, .steps = 4, .ranks = 2};
  AppSpec spec = BuildClamr(params);
  mpi::Cluster cluster({.num_ranks = 2});
  cluster.Start(spec.program);
  ASSERT_TRUE(cluster.Run().completed);
  const std::string& out = cluster.rank_vm(0).output(3);
  double mass = 0;
  std::memcpy(&mass, out.data() + out.size() - 24, 8);

  // Host-side initial mass: sum over the bump initial condition.
  const double cr = params.global_rows / 2.0, cc = params.cols / 2.0;
  const double r2max = std::max(1.0, (params.global_rows / 4.0) * (params.global_rows / 4.0));
  const double scale = 0.5 / r2max;
  double expected = 0;
  for (std::uint64_t gi = 0; gi < params.global_rows; ++gi) {
    for (std::uint64_t j = 0; j < params.cols; ++j) {
      const double dx = static_cast<double>(gi) - cr;
      const double dy = static_cast<double>(j) - cc;
      const double tmp = std::max(0.0, r2max - (dx * dx + dy * dy));
      expected += 1.0 + tmp * scale;
    }
  }
  EXPECT_NEAR(mass, expected, 1e-6);
}

TEST(AppsClamr, WavePropagatesAcrossRanks) {
  // After enough steps the bump (centred in ranks 1-2's rows) must perturb
  // rank 0's and rank 3's interior fields.
  const ClamrParams params{.global_rows = 16, .cols = 16, .steps = 16, .ranks = 4};
  AppSpec spec = BuildClamr(params);
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  ASSERT_TRUE(cluster.Run().completed);
  const std::vector<double> h0 = AsDoubles(
      cluster.rank_vm(0).output(3).substr(0, 4 * 16 * 8));
  bool perturbed = false;
  for (const double v : h0) {
    if (std::fabs(v - 1.0) > 1e-9) perturbed = true;
  }
  EXPECT_TRUE(perturbed);
}

TEST(AppsClamr, RefinementCountsNonZeroNearBump) {
  const ClamrParams params{.global_rows = 16, .cols = 16, .steps = 8, .ranks = 4};
  AppSpec spec = BuildClamr(params);
  mpi::Cluster cluster({.num_ranks = 4});
  cluster.Start(spec.program);
  ASSERT_TRUE(cluster.Run().completed);
  std::uint64_t total_refined = 0;
  for (Rank r = 0; r < 4; ++r) {
    const std::string& out = cluster.rank_vm(r).output(3);
    std::uint64_t count = 0;
    std::memcpy(&count, out.data() + 4 * 16 * 8, 8);
    total_refined += count;
  }
  EXPECT_GT(total_refined, 0u);
}

TEST(AppsClamr, SingleRankModeWorks) {
  const ClamrParams params{.global_rows = 8, .cols = 8, .steps = 4, .ranks = 1};
  AppSpec spec = BuildClamr(params);
  mpi::Cluster cluster({.num_ranks = 1});
  cluster.Start(spec.program);
  EXPECT_TRUE(cluster.Run().completed);
}

TEST(AppsClamr, ValidatesConfiguration) {
  EXPECT_THROW(BuildClamr({.global_rows = 10, .cols = 8, .ranks = 4}), ConfigError);
}

TEST(AppsClamr, DeterministicImageAcrossBuilds) {
  const ClamrParams params{.global_rows = 8, .cols = 8, .steps = 2, .ranks = 2};
  const AppSpec a = BuildClamr(params);
  const AppSpec b = BuildClamr(params);
  ASSERT_EQ(a.program.text.size(), b.program.text.size());
  EXPECT_EQ(a.program.data, b.program.data);
}

}  // namespace
}  // namespace chaser::apps

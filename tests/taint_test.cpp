// Unit tests for src/taint: bitwise shadow state, per-op propagation rules
// (including the value-aware and/or/shift rules and the FP extension),
// memory shadow accounting, and the tainted-access callbacks.
#include <gtest/gtest.h>

#include <cstring>

#include "taint/taint.h"

namespace chaser::taint {
namespace {

using tcg::TcgOpc;

class TaintEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_.set_enabled(true); }
  TaintEngine engine_;
};

// ---- Value-slot shadow --------------------------------------------------------

TEST_F(TaintEngineTest, DisabledEngineReportsClean) {
  TaintEngine off;
  off.SetValTaint(3, 0xff);
  EXPECT_EQ(off.GetValTaint(3), 0u);
  EXPECT_EQ(off.PropagateOp(TcgOpc::kAdd, 0xff, 0, 1, 2), 0u);
}

TEST_F(TaintEngineTest, ValTaintRoundTrip) {
  engine_.SetValTaint(tcg::EnvInt(5), 0x0f);
  EXPECT_EQ(engine_.GetValTaint(tcg::EnvInt(5)), 0x0fu);
  EXPECT_TRUE(engine_.AnyEnvTainted());
  engine_.ClearVals();
  EXPECT_FALSE(engine_.AnyEnvTainted());
}

TEST_F(TaintEngineTest, BeginTbClearsTempsKeepsEnv) {
  engine_.SetValTaint(tcg::EnvInt(1), 0xff);
  engine_.SetValTaint(tcg::kTempBase + 3, 0xff);
  engine_.BeginTb(10);
  EXPECT_EQ(engine_.GetValTaint(tcg::EnvInt(1)), 0xffu);
  EXPECT_EQ(engine_.GetValTaint(tcg::kTempBase + 3), 0u);
}

// ---- Propagation rules ----------------------------------------------------------

TEST_F(TaintEngineTest, CleanOperandsStayClean) {
  for (const TcgOpc opc : {TcgOpc::kAdd, TcgOpc::kMul, TcgOpc::kAnd,
                           TcgOpc::kXor, TcgOpc::kFAdd, TcgOpc::kShl}) {
    EXPECT_EQ(engine_.PropagateOp(opc, 0, 0, 123, 456), 0u);
  }
}

TEST_F(TaintEngineTest, MovPreservesMask) {
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kMov, 0b1010, 0, 0, 0), 0b1010u);
}

TEST_F(TaintEngineTest, AddSmearsUpward) {
  // Taint in bit 4 can carry into any bit >= 4.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kAdd, 1u << 4, 0, 0, 0),
            ~std::uint64_t{0} << 4);
  // Union first: lowest tainted bit across both operands governs.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kSub, 1u << 8, 1u << 2, 0, 0),
            ~std::uint64_t{0} << 2);
}

TEST_F(TaintEngineTest, MulFullyTaints) {
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kMul, 1, 0, 3, 4), ~std::uint64_t{0});
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kDivU, 0, 1, 3, 4), ~std::uint64_t{0});
}

TEST_F(TaintEngineTest, AndIsValueAware) {
  // x & 0: tainted x bits are masked off by a concrete zero -> clean.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kAnd, 0xff, 0, /*a=*/0xab, /*b=*/0x00), 0u);
  // x & 1s: taint flows through where the concrete bit is 1.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kAnd, 0xff, 0, 0xab, 0x0f), 0x0fu);
  // Both tainted with concrete ones underneath: each side's taint flows
  // where the other side's concrete bit is 1.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kAnd, 0xf0, 0x0f, 0xff, 0xff), 0xffu);
  // Both tainted over concrete zeros, no overlap: the AND result is pinned
  // to zero by the other operand's concrete 0 bit -> clean.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kAnd, 0xf0, 0x0f, 0, 0), 0u);
}

TEST_F(TaintEngineTest, OrIsValueAware) {
  // x | 1s: concrete ones pin the result regardless of taint.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kOr, 0xff, 0, 0x00, 0xff), 0u);
  // x | 0s: taint flows through.
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kOr, 0xff, 0, 0x00, 0x00), 0xffu);
}

TEST_F(TaintEngineTest, XorUnions) {
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kXor, 0xf0, 0x0f, 7, 9), 0xffu);
}

TEST_F(TaintEngineTest, ShiftsMoveMasksByConcreteAmount) {
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kShl, 0b11, 0, 0, 4), 0b110000u);
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kShr, 0xf00, 0, 0, 8), 0xfu);
  // Arithmetic shift replicates a tainted sign bit.
  const std::uint64_t sign = 1ull << 63;
  const std::uint64_t m = engine_.PropagateOp(TcgOpc::kSar, sign, 0, 0, 4);
  EXPECT_EQ(m, 0xf8ull << 56);
}

TEST_F(TaintEngineTest, TaintedShiftAmountFullyTaints) {
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kShl, 0, 1, 5, 2), ~std::uint64_t{0});
}

TEST_F(TaintEngineTest, FlagsFullyTaintedOnAnyOperandTaint) {
  const std::uint64_t f = engine_.PropagateOp(TcgOpc::kSetFlags, 1, 0, 0, 0);
  EXPECT_EQ(f, tcg::kFlagEq | tcg::kFlagLtS | tcg::kFlagLtU);
}

TEST_F(TaintEngineTest, FpOpsFullyTaint) {
  for (const TcgOpc opc : {TcgOpc::kFAdd, TcgOpc::kFMul, TcgOpc::kFDiv,
                           TcgOpc::kFSqrt, TcgOpc::kCvtIF, TcgOpc::kCvtFI}) {
    EXPECT_EQ(engine_.PropagateOp(opc, 1, 0, 0, 0), ~std::uint64_t{0});
  }
}

TEST_F(TaintEngineTest, FpNegAbsTouchOnlySignBit) {
  const std::uint64_t sign = 1ull << 63;
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kFNeg, 0x3, 0, 0, 0), 0x3u | sign);
  EXPECT_EQ(engine_.PropagateOp(TcgOpc::kFAbs, 0x3 | sign, 0, 0, 0), 0x3u);
}

// ---- Memory shadow ------------------------------------------------------------

TEST_F(TaintEngineTest, MemTaintByteRoundTripAndCount) {
  EXPECT_EQ(engine_.CountTaintedBytes(), 0u);
  engine_.SetMemTaintByte(0x1000, 0xff);
  engine_.SetMemTaintByte(0x1001, 0x01);
  EXPECT_EQ(engine_.CountTaintedBytes(), 2u);
  EXPECT_EQ(engine_.GetMemTaintByte(0x1000), 0xffu);
  engine_.SetMemTaintByte(0x1000, 0);  // clearing decrements
  EXPECT_EQ(engine_.CountTaintedBytes(), 1u);
  engine_.SetMemTaintByte(0x1001, 0x80);  // overwrite stays counted once
  EXPECT_EQ(engine_.CountTaintedBytes(), 1u);
}

TEST_F(TaintEngineTest, PackedMemTaint) {
  engine_.SetMemTaint(0x2000, 4, 0xaabbccdd);
  EXPECT_EQ(engine_.GetMemTaintByte(0x2000), 0xddu);
  EXPECT_EQ(engine_.GetMemTaintByte(0x2003), 0xaau);
  EXPECT_EQ(engine_.GetMemTaint(0x2000, 4), 0xaabbccddull);
  EXPECT_EQ(engine_.CountTaintedBytes(), 4u);
}

TEST_F(TaintEngineTest, CrossPageShadow) {
  const PhysAddr edge = kShadowPageSize - 2;
  engine_.SetMemTaint(edge, 4, 0x11223344);
  EXPECT_EQ(engine_.GetMemTaint(edge, 4), 0x11223344ull);
  EXPECT_EQ(engine_.CountTaintedBytes(), 4u);
}

TEST_F(TaintEngineTest, PeakTaintedBytesTracked) {
  engine_.SetMemTaint(0, 8, ~0ull);
  engine_.SetMemTaint(0, 8, 0);
  EXPECT_EQ(engine_.CountTaintedBytes(), 0u);
  EXPECT_EQ(engine_.stats().peak_tainted_bytes, 8u);
}

// ---- Loads / stores + callbacks ----------------------------------------------------

TEST_F(TaintEngineTest, LoadPicksUpShadowAndFiresCallback) {
  std::vector<TaintMemAccess> reads;
  engine_.set_on_tainted_read([&](const TaintMemAccess& a) { reads.push_back(a); });
  engine_.SetMemTaint(0x3000, 2, 0x00ff);
  const std::uint64_t t =
      engine_.OnLoad(/*pc=*/7, /*vaddr=*/0x993000, /*paddr=*/0x3000, 4,
                     /*sign=*/false, /*addr_taint=*/0, /*value=*/0xabcd);
  EXPECT_EQ(t, 0xffull);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].pc, 7u);
  EXPECT_EQ(reads[0].vaddr, 0x993000u);
  EXPECT_EQ(reads[0].paddr, 0x3000u);
  EXPECT_EQ(reads[0].value, 0xabcdu);
  EXPECT_EQ(engine_.stats().tainted_reads, 1u);
}

TEST_F(TaintEngineTest, CleanLoadNoCallback) {
  bool fired = false;
  engine_.set_on_tainted_read([&](const TaintMemAccess&) { fired = true; });
  EXPECT_EQ(engine_.OnLoad(0, 0, 0x4000, 8, false, 0, 0), 0u);
  EXPECT_FALSE(fired);
}

TEST_F(TaintEngineTest, SignExtendedLoadSpreadsSignTaint) {
  engine_.SetMemTaintByte(0x5001, 0x80);  // sign bit of a 2-byte load
  const std::uint64_t t = engine_.OnLoad(0, 0, 0x5000, 2, true, 0, 0x8000);
  EXPECT_EQ(t & 0xffff0000'00000000ull, 0xffff0000'00000000ull);
}

TEST_F(TaintEngineTest, TaintedAddressFullyTaintsLoad) {
  const std::uint64_t t = engine_.OnLoad(0, 0, 0x6000, 8, false, /*addr_taint=*/1, 0);
  EXPECT_EQ(t, ~std::uint64_t{0});
}

TEST_F(TaintEngineTest, StoreWritesShadowAndFiresCallback) {
  std::vector<TaintMemAccess> writes;
  engine_.set_on_tainted_write([&](const TaintMemAccess& a) { writes.push_back(a); });
  engine_.OnStore(/*pc=*/9, 0x997000, 0x7000, 8, 0, 0x1234, 0x00ff00ff00ff00ffull);
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(engine_.GetMemTaint(0x7000, 8), 0x00ff00ff00ff00ffull);
  EXPECT_EQ(engine_.CountTaintedBytes(), 4u);
  EXPECT_EQ(engine_.stats().tainted_writes, 1u);
}

TEST_F(TaintEngineTest, CleanStoreClearsShadowSilently) {
  bool fired = false;
  engine_.set_on_tainted_write([&](const TaintMemAccess&) { fired = true; });
  engine_.SetMemTaint(0x8000, 8, ~0ull);
  engine_.OnStore(0, 0, 0x8000, 8, 0, 0, /*value_taint=*/0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine_.CountTaintedBytes(), 0u);
  EXPECT_EQ(engine_.stats().taint_cleared_bytes, 8u);
}

TEST_F(TaintEngineTest, NarrowStoreMasksValueTaint) {
  engine_.OnStore(0, 0, 0x9000, 2, 0, 0, ~0ull);
  EXPECT_EQ(engine_.CountTaintedBytes(), 2u);
}

// ---- Taint sources -----------------------------------------------------------------

TEST_F(TaintEngineTest, TaintSourceRegisterOrsIn) {
  engine_.SetValTaint(tcg::EnvFp(2), 0x0f);
  engine_.TaintSourceRegister(tcg::EnvFp(2), 0xf0);
  EXPECT_EQ(engine_.GetValTaint(tcg::EnvFp(2)), 0xffu);
}

TEST_F(TaintEngineTest, TaintSourceMemoryOrsIn) {
  engine_.SetMemTaintByte(0xa000, 0x01);
  engine_.TaintSourceMemory(0xa000, 2, 0x0202);
  EXPECT_EQ(engine_.GetMemTaintByte(0xa000), 0x03u);
  EXPECT_EQ(engine_.GetMemTaintByte(0xa001), 0x02u);
}

TEST_F(TaintEngineTest, ResetClearsEverything) {
  engine_.SetValTaint(tcg::EnvInt(1), 1);
  engine_.SetMemTaintByte(0, 1);
  engine_.OnStore(0, 0, 16, 8, 0, 0, 0xff);
  engine_.Reset();
  EXPECT_FALSE(engine_.AnyEnvTainted());
  EXPECT_EQ(engine_.CountTaintedBytes(), 0u);
  EXPECT_EQ(engine_.stats().tainted_writes, 0u);
  EXPECT_TRUE(engine_.enabled()) << "Reset must not flip the enable switch";
}

// ---- Packed helpers ------------------------------------------------------------------

TEST(TaintPack, PackUnpackRoundTrip) {
  const std::uint8_t masks[4] = {0x11, 0x22, 0x33, 0x44};
  const std::uint64_t packed = PackMask(masks, 4);
  EXPECT_EQ(packed, 0x44332211ull);
  std::uint8_t out[4] = {};
  UnpackMask(packed, 4, out);
  EXPECT_EQ(std::memcmp(masks, out, 4), 0);
}

}  // namespace
}  // namespace chaser::taint

// Tests for the Allreduce / Gather / Scatter collectives, including taint
// propagation through the two-hop allreduce path.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "guest/builder.h"
#include "hub/mpi_hooks.h"
#include "hub/tainthub.h"
#include "mpi/cluster.h"

namespace chaser::mpi {
namespace {

using guest::Cond;
using guest::F;
using guest::MpiDatatype;
using guest::MpiOp;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

constexpr std::int64_t kDouble = static_cast<std::int64_t>(MpiDatatype::kDouble);
constexpr std::int64_t kInt64 = static_cast<std::int64_t>(MpiDatatype::kInt64);

std::deque<guest::Program>& Programs() {
  static std::deque<guest::Program> programs;
  return programs;
}

/// Every rank contributes (rank+1) as a double; allreduce-sum twice in a row
/// (the second round exercises the per-rank progress-flag reset); each rank
/// exports both results.
const guest::Program& AllreduceProgram() {
  static const guest::Program* p = [] {
    ProgramBuilder b("allreduce");
    const std::vector<double> one{1.0};
    const GuestAddr scale = b.DataF64("scale", one);  // read-only input cell
    const GuestAddr sendbuf = b.Bss("sendbuf", 8);
    const GuestAddr recvbuf = b.Bss("recvbuf", 16);
    b.Sys(Sys::kMpiInit);
    b.Sys(Sys::kMpiCommRank);
    b.Mov(R(10), R(0));
    b.AddI(R(9), R(10), 1);
    b.CvtIF(F(0), R(9));
    b.MovI(R(9), static_cast<std::int64_t>(scale));
    b.Fld(F(1), R(9), 0);
    b.Fmul(F(0), F(0), F(1));  // contribution = (rank+1) * scale
    b.MovI(R(9), static_cast<std::int64_t>(sendbuf));
    b.Fst(R(9), 0, F(0));
    for (int round = 0; round < 2; ++round) {
      b.MovI(R(1), static_cast<std::int64_t>(sendbuf));
      b.MovI(R(2), static_cast<std::int64_t>(recvbuf + 8 * round));
      b.MovI(R(3), 1);
      b.MovI(R(4), kDouble);
      b.MovI(R(5), static_cast<std::int64_t>(MpiOp::kSum));
      b.Sys(Sys::kMpiAllreduce);
    }
    b.MovI(R(4), static_cast<std::int64_t>(recvbuf));
    b.MovI(R(5), 16);
    b.Write(3, R(4), R(5));
    b.Sys(Sys::kMpiFinalize);
    b.Exit(0);
    Programs().push_back(b.Finalize());
    return &Programs().back();
  }();
  return *p;
}

TEST(Collectives, AllreduceSumsOnEveryRankTwice) {
  Cluster cluster({.num_ranks = 4});
  cluster.Start(AllreduceProgram());
  const JobResult job = cluster.Run();
  ASSERT_TRUE(job.completed) << job.first_failure_message;
  for (Rank r = 0; r < 4; ++r) {
    double v[2];
    ASSERT_EQ(cluster.rank_vm(r).output(3).size(), 16u);
    std::memcpy(v, cluster.rank_vm(r).output(3).data(), 16);
    EXPECT_DOUBLE_EQ(v[0], 10.0) << "rank " << r << " round 1";
    EXPECT_DOUBLE_EQ(v[1], 10.0) << "rank " << r << " round 2";
  }
}

TEST(Collectives, AllreduceTaintReachesEveryRank) {
  hub::TaintHub hub;
  hub::ChaserMpiHooks hooks(&hub);
  Cluster cluster({.num_ranks = 4});
  cluster.SetMessageHooks(&hooks);
  cluster.Start(AllreduceProgram());
  for (Rank r = 0; r < 4; ++r) cluster.rank_vm(r).taint().set_enabled(true);
  // Taint rank 2's read-only input cell: its contribution is derived from
  // it, so the taint flows sendbuf -> rank 0 -> combined result -> everyone.
  vm::Vm& source = cluster.rank_vm(2);
  const GuestAddr scale = AllreduceProgram().DataAddr("scale");
  const auto scale_pa = source.memory().Translate(scale);
  ASSERT_TRUE(scale_pa.has_value());
  source.taint().TaintSourceMemory(*scale_pa, 8, ~std::uint64_t{0});
  ASSERT_TRUE(cluster.Run().completed);
  // The combined result must be tainted on every rank's recvbuf.
  for (Rank r = 0; r < 4; ++r) {
    const GuestAddr recvbuf = AllreduceProgram().DataAddr("recvbuf");
    const auto pa = cluster.rank_vm(r).memory().Translate(recvbuf);
    ASSERT_TRUE(pa.has_value());
    EXPECT_NE(cluster.rank_vm(r).taint().GetMemTaintByte(*pa), 0u) << "rank " << r;
  }
  EXPECT_GE(hub.stats().hits, 2u);  // contribution hop + distribution hops
}

TEST(Collectives, GatherCollectsInRankOrder) {
  ProgramBuilder b("gather");
  const GuestAddr sendbuf = b.Bss("sendbuf", 8);
  const GuestAddr recvbuf = b.Bss("recvbuf", 4 * 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  b.MulI(R(9), R(10), 11);  // contribute rank*11
  b.MovI(R(8), static_cast<std::int64_t>(sendbuf));
  b.St(R(8), 0, R(9));
  b.MovI(R(1), static_cast<std::int64_t>(sendbuf));
  b.MovI(R(2), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(3), 1);
  b.MovI(R(4), kInt64);
  b.MovI(R(5), 1);  // root = rank 1
  b.Sys(Sys::kMpiGather);
  auto not_root = b.NewLabel("not_root");
  b.CmpI(R(10), 1);
  b.Br(Cond::kNe, not_root);
  b.MovI(R(4), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(5), 32);
  b.Write(3, R(4), R(5));
  b.Bind(not_root);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());

  Cluster cluster({.num_ranks = 4});
  cluster.Start(Programs().back());
  ASSERT_TRUE(cluster.Run().completed);
  std::uint64_t v[4];
  ASSERT_EQ(cluster.rank_vm(1).output(3).size(), 32u);
  std::memcpy(v, cluster.rank_vm(1).output(3).data(), 32);
  for (std::uint64_t r = 0; r < 4; ++r) EXPECT_EQ(v[r], r * 11) << "slot " << r;
}

TEST(Collectives, ScatterDistributesChunks) {
  ProgramBuilder b("scatter");
  const std::vector<std::uint64_t> table{100, 200, 300, 400};
  const GuestAddr sendbuf = b.DataU64("table", table);
  const GuestAddr recvbuf = b.Bss("recvbuf", 8);
  b.Sys(Sys::kMpiInit);
  b.MovI(R(1), static_cast<std::int64_t>(sendbuf));
  b.MovI(R(2), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(3), 1);
  b.MovI(R(4), kInt64);
  b.MovI(R(5), 0);  // root = rank 0
  b.Sys(Sys::kMpiScatter);
  b.MovI(R(4), static_cast<std::int64_t>(recvbuf));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());

  Cluster cluster({.num_ranks = 4});
  cluster.Start(Programs().back());
  ASSERT_TRUE(cluster.Run().completed);
  for (Rank r = 0; r < 4; ++r) {
    std::uint64_t v = 0;
    ASSERT_EQ(cluster.rank_vm(r).output(3).size(), 8u);
    std::memcpy(&v, cluster.rank_vm(r).output(3).data(), 8);
    EXPECT_EQ(v, static_cast<std::uint64_t>(r + 1) * 100) << "rank " << r;
  }
}

TEST(Collectives, AllreduceInvalidOpIsMpiError) {
  ProgramBuilder b("badallreduce");
  const GuestAddr buf = b.Bss("buf", 8);
  b.Sys(Sys::kMpiInit);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), static_cast<std::int64_t>(buf));
  b.MovI(R(3), 1);
  b.MovI(R(4), kDouble);
  b.MovI(R(5), 42);  // invalid op
  b.Sys(Sys::kMpiAllreduce);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 1});
  cluster.Start(Programs().back());
  EXPECT_EQ(cluster.Run().first_failure_kind, vm::TerminationKind::kMpiError);
}

TEST(Collectives, ScatterInvalidRootIsMpiError) {
  ProgramBuilder b("badscatter");
  const GuestAddr buf = b.Bss("buf", 64);
  b.Sys(Sys::kMpiInit);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), static_cast<std::int64_t>(buf));
  b.MovI(R(3), 1);
  b.MovI(R(4), kInt64);
  b.MovI(R(5), 9);  // no such root
  b.Sys(Sys::kMpiScatter);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  Cluster cluster({.num_ranks = 2});
  cluster.Start(Programs().back());
  EXPECT_EQ(cluster.Run().first_failure_kind, vm::TerminationKind::kMpiError);
}

}  // namespace
}  // namespace chaser::mpi

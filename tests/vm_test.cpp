// Unit tests for src/vm: soft-MMU memory, instruction semantics, guest OS
// services, signals, the TB cache, and VMI events.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "common/error.h"
#include "guest/builder.h"
#include "vm/memory.h"
#include "vm/vm.h"

namespace chaser::vm {
namespace {

using guest::Cond;
using guest::F;
using guest::MemSize;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

// ---- GuestMemory --------------------------------------------------------------

TEST(Memory, UnmappedAccessFails) {
  GuestMemory m;
  PhysAddr pa;
  EXPECT_FALSE(m.IsMapped(0x1000));
  EXPECT_EQ(m.Translate(0x1000), std::nullopt);
  EXPECT_FALSE(m.Load(0x1000, 8, &pa).has_value());
  EXPECT_FALSE(m.Store(0x1000, 8, 1, &pa));
}

TEST(Memory, MapThenRoundTrip) {
  GuestMemory m;
  m.MapRegion(0x1000, 0x2000);
  PhysAddr pa = 0;
  ASSERT_TRUE(m.Store(0x1234, 8, 0xdeadbeefcafef00dull, &pa));
  const auto v = m.Load(0x1234, 8, &pa);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xdeadbeefcafef00dull);
}

TEST(Memory, ZeroInitialized) {
  GuestMemory m;
  m.MapRegion(0x4000, 64);
  PhysAddr pa;
  EXPECT_EQ(*m.Load(0x4000, 8, &pa), 0u);
}

TEST(Memory, SubWordSizes) {
  GuestMemory m;
  m.MapRegion(0, 4096);
  PhysAddr pa;
  m.Store(0x10, 8, 0x1122334455667788ull, &pa);
  EXPECT_EQ(*m.Load(0x10, 1, &pa), 0x88u);
  EXPECT_EQ(*m.Load(0x10, 2, &pa), 0x7788u);
  EXPECT_EQ(*m.Load(0x10, 4, &pa), 0x55667788u);
  m.Store(0x10, 1, 0xff, &pa);
  EXPECT_EQ(*m.Load(0x10, 8, &pa), 0x11223344556677ffull);
}

TEST(Memory, CrossPageAccess) {
  GuestMemory m;
  m.MapRegion(0, 2 * kPageSize);
  PhysAddr pa;
  const GuestAddr addr = kPageSize - 4;  // straddles the page boundary
  ASSERT_TRUE(m.Store(addr, 8, 0x0102030405060708ull, &pa));
  EXPECT_EQ(*m.Load(addr, 8, &pa), 0x0102030405060708ull);
}

TEST(Memory, CrossPageIntoUnmappedFails) {
  GuestMemory m;
  m.MapRegion(0, kPageSize);  // only the first page
  PhysAddr pa;
  EXPECT_FALSE(m.Load(kPageSize - 4, 8, &pa).has_value());
  EXPECT_FALSE(m.Store(kPageSize - 4, 8, 1, &pa));
  // And the mapped prefix is untouched (no partial store).
  EXPECT_EQ(*m.Load(kPageSize - 8, 8, &pa) & 0xffffffffu, 0u);
}

TEST(Memory, BulkReadWrite) {
  GuestMemory m;
  m.MapRegion(0x7000, 3 * kPageSize);
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  ASSERT_TRUE(m.WriteBytes(0x7100, data.data(), data.size()));
  std::vector<std::uint8_t> back(5000);
  ASSERT_TRUE(m.ReadBytes(0x7100, back.data(), back.size()));
  EXPECT_EQ(data, back);
}

TEST(Memory, BulkWriteFailsAtomically) {
  GuestMemory m;
  m.MapRegion(0, kPageSize);
  std::vector<std::uint8_t> data(2 * kPageSize, 0xab);
  EXPECT_FALSE(m.WriteBytes(0, data.data(), data.size()));
  PhysAddr pa;
  EXPECT_EQ(*m.Load(0, 8, &pa), 0u);  // nothing written
}

TEST(Memory, DistinctPagesDistinctFrames) {
  GuestMemory m;
  m.MapRegion(0x10000, kPageSize);
  m.MapRegion(0x90000, kPageSize);
  const PhysAddr p1 = *m.Translate(0x10000);
  const PhysAddr p2 = *m.Translate(0x90000);
  EXPECT_NE(p1 >> kPageBits, p2 >> kPageBits);
}

// ---- Instruction semantics -------------------------------------------------------

/// Runs `emit` inside a fresh program and returns the terminated VM.
template <typename EmitFn>
Vm RunProgram(EmitFn emit) {
  ProgramBuilder b("t");
  emit(b);
  b.Exit(0);
  static std::deque<guest::Program> programs;  // stable addresses, kept alive
  programs.push_back(b.Finalize());
  Vm vm;
  vm.StartProcess(programs.back());
  vm.Run(1u << 22);
  return vm;
}

TEST(Exec, IntegerAluBasics) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 7);
    b.MovI(R(2), 3);
    b.Add(R(3), R(1), R(2));
    b.Sub(R(4), R(1), R(2));
    b.Mul(R(5), R(1), R(2));
    b.DivS(R(6), R(1), R(2));
    b.RemS(R(8), R(1), R(2));
    b.And(R(9), R(1), R(2));
    b.Or(R(10), R(1), R(2));
    b.Xor(R(11), R(1), R(2));
  });
  EXPECT_EQ(vm.cpu().IntReg(3), 10u);
  EXPECT_EQ(vm.cpu().IntReg(4), 4u);
  EXPECT_EQ(vm.cpu().IntReg(5), 21u);
  EXPECT_EQ(vm.cpu().IntReg(6), 2u);
  EXPECT_EQ(vm.cpu().IntReg(8), 1u);
  EXPECT_EQ(vm.cpu().IntReg(9), 3u);
  EXPECT_EQ(vm.cpu().IntReg(10), 7u);
  EXPECT_EQ(vm.cpu().IntReg(11), 4u);
}

TEST(Exec, SignedUnsignedDivision) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), -7);
    b.MovI(R(2), 2);
    b.DivS(R(3), R(1), R(2));   // -3 (C++ truncation)
    b.RemS(R(4), R(1), R(2));   // -1
    b.DivU(R(5), R(1), R(2));   // huge
  });
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(3)), -3);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(4)), -1);
  EXPECT_EQ(vm.cpu().IntReg(5), (~std::uint64_t{0} - 6) / 2);
}

TEST(Exec, Shifts) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), -8);
    b.ShlI(R(2), R(1), 2);
    b.ShrI(R(3), R(1), 2);
    b.SarI(R(4), R(1), 2);
    b.MovI(R(5), 1);
    b.MovI(R(6), 65);          // shift amounts wrap mod 64
    b.Shl(R(8), R(5), R(6));   // (r7 is the syscall-number register)
  });
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(2)), -32);
  EXPECT_EQ(vm.cpu().IntReg(3), static_cast<std::uint64_t>(-8) >> 2);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(4)), -2);
  EXPECT_EQ(vm.cpu().IntReg(8), 2u);
}

TEST(Exec, NotNeg) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 5);
    b.Not(R(2), R(1));
    b.Neg(R(3), R(1));
  });
  EXPECT_EQ(vm.cpu().IntReg(2), ~5ull);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(3)), -5);
}

TEST(Exec, LoadStoreSignExtension) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 16);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 0xff80);
    b.St(R(1), 0, R(2), MemSize::k2);
    b.Ld(R(3), R(1), 0, MemSize::k2);    // zero-extend
    b.LdS(R(4), R(1), 0, MemSize::k2);   // sign-extend
    b.LdS(R(5), R(1), 1, MemSize::k1);   // 0xff -> -1
  });
  EXPECT_EQ(vm.cpu().IntReg(3), 0xff80u);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(4)), -128);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(5)), -1);
}

TEST(Exec, PushPopStackDiscipline) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 111);
    b.MovI(R(2), 222);
    b.Push(R(1));
    b.Push(R(2));
    b.Pop(R(3));
    b.Pop(R(4));
  });
  EXPECT_EQ(vm.cpu().IntReg(3), 222u);
  EXPECT_EQ(vm.cpu().IntReg(4), 111u);
}

TEST(Exec, CallRetRoundTrip) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    auto fn = b.NewLabel("fn");
    auto after = b.NewLabel("after");
    b.Call(fn);
    b.Jmp(after);
    b.Bind(fn);
    b.MovI(R(8), 99);  // (r1 is clobbered by the Exit convention)
    b.Ret();
    b.Bind(after);
    b.MovI(R(9), 1);
  });
  EXPECT_EQ(vm.cpu().IntReg(8), 99u);
  EXPECT_EQ(vm.cpu().IntReg(9), 1u);
}

TEST(Exec, IndirectCall) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    auto fn = b.NewLabel("fn");
    auto after = b.NewLabel("after");
    b.MovILabel(R(5), fn);
    b.CallR(R(5));
    b.Jmp(after);
    b.Bind(fn);
    b.MovI(R(8), 7);
    b.Ret();
    b.Bind(after);
    b.Nop();
  });
  EXPECT_EQ(vm.cpu().IntReg(8), 7u);
}

TEST(Exec, FpArithmetic) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.FmovI(F(1), 1.5);
    b.FmovI(F(2), 2.0);
    b.Fadd(F(3), F(1), F(2));
    b.Fsub(F(4), F(1), F(2));
    b.Fmul(F(5), F(1), F(2));
    b.Fdiv(F(6), F(1), F(2));
    b.Fneg(F(7), F(1));
    b.Fabs(F(8), F(7));
    b.FmovI(F(9), 9.0);
    b.Fsqrt(F(9), F(9));
    b.Fmin(F(10), F(1), F(2));
    b.Fmax(F(11), F(1), F(2));
  });
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(3), 3.5);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(4), -0.5);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(5), 3.0);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(6), 0.75);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(7), -1.5);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(8), 1.5);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(9), 3.0);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(10), 1.5);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(11), 2.0);
}

TEST(Exec, FpMemoryAndConversions) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    const GuestAddr buf = b.Bss("buf", 16);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.FmovI(F(0), 2.75);
    b.Fst(R(1), 0, F(0));
    b.Fld(F(1), R(1), 0);
    b.CvtFI(R(2), F(1));        // trunc(2.75) = 2
    b.MovI(R(3), -3);
    b.CvtIF(F(2), R(3));        // -3.0
    b.Fbits(R(4), F(0));
    b.BitsF(F(3), R(4));
  });
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(1), 2.75);
  EXPECT_EQ(static_cast<std::int64_t>(vm.cpu().IntReg(2)), 2);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(2), -3.0);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(3), 2.75);
}

TEST(Exec, BranchConditions) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 5);
    b.CmpI(R(1), 5);
    auto eq_taken = b.NewLabel();
    b.Br(Cond::kEq, eq_taken);
    b.MovI(R(2), 111);  // skipped
    b.Bind(eq_taken);
    b.CmpI(R(1), 9);
    auto lt_taken = b.NewLabel();
    b.Br(Cond::kLt, lt_taken);
    b.MovI(R(3), 111);  // skipped
    b.Bind(lt_taken);
    b.MovI(R(4), 1);
  });
  EXPECT_EQ(vm.cpu().IntReg(2), 0u);
  EXPECT_EQ(vm.cpu().IntReg(3), 0u);
  EXPECT_EQ(vm.cpu().IntReg(4), 1u);
}

// ---- Guest signals ----------------------------------------------------------------

TEST(Signals, DivideByZeroRaisesFpe) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 1);
    b.MovI(R(2), 0);
    b.DivS(R(3), R(1), R(2));
  });
  EXPECT_EQ(vm.termination(), TerminationKind::kSignaled);
  EXPECT_EQ(vm.signal(), GuestSignal::kFpe);
}

TEST(Signals, DivisionOverflowRaisesFpe) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), INT64_MIN);
    b.MovI(R(2), -1);
    b.DivS(R(3), R(1), R(2));
  });
  EXPECT_EQ(vm.signal(), GuestSignal::kFpe);
}

TEST(Signals, WildLoadRaisesSegv) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 0x500000000000);
    b.Ld(R(2), R(1), 0);
  });
  EXPECT_EQ(vm.termination(), TerminationKind::kSignaled);
  EXPECT_EQ(vm.signal(), GuestSignal::kSegv);
  EXPECT_NE(vm.termination_message().find("load fault"), std::string::npos);
}

TEST(Signals, WildJumpRaisesSegv) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 1'000'000);
    b.CallR(R(1));
  });
  EXPECT_EQ(vm.signal(), GuestSignal::kSegv);
}

TEST(Signals, HaltRaisesIll) {
  Vm vm = RunProgram([](ProgramBuilder& b) { b.Halt(); });
  EXPECT_EQ(vm.signal(), GuestSignal::kIll);
}

TEST(Signals, UnknownSyscallRaisesSys) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(7), 9999);
    b.Syscall();
  });
  EXPECT_EQ(vm.signal(), GuestSignal::kSys);
}

TEST(Signals, AbortSyscall) {
  Vm vm = RunProgram([](ProgramBuilder& b) { b.Sys(Sys::kAbort); });
  EXPECT_EQ(vm.signal(), GuestSignal::kAbort);
}

TEST(Signals, AssertFailTerminatesWithKind) {
  Vm vm = RunProgram([](ProgramBuilder& b) { b.AssertFail(42); });
  EXPECT_EQ(vm.termination(), TerminationKind::kAssertFailed);
  EXPECT_NE(vm.termination_message().find("42"), std::string::npos);
}

TEST(Signals, WatchdogKillsHungRun) {
  ProgramBuilder b("hang");
  auto loop = b.Here("loop");
  b.Jmp(loop);
  const guest::Program p = b.Finalize();
  Vm::Config config;
  config.max_instructions = 10'000;
  Vm vm(config);
  vm.StartProcess(p);
  vm.RunToCompletion();
  EXPECT_EQ(vm.signal(), GuestSignal::kKill);
}

// ---- OS services ----------------------------------------------------------------

TEST(Os, WriteCapturesOutputPerFd) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    const GuestAddr msg = b.DataString("msg", "hello");
    b.MovI(R(4), static_cast<std::int64_t>(msg));
    b.MovI(R(5), 5);
    b.Write(1, R(4), R(5));
    b.MovI(R(4), static_cast<std::int64_t>(msg));
    b.MovI(R(5), 4);
    b.Write(3, R(4), R(5));
  });
  EXPECT_EQ(vm.output(1), "hello");
  EXPECT_EQ(vm.output(3), "hell");
  EXPECT_EQ(vm.output(7), "");
}

TEST(Os, WriteBadBufferSegfaults) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(4), 0x123);  // unmapped
    b.MovI(R(5), 8);
    b.Write(1, R(4), R(5));
  });
  EXPECT_EQ(vm.signal(), GuestSignal::kSegv);
}

TEST(Os, WriteInsaneLengthSegfaults) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    const GuestAddr msg = b.DataString("m", "x");
    b.MovI(R(4), static_cast<std::int64_t>(msg));
    b.MovI(R(5), 1ll << 40);
    b.Write(1, R(4), R(5));
  });
  EXPECT_EQ(vm.signal(), GuestSignal::kSegv);
}

TEST(Os, BrkGrowsHeap) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.MovI(R(1), 4096);
    b.Sys(Sys::kBrk);
    b.Mov(R(8), R(0));   // old break
    b.MovI(R(2), 77);
    b.St(R(8), 0, R(2)); // write into the new heap page
    b.Ld(R(9), R(8), 0);
  });
  EXPECT_EQ(vm.cpu().IntReg(8), guest::kHeapBase);
  EXPECT_EQ(vm.cpu().IntReg(9), 77u);
}

TEST(Os, InstretSyscallCounts) {
  Vm vm = RunProgram([](ProgramBuilder& b) {
    b.Sys(Sys::kInstret);
    b.Mov(R(8), R(0));
  });
  EXPECT_GT(vm.cpu().IntReg(8), 0u);
  EXPECT_LT(vm.cpu().IntReg(8), 10u);
}

TEST(Os, ExitCodePropagates) {
  Vm vm = RunProgram([](ProgramBuilder& b) { b.Exit(42); });
  EXPECT_EQ(vm.termination(), TerminationKind::kExited);
  // RunProgram appends its own Exit(0), but the first exit wins.
  EXPECT_EQ(vm.exit_code(), 42);
}

// ---- VMI events -------------------------------------------------------------------

TEST(Vmi, ProcessCreateAndExitCallbacks) {
  ProgramBuilder b("target_app");
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Vm vm;
  std::string created, exited;
  Pid created_pid = kInvalidPid;
  vm.set_on_process_create([&](Vm&, Pid pid, const std::string& name) {
    created = name;
    created_pid = pid;
  });
  vm.set_on_process_exit([&](Vm&, Pid, const std::string& name) { exited = name; });
  vm.StartProcess(p);
  EXPECT_EQ(created, "target_app");
  EXPECT_NE(created_pid, kInvalidPid);
  vm.RunToCompletion();
  EXPECT_EQ(exited, "target_app");
}

TEST(Vmi, PidAdvancesPerProcess) {
  ProgramBuilder b("a");
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Vm vm;
  const Pid p1 = vm.StartProcess(p);
  vm.RunToCompletion();
  const Pid p2 = vm.StartProcess(p);
  EXPECT_NE(p1, p2);
}

// ---- TB cache --------------------------------------------------------------------

TEST(TbCache, TranslationsCachedAcrossLoopIterations) {
  ProgramBuilder b("loop");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 100);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Vm vm;
  vm.StartProcess(p);
  vm.RunToCompletion();
  // 100 iterations but only a handful of distinct TBs.
  EXPECT_LT(vm.tb_translations(), 10u);
  EXPECT_GT(vm.tb_executions(), 99u);
}

TEST(TbCache, FlushForcesRetranslation) {
  ProgramBuilder b("loop");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 1000);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  const guest::Program p = b.Finalize();
  Vm vm;
  vm.StartProcess(p);
  vm.Run(50);
  const std::uint64_t before = vm.tb_translations();
  vm.FlushTbCache();
  vm.Run(50);
  EXPECT_GT(vm.tb_translations(), before);
}

TEST(TbCache, SemanticsUnchangedByFlushEveryQuantum) {
  ProgramBuilder b("loop");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 3);
  b.CmpI(R(1), 3000);
  b.Br(Cond::kLt, loop);
  b.Mov(R(8), R(1));
  b.Exit(0);
  const guest::Program p = b.Finalize();

  Vm plain;
  plain.StartProcess(p);
  plain.RunToCompletion();

  Vm flushy;
  flushy.StartProcess(p);
  while (flushy.run_state() == RunState::kRunnable) {
    flushy.Run(17);
    flushy.FlushTbCache();
  }
  EXPECT_EQ(plain.cpu().IntReg(8), flushy.cpu().IntReg(8));
  EXPECT_EQ(plain.instret(), flushy.instret());
}

}  // namespace
}  // namespace chaser::vm

// Unit tests for src/guest: ISA metadata, ProgramBuilder, disassembler,
// operand tables.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.h"
#include "guest/builder.h"
#include "guest/disasm.h"
#include "guest/isa.h"
#include "guest/operands.h"

namespace chaser::guest {
namespace {

// ---- ISA metadata -----------------------------------------------------------

TEST(Isa, ClassOfCoversKeyMnemonics) {
  EXPECT_EQ(ClassOf(Opcode::kMovRR), InstrClass::kMov);
  EXPECT_EQ(ClassOf(Opcode::kLd), InstrClass::kMov);
  EXPECT_EQ(ClassOf(Opcode::kSt), InstrClass::kMov);
  EXPECT_EQ(ClassOf(Opcode::kFadd), InstrClass::kFadd);
  EXPECT_EQ(ClassOf(Opcode::kFsub), InstrClass::kFadd);
  EXPECT_EQ(ClassOf(Opcode::kFmul), InstrClass::kFmul);
  EXPECT_EQ(ClassOf(Opcode::kFdiv), InstrClass::kFmul);
  EXPECT_EQ(ClassOf(Opcode::kCmp), InstrClass::kCmp);
  EXPECT_EQ(ClassOf(Opcode::kFcmp), InstrClass::kCmp);
  EXPECT_EQ(ClassOf(Opcode::kJmp), InstrClass::kBranch);
  EXPECT_EQ(ClassOf(Opcode::kSyscall), InstrClass::kSys);
}

TEST(Isa, ParseInstrClassRoundTrip) {
  for (const InstrClass c :
       {InstrClass::kMov, InstrClass::kFadd, InstrClass::kFmul, InstrClass::kCmp,
        InstrClass::kLogic, InstrClass::kBranch, InstrClass::kFother}) {
    InstrClass parsed;
    ASSERT_TRUE(ParseInstrClass(ClassName(c), &parsed)) << ClassName(c);
    EXPECT_EQ(parsed, c);
  }
}

TEST(Isa, ParseInstrClassCaseInsensitive) {
  InstrClass c;
  ASSERT_TRUE(ParseInstrClass("FADD", &c));
  EXPECT_EQ(c, InstrClass::kFadd);
}

TEST(Isa, ParseInstrClassRejectsUnknown) {
  InstrClass c;
  EXPECT_FALSE(ParseInstrClass("frobnicate", &c));
  EXPECT_FALSE(ParseInstrClass("", &c));
}

TEST(Isa, IsFpOpcode) {
  EXPECT_TRUE(IsFpOpcode(Opcode::kFadd));
  EXPECT_TRUE(IsFpOpcode(Opcode::kCvtIF));
  EXPECT_FALSE(IsFpOpcode(Opcode::kAdd));
  EXPECT_FALSE(IsFpOpcode(Opcode::kLd));
}

TEST(Isa, MpiDatatypeSizes) {
  EXPECT_EQ(MpiDatatypeSize(static_cast<std::uint64_t>(MpiDatatype::kDouble)), 8u);
  EXPECT_EQ(MpiDatatypeSize(static_cast<std::uint64_t>(MpiDatatype::kInt64)), 8u);
  EXPECT_EQ(MpiDatatypeSize(static_cast<std::uint64_t>(MpiDatatype::kByte)), 1u);
  EXPECT_EQ(MpiDatatypeSize(0), 0u);
  EXPECT_EQ(MpiDatatypeSize(99), 0u);
}

TEST(Isa, PcAddressMapping) {
  EXPECT_EQ(PcToAddr(0), kTextBase);
  EXPECT_EQ(PcToAddr(10), kTextBase + 40);
  EXPECT_EQ(AddrToPc(PcToAddr(1234)), 1234u);
}

// ---- ProgramBuilder -----------------------------------------------------------

TEST(Builder, ForwardAndBackwardLabels) {
  ProgramBuilder b("t");
  auto fwd = b.NewLabel("fwd");
  b.Jmp(fwd);          // forward reference
  auto back = b.Here("back");
  b.Nop();
  b.Bind(fwd);
  b.Jmp(back);         // backward reference
  const Program p = b.Finalize();
  EXPECT_EQ(p.text[0].imm, 2);  // fwd bound after nop
  EXPECT_EQ(p.text[2].imm, 1);  // back at index 1
}

TEST(Builder, UnboundLabelThrows) {
  ProgramBuilder b("t");
  auto l = b.NewLabel("never");
  b.Jmp(l);
  EXPECT_THROW(b.Finalize(), AssemblyError);
}

TEST(Builder, DoubleBindThrows) {
  ProgramBuilder b("t");
  auto l = b.Here("once");
  EXPECT_THROW(b.Bind(l), AssemblyError);
}

TEST(Builder, DataPlacementAlignedAndLabeled) {
  ProgramBuilder b("t");
  const std::uint8_t raw[3] = {1, 2, 3};
  const GuestAddr a1 = b.DataBytes("x", raw);
  const std::vector<double> d{1.5, 2.5};
  const GuestAddr a2 = b.DataF64("y", d);
  EXPECT_EQ(a1 % 8, 0u);
  EXPECT_EQ(a2 % 8, 0u);
  EXPECT_GT(a2, a1);
  b.Exit(0);
  const Program p = b.Finalize();
  EXPECT_EQ(p.DataAddr("x"), a1);
  EXPECT_EQ(p.DataAddr("y"), a2);
  // Data bytes landed in the image at the right offset.
  const std::uint64_t off = a2 - kDataBase;
  double v = 0;
  std::memcpy(&v, p.data.data() + off, 8);
  EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Builder, DuplicateDataLabelThrows) {
  ProgramBuilder b("t");
  const std::uint8_t raw[1] = {0};
  b.DataBytes("dup", raw);
  EXPECT_THROW(b.DataBytes("dup", raw), AssemblyError);
}

TEST(Builder, BssSeparateRegionAligned) {
  ProgramBuilder b("t");
  const GuestAddr a1 = b.Bss("b1", 13);
  const GuestAddr a2 = b.Bss("b2", 8);
  EXPECT_EQ(a1, kBssBase);
  EXPECT_EQ(a2 % 8, 0u);
  EXPECT_GE(a2, a1 + 13);
  b.Exit(0);
  const Program p = b.Finalize();
  EXPECT_GE(p.bss_bytes, 21u);
}

TEST(Builder, EntryDefaultsToZeroOrLabel) {
  {
    ProgramBuilder b("t");
    b.Nop();
    b.Exit(0);
    EXPECT_EQ(b.Finalize().entry, 0u);
  }
  {
    ProgramBuilder b("t");
    b.Nop();
    auto main = b.Here("main");
    b.Exit(0);
    b.SetEntry(main);
    EXPECT_EQ(b.Finalize().entry, 1u);
  }
}

TEST(Builder, RegisterRangeChecked) {
  ProgramBuilder b("t");
  EXPECT_THROW(b.Mov(R(16), R(0)), AssemblyError);
  EXPECT_THROW(b.Ld(R(0), R(200), 0), AssemblyError);
}

TEST(Builder, FinalizeTwiceThrows) {
  ProgramBuilder b("t");
  b.Exit(0);
  b.Finalize();
  EXPECT_THROW(b.Finalize(), AssemblyError);
}

TEST(Builder, MovILabelResolvesToIndex) {
  ProgramBuilder b("t");
  auto fn = b.NewLabel("fn");
  b.MovILabel(R(1), fn);
  b.Exit(0);
  b.Bind(fn);
  b.Ret();
  const Program p = b.Finalize();
  EXPECT_EQ(p.text[0].imm, static_cast<std::int64_t>(p.CodeIndex("fn")));
}

TEST(Builder, MissingLabelLookupsThrow) {
  ProgramBuilder b("t");
  b.Exit(0);
  const Program p = b.Finalize();
  EXPECT_THROW(p.DataAddr("nope"), ConfigError);
  EXPECT_THROW(p.CodeIndex("nope"), ConfigError);
}

TEST(Builder, ConvenienceSequences) {
  ProgramBuilder b("t");
  b.Exit(3);
  const Program p = b.Finalize();
  // Exit = MovI r1, code; MovI r7, kExit; syscall
  ASSERT_EQ(p.text.size(), 3u);
  EXPECT_EQ(p.text[0].op, Opcode::kMovRI);
  EXPECT_EQ(p.text[0].rd, 1);
  EXPECT_EQ(p.text[0].imm, 3);
  EXPECT_EQ(p.text[1].rd, 7);
  EXPECT_EQ(p.text[2].op, Opcode::kSyscall);
}

// ---- Disassembler --------------------------------------------------------------

TEST(Disasm, RendersRepresentativeInstructions) {
  EXPECT_EQ(Disassemble({.op = Opcode::kNop}), "nop");
  EXPECT_EQ(Disassemble({.op = Opcode::kMovRR, .rd = 1, .rs1 = 2}), "mov r1, r2");
  EXPECT_EQ(Disassemble({.op = Opcode::kMovRI, .rd = 3, .imm = -5}), "movi r3, -5");
  EXPECT_EQ(Disassemble({.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3}),
            "add r1, r2, r3");
  EXPECT_EQ(
      Disassemble({.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .use_imm = true, .imm = 9}),
      "add r1, r2, 9");
  EXPECT_EQ(Disassemble({.op = Opcode::kFadd, .rd = 1, .rs1 = 2, .rs2 = 3}),
            "fadd f1, f2, f3");
  EXPECT_EQ(Disassemble({.op = Opcode::kBr, .cond = Cond::kLt, .imm = 7}), "blt #7");
  EXPECT_EQ(Disassemble({.op = Opcode::kLd,
                         .rd = 4,
                         .rs1 = 5,
                         .size = MemSize::k4,
                         .imm = 16}),
            "ld32 r4, [r5+16]");
}

TEST(Disasm, ProgramListingHasLabelsAndAddresses) {
  ProgramBuilder b("demo");
  auto top = b.Here("top");
  b.Nop();
  b.Jmp(top);
  const Program p = b.Finalize();
  const std::string listing = DisassembleProgram(p);
  EXPECT_NE(listing.find("top:"), std::string::npos);
  EXPECT_NE(listing.find("0x0000000000400000"), std::string::npos);
  EXPECT_NE(listing.find("demo"), std::string::npos);
}

// ---- Operand tables --------------------------------------------------------------

TEST(Operands, AluRegisterSources) {
  const OperandInfo ops = OperandsOf({.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3});
  EXPECT_EQ(ops.int_sources, (std::vector<std::uint8_t>{2, 3}));
  EXPECT_TRUE(ops.fp_sources.empty());
}

TEST(Operands, AluImmediateDropsRs2) {
  const OperandInfo ops =
      OperandsOf({.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .use_imm = true, .imm = 5});
  EXPECT_EQ(ops.int_sources, (std::vector<std::uint8_t>{2}));
}

TEST(Operands, LoadStoreIncludeAddressBase) {
  const OperandInfo ld = OperandsOf({.op = Opcode::kLd, .rd = 1, .rs1 = 9});
  EXPECT_EQ(ld.int_sources, (std::vector<std::uint8_t>{9}));
  EXPECT_TRUE(ld.reads_memory);
  const OperandInfo st = OperandsOf({.op = Opcode::kSt, .rs1 = 9, .rs2 = 4});
  EXPECT_EQ(st.int_sources, (std::vector<std::uint8_t>{9, 4}));
  EXPECT_TRUE(st.writes_memory);
}

TEST(Operands, FpOps) {
  const OperandInfo ops = OperandsOf({.op = Opcode::kFmul, .rd = 0, .rs1 = 1, .rs2 = 2});
  EXPECT_EQ(ops.fp_sources, (std::vector<std::uint8_t>{1, 2}));
  const OperandInfo fst = OperandsOf({.op = Opcode::kFst, .rs1 = 9, .rs2 = 3});
  EXPECT_EQ(fst.int_sources, (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(fst.fp_sources, (std::vector<std::uint8_t>{3}));
}

TEST(Operands, ImmediateMovesHaveNoSources) {
  const OperandInfo movi = OperandsOf({.op = Opcode::kMovRI, .rd = 1, .imm = 5});
  EXPECT_TRUE(movi.int_sources.empty());
  EXPECT_TRUE(movi.fp_sources.empty());
  EXPECT_TRUE(CorruptAfter({.op = Opcode::kMovRI}));
  EXPECT_TRUE(CorruptAfter({.op = Opcode::kFmovI}));
  EXPECT_FALSE(CorruptAfter({.op = Opcode::kMovRR}));
  EXPECT_FALSE(CorruptAfter({.op = Opcode::kLd}));
}

TEST(Operands, StackOpsUseSp) {
  const OperandInfo push = OperandsOf({.op = Opcode::kPush, .rs1 = 3});
  EXPECT_EQ(push.int_sources, (std::vector<std::uint8_t>{3, kSpReg}));
  const OperandInfo ret = OperandsOf({.op = Opcode::kRet});
  EXPECT_EQ(ret.int_sources, (std::vector<std::uint8_t>{kSpReg}));
}

}  // namespace
}  // namespace chaser::guest

// Tests for src/campaign: golden-run capture, outcome classification for
// every outcome class, determinism, and watchdog tightening.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "common/error.h"
#include "guest/builder.h"

namespace chaser::campaign {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

/// A single-process app whose outcome is easy to steer: it runs `iters` fadds
/// accumulating into memory, writes the result, and exits.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

TEST(Campaign, GoldenRunCapturesOutputsAndExecCounts) {
  Campaign c(AccumulatorApp(50), {.runs = 0});
  c.RunGolden();
  EXPECT_TRUE(c.golden_done());
  EXPECT_EQ(c.golden_output(0, 3).size(), 8u);
  EXPECT_EQ(c.golden_targeted_execs(0), 50u);
  EXPECT_GT(c.golden_instructions(), 100u);
}

TEST(Campaign, GoldenOutputMissingPairThrowsWithContext) {
  Campaign c(AccumulatorApp(50), {.runs = 0});
  // Before the golden run: any lookup must fail loudly, not return garbage.
  EXPECT_THROW(c.golden_output(0, 3), ConfigError);
  c.RunGolden();
  // Rank/fd outside the captured set name the offending pair.
  try {
    c.golden_output(7, 3);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 7"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("fd 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW(c.golden_output(0, 2), ConfigError);  // fd 2 never captured
}

TEST(Campaign, GoldenRunFailureThrows) {
  ProgramBuilder b("crash");
  b.Halt();
  apps::AppSpec spec;
  spec.name = "crash";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kSys};
  Campaign c(std::move(spec), {.runs = 0});
  EXPECT_THROW(c.RunGolden(), ConfigError);
}

TEST(Campaign, NoTargetedInstructionsThrows) {
  ProgramBuilder b("nofp");
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "nofp";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};  // program has none
  Campaign c(std::move(spec), {.runs = 0});
  EXPECT_THROW(c.RunGolden(), ConfigError);
}

TEST(Campaign, InvalidInjectRankThrows) {
  CampaignConfig config;
  config.inject_ranks = {5};
  EXPECT_THROW(Campaign(AccumulatorApp(), config), ConfigError);
}

TEST(Campaign, SdcDetectedOnOutputDivergence) {
  // Exponent-bit flips in the accumulator almost always change the output.
  CampaignConfig config;
  config.runs = 40;
  config.seed = 5;
  Campaign c(AccumulatorApp(50), config);
  const CampaignResult result = c.Run();
  EXPECT_EQ(result.runs, 40u);
  EXPECT_GT(result.sdc + result.benign + result.terminated, 0u);
  EXPECT_GT(result.sdc, 0u);  // FP value corruption -> different bits out
}

TEST(Campaign, RunOnceIsDeterministicGivenSeed) {
  Campaign c(AccumulatorApp(50), {.runs = 0});
  c.RunGolden();
  const RunRecord a = c.RunOnce(777);
  const RunRecord b = c.RunOnce(778);
  const RunRecord a2 = c.RunOnce(777);
  EXPECT_EQ(a.outcome, a2.outcome);
  EXPECT_EQ(a.trigger_nth, a2.trigger_nth);
  EXPECT_EQ(a.flip_bits, a2.flip_bits);
  EXPECT_EQ(a.tainted_reads, a2.tainted_reads);
  EXPECT_EQ(a.tainted_writes, a2.tainted_writes);
  // A different seed picks a different injection point (almost surely).
  EXPECT_TRUE(a.trigger_nth != b.trigger_nth || a.flip_bits != b.flip_bits);
}

TEST(Campaign, FullCampaignDeterministicAcrossInstances) {
  CampaignConfig config;
  config.runs = 15;
  config.seed = 99;
  Campaign c1(AccumulatorApp(30), config);
  Campaign c2(AccumulatorApp(30), config);
  const CampaignResult r1 = c1.Run();
  const CampaignResult r2 = c2.Run();
  EXPECT_EQ(r1.benign, r2.benign);
  EXPECT_EQ(r1.terminated, r2.terminated);
  EXPECT_EQ(r1.sdc, r2.sdc);
}

TEST(Campaign, ExtremeWatchdogMultiplierSaturatesInsteadOfWrapping) {
  // A huge multiplier used to wrap `multiplier * golden_instructions + slack`
  // around to a tiny budget, killing healthy trials. It must now clamp to
  // effectively-unlimited, so outcomes match a default-watchdog campaign.
  CampaignConfig config;
  config.runs = 8;
  config.seed = 55;
  Campaign reference(AccumulatorApp(40), config);
  const CampaignResult expected = reference.Run();
  config.watchdog_multiplier = ~0ull;
  Campaign c(AccumulatorApp(40), config);
  const CampaignResult result = c.Run();
  EXPECT_EQ(result.benign, expected.benign);
  EXPECT_EQ(result.terminated, expected.terminated);
  EXPECT_EQ(result.sdc, expected.sdc);
}

TEST(Campaign, TracingRecordsTaintActivity) {
  CampaignConfig config;
  config.runs = 10;
  config.seed = 3;
  Campaign c(AccumulatorApp(50), config);
  const CampaignResult result = c.Run();
  bool any_taint = false;
  for (const RunRecord& rec : result.records) {
    if (rec.tainted_writes > 0 || rec.tainted_reads > 0) any_taint = true;
    EXPECT_EQ(rec.injections, 1u) << "single-fault model";
  }
  EXPECT_TRUE(any_taint);
}

TEST(Campaign, TraceOffStillClassifies) {
  CampaignConfig config;
  config.runs = 10;
  config.seed = 4;
  config.trace = false;
  Campaign c(AccumulatorApp(50), config);
  const CampaignResult result = c.Run();
  EXPECT_EQ(result.runs, 10u);
  for (const RunRecord& rec : result.records) {
    EXPECT_EQ(rec.tainted_reads, 0u);
    EXPECT_EQ(rec.tainted_writes, 0u);
  }
}

TEST(Campaign, AssertionOutcomeClassifiedAsDetected) {
  // App that self-checks: accumulates 10 fadds, asserts result == 10.0.
  ProgramBuilder b("checked");
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 10);
  b.Br(Cond::kLt, loop);
  b.FmovI(F(2), 10.0);
  b.Fcmp(F(0), F(2));
  auto ok = b.NewLabel("ok");
  b.Br(Cond::kEq, ok);
  b.AssertFail(1);
  b.Bind(ok);
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "checked";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};

  CampaignConfig config;
  config.runs = 60;
  config.seed = 8;
  Campaign c(std::move(spec), config);
  const CampaignResult result = c.Run();
  // Value corruptions of the accumulator trip the checker.
  EXPECT_GT(result.assert_detected, 0u);
  // And there is no output, so nothing can be SDC.
  EXPECT_EQ(result.sdc, 0u);
}

TEST(Campaign, MatvecMasterInjectionShapesLikeTableIII) {
  apps::AppSpec spec = apps::BuildMatvec({});
  CampaignConfig config;
  config.runs = 120;
  config.seed = 123;
  config.inject_ranks = {0};
  Campaign c(std::move(spec), config);
  const CampaignResult result = c.Run();
  ASSERT_GT(result.terminated, 0u);
  // OS exceptions must dominate MPI errors among terminations (Table III).
  EXPECT_GT(result.os_exception, result.mpi_error);
  for (const RunRecord& rec : result.records) {
    EXPECT_EQ(rec.inject_rank, 0);
  }
}

TEST(Campaign, ClamrCheckerDominatesTerminations) {
  apps::AppSpec spec = apps::BuildClamr(
      {.global_rows = 12, .cols = 12, .steps = 8, .ranks = 4});
  CampaignConfig config;
  config.runs = 60;
  config.seed = 321;
  config.inject_ranks = {0, 1, 2, 3};
  Campaign c(std::move(spec), config);
  const CampaignResult result = c.Run();
  ASSERT_GT(result.terminated, 0u);
  EXPECT_GT(result.assert_detected, result.os_exception);
  EXPECT_GT(result.assert_detected, result.mpi_error);
}

TEST(Campaign, CrossRankPropagationObservedInClamr) {
  apps::AppSpec spec = apps::BuildClamr(
      {.global_rows = 12, .cols = 12, .steps = 8, .ranks = 4});
  CampaignConfig config;
  config.runs = 40;
  config.seed = 55;
  config.inject_ranks = {1};
  Campaign c(std::move(spec), config);
  const CampaignResult result = c.Run();
  EXPECT_GT(result.propagated_runs, 0u);
}

TEST(Campaign, KeepRecordsOffDropsRecords) {
  CampaignConfig config;
  config.runs = 5;
  config.keep_records = false;
  Campaign c(AccumulatorApp(30), config);
  const CampaignResult result = c.Run();
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.benign + result.terminated + result.sdc, 5u);
}

TEST(Campaign, RenderMentionsAllBuckets) {
  CampaignConfig config;
  config.runs = 10;
  Campaign c(AccumulatorApp(30), config);
  const std::string s = c.Run().Render("accum");
  EXPECT_NE(s.find("benign"), std::string::npos);
  EXPECT_NE(s.find("terminated"), std::string::npos);
  EXPECT_NE(s.find("sdc"), std::string::npos);
}

}  // namespace
}  // namespace chaser::campaign

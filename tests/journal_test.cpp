// Tests for src/campaign/journal: the crash-safe trial journal must survive
// truncation at any byte and random bit rot by recovering the intact record
// prefix, and resuming a campaign from it — serial or parallel — must
// reproduce the uninterrupted report byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "common/error.h"
#include "common/rng.h"
#include "guest/builder.h"

namespace chaser::campaign {
namespace {

namespace fs = std::filesystem;

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

std::string TempPath(const std::string& name) {
  const std::string path =
      (fs::temp_directory_path() / ("chaser_journal_test_" + name)).string();
  fs::remove_all(path);
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A spread of records covering every encoder path: zero everything, signed
/// ranks, all flags, huge counters, and a quarantined infra record with
/// free-form exception text.
std::vector<RunRecord> SampleRecords() {
  std::vector<RunRecord> recs;
  {
    RunRecord r;
    r.run_seed = 1;
    recs.push_back(r);
  }
  {
    RunRecord r;
    r.run_seed = 0xFFFFFFFFFFFFFFFFull;
    r.outcome = Outcome::kTerminated;
    r.kind = vm::TerminationKind::kSignaled;
    r.signal = vm::GuestSignal::kSegv;
    r.inject_rank = 3;
    r.failure_rank = -1;
    r.deadlock = true;
    r.propagated_cross_rank = true;
    r.propagated_cross_node = true;
    r.injections = 2;
    r.tainted_reads = 123456789;
    r.tainted_writes = 987654321;
    r.peak_tainted_bytes = 1 << 20;
    r.tainted_output_bytes = 4096;
    r.trigger_nth = 777;
    r.flip_bits = 64;
    r.instructions = 0x123456789ABCDEFull;
    r.trace_dropped = 42;
    r.taint_lost = 7;
    r.retries = 2;
    recs.push_back(r);
  }
  {
    RunRecord r;
    r.run_seed = 555;
    r.outcome = Outcome::kSdc;
    r.tainted_output_bytes = 16;
    // A sampled-campaign record: the v3 fields must survive the round trip
    // bit-exactly (resume feeds the estimator this very weight).
    r.inject_pc = 0xABCDEFull;
    r.inject_class = guest::InstrClass::kFmul;
    r.sample_weight = 1.0 / 3.0;
    recs.push_back(r);
  }
  {
    RunRecord r;
    r.run_seed = 999;
    r.outcome = Outcome::kInfra;
    r.retries = 3;
    r.infra_error = "TrialEngine: simulated device failure, attempt 4";
    recs.push_back(r);
  }
  return recs;
}

void ExpectRecordEq(const RunRecord& a, const RunRecord& b, std::size_t i) {
  EXPECT_EQ(a.run_seed, b.run_seed) << "record " << i;
  EXPECT_EQ(a.outcome, b.outcome) << "record " << i;
  EXPECT_EQ(a.kind, b.kind) << "record " << i;
  EXPECT_EQ(a.signal, b.signal) << "record " << i;
  EXPECT_EQ(a.inject_rank, b.inject_rank) << "record " << i;
  EXPECT_EQ(a.failure_rank, b.failure_rank) << "record " << i;
  EXPECT_EQ(a.deadlock, b.deadlock) << "record " << i;
  EXPECT_EQ(a.propagated_cross_rank, b.propagated_cross_rank) << "record " << i;
  EXPECT_EQ(a.propagated_cross_node, b.propagated_cross_node) << "record " << i;
  EXPECT_EQ(a.injections, b.injections) << "record " << i;
  EXPECT_EQ(a.tainted_reads, b.tainted_reads) << "record " << i;
  EXPECT_EQ(a.tainted_writes, b.tainted_writes) << "record " << i;
  EXPECT_EQ(a.peak_tainted_bytes, b.peak_tainted_bytes) << "record " << i;
  EXPECT_EQ(a.tainted_output_bytes, b.tainted_output_bytes) << "record " << i;
  EXPECT_EQ(a.trigger_nth, b.trigger_nth) << "record " << i;
  EXPECT_EQ(a.flip_bits, b.flip_bits) << "record " << i;
  EXPECT_EQ(a.instructions, b.instructions) << "record " << i;
  EXPECT_EQ(a.trace_dropped, b.trace_dropped) << "record " << i;
  EXPECT_EQ(a.taint_lost, b.taint_lost) << "record " << i;
  EXPECT_EQ(a.retries, b.retries) << "record " << i;
  EXPECT_EQ(a.infra_error, b.infra_error) << "record " << i;
  EXPECT_EQ(a.inject_pc, b.inject_pc) << "record " << i;
  EXPECT_EQ(a.inject_class, b.inject_class) << "record " << i;
  EXPECT_EQ(a.sample_weight, b.sample_weight) << "record " << i;
}

// ---- Round trip --------------------------------------------------------------

TEST(Journal, AppendReadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  const std::vector<RunRecord> recs = SampleRecords();
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 42, "accum", &replayed);
    EXPECT_TRUE(replayed.empty());
    for (const RunRecord& r : recs) journal.Append(r);
    EXPECT_EQ(journal.appended(), recs.size());
  }
  const JournalContents contents = ReadJournal(path);
  EXPECT_EQ(contents.header.campaign_seed, 42u);
  EXPECT_EQ(contents.header.app, "accum");
  EXPECT_FALSE(contents.truncated);
  ASSERT_EQ(contents.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    ExpectRecordEq(recs[i], contents.records[i], i);
  }
  EXPECT_EQ(contents.valid_bytes, fs::file_size(path));
}

TEST(Journal, FreshJournalWritesCurrentVersionAndOldPayloadsStillDecode) {
  const std::string path = TempPath("version");
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 7, "accum", &replayed);
    EXPECT_EQ(journal.version(), kJournalVersion);
  }
  EXPECT_EQ(ReadJournal(path).header.version, kJournalVersion);

  // A record encoded in the v2 layout must be shorter than the same record
  // in v3 (no sampling fields) — the layouts genuinely differ, and a v2
  // file keeps decoding with the sampling defaults (weight 1 = uniform).
  RunRecord rec;
  rec.run_seed = 5;
  rec.inject_pc = 999;
  rec.sample_weight = 2.5;
  const std::string v2 = EncodeJournalRecord(rec, 2);
  const std::string v3 = EncodeJournalRecord(rec, 3);
  EXPECT_LT(v2.size(), v3.size());
}

TEST(Journal, ReopenReplaysAndContinues) {
  const std::string path = TempPath("reopen");
  const std::vector<RunRecord> recs = SampleRecords();
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 7, "accum", &replayed);
    journal.Append(recs[0]);
    journal.Append(recs[1]);
  }
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 7, "accum", &replayed);
    ASSERT_EQ(replayed.size(), 2u);
    ExpectRecordEq(recs[0], replayed[0], 0);
    ExpectRecordEq(recs[1], replayed[1], 1);
    journal.Append(recs[2]);
  }
  const JournalContents contents = ReadJournal(path);
  EXPECT_FALSE(contents.truncated);
  ASSERT_EQ(contents.records.size(), 3u);
  ExpectRecordEq(recs[2], contents.records[2], 2);
}

TEST(Journal, MismatchedCampaignIdentityThrows) {
  const std::string path = TempPath("identity");
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 42, "accum", &replayed);
    journal.Append(SampleRecords()[0]);
  }
  std::vector<RunRecord> replayed;
  EXPECT_THROW(TrialJournal(path, 43, "accum", &replayed), ConfigError);
  EXPECT_THROW(TrialJournal(path, 42, "matvec", &replayed), ConfigError);
}

TEST(Journal, NonJournalFileThrows) {
  const std::string path = TempPath("notjournal");
  WriteFileBytes(path, "run_seed,outcome,this is a csv not a journal\n");
  EXPECT_THROW(ReadJournal(path), ConfigError);
  std::vector<RunRecord> replayed;
  EXPECT_THROW(TrialJournal(path, 1, "accum", &replayed), ConfigError);
}

// ---- Crash discipline --------------------------------------------------------

TEST(Journal, TruncationAtEveryByteRecoversIntactPrefix) {
  const std::string path = TempPath("truncate_src");
  const std::vector<RunRecord> recs = SampleRecords();
  std::uint64_t header_end = 0;
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 11, "accum", &replayed);
    header_end = fs::file_size(path);
    for (const RunRecord& r : recs) journal.Append(r);
  }
  const std::string full = ReadFileBytes(path);

  // Record where each intact prefix ends so expectations are exact.
  std::vector<std::uint64_t> frame_ends;
  {
    const std::string probe = TempPath("truncate_probe");
    for (std::size_t n = 1; n <= recs.size(); ++n) {
      std::vector<RunRecord> replayed;
      TrialJournal journal(probe, 11, "accum", &replayed);
      for (std::size_t i = 0; i < n; ++i) journal.Append(recs[i]);
      frame_ends.push_back(fs::file_size(probe));
      fs::remove(probe);
    }
  }

  const std::string cut = TempPath("truncate_cut");
  for (std::size_t len = header_end; len <= full.size(); ++len) {
    WriteFileBytes(cut, full.substr(0, len));
    const JournalContents contents = ReadJournal(cut);
    // Number of whole frames that fit in `len` bytes.
    std::size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= len) ++expect;
    ASSERT_EQ(contents.records.size(), expect) << "cut at byte " << len;
    for (std::size_t i = 0; i < expect; ++i) {
      ExpectRecordEq(recs[i], contents.records[i], i);
    }
    // Truncation is flagged exactly when the cut is not on a frame boundary.
    const bool at_boundary =
        len == header_end || std::find(frame_ends.begin(), frame_ends.end(),
                                       len) != frame_ends.end();
    EXPECT_EQ(contents.truncated, !at_boundary) << "cut at byte " << len;
  }
}

TEST(Journal, BitFlipFuzzNeverThrowsAndNeverServesCorruptRecords) {
  const std::string path = TempPath("bitflip_src");
  const std::vector<RunRecord> recs = SampleRecords();
  std::uint64_t header_end = 0;
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 99, "accum", &replayed);
    header_end = fs::file_size(path);
    for (const RunRecord& r : recs) journal.Append(r);
  }
  const std::string full = ReadFileBytes(path);
  const std::string flipped_path = TempPath("bitflip_cut");

  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    // Flip one random bit in the record region (header corruption is a
    // legitimate hard error — covered by NonJournalFileThrows).
    std::string bytes = full;
    const std::size_t byte = static_cast<std::size_t>(
        rng.UniformU64(header_end, bytes.size() - 1));
    bytes[byte] = static_cast<char>(
        bytes[byte] ^ static_cast<char>(1u << rng.UniformU64(0, 7)));
    WriteFileBytes(flipped_path, bytes);

    JournalContents contents;
    ASSERT_NO_THROW(contents = ReadJournal(flipped_path))
        << "flip in byte " << byte;
    // Whatever survives must be a prefix of the originals, bit-exact: the
    // CRC must catch the flip at the frame it lands in.
    ASSERT_LE(contents.records.size(), recs.size());
    for (std::size_t i = 0; i < contents.records.size(); ++i) {
      ExpectRecordEq(recs[i], contents.records[i], i);
    }
  }
}

TEST(Journal, TornTailIsDiscardedOnReopenAndAppendStaysReadable) {
  const std::string path = TempPath("torn");
  const std::vector<RunRecord> recs = SampleRecords();
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 5, "accum", &replayed);
    journal.Append(recs[0]);
    journal.Append(recs[1]);
  }
  // Simulate a kill -9 mid-append: half a frame of garbage at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x40garbage-torn-frame";
  }
  EXPECT_TRUE(ReadJournal(path).truncated);
  {
    std::vector<RunRecord> replayed;
    TrialJournal journal(path, 5, "accum", &replayed);
    ASSERT_EQ(replayed.size(), 2u);  // torn tail dropped, prefix preserved
    journal.Append(recs[2]);
    journal.Append(recs[3]);
  }
  const JournalContents contents = ReadJournal(path);
  EXPECT_FALSE(contents.truncated);
  ASSERT_EQ(contents.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ExpectRecordEq(recs[i], contents.records[i], i);
  }
}

// ---- Campaign resume ---------------------------------------------------------

/// Same steerable single-process app the campaign tests use: `iters` fadds
/// accumulating into memory, result written to fd 3.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

std::string RenderPlusCsv(const CampaignResult& result) {
  std::ostringstream csv;
  WriteRecordsCsv(result.records, csv);
  return result.Render("accum") + "\n" + csv.str();
}

/// Simulate a campaign killed after `completed` trials: a journal holding
/// exactly that prefix of the reference records.
void SeedJournal(const std::string& path, std::uint64_t seed,
                 const std::vector<RunRecord>& records, std::size_t completed) {
  std::vector<RunRecord> replayed;
  TrialJournal journal(path, seed, "accum", &replayed);
  for (std::size_t i = 0; i < completed; ++i) journal.Append(records[i]);
}

TEST(JournalResume, SerialResumeIsByteIdenticalAndRunsOnlyMissingSeeds) {
  CampaignConfig config;
  config.runs = 12;
  config.seed = 321;
  Campaign reference_campaign(AccumulatorApp(50), config);
  const CampaignResult reference = reference_campaign.Run();
  const std::string expected = RenderPlusCsv(reference);

  for (const std::size_t completed : {std::size_t{0}, std::size_t{5},
                                      std::size_t{12}}) {
    const std::string path =
        TempPath("serial_resume_" + std::to_string(completed));
    SeedJournal(path, config.seed, reference.records, completed);

    CampaignConfig resumed_config = config;
    resumed_config.journal_path = path;
    std::atomic<std::uint64_t> executed{0};
    resumed_config.trial_chaos = [&](std::uint64_t, unsigned) { ++executed; };

    Campaign resumed(AccumulatorApp(50), resumed_config);
    const CampaignResult result = resumed.Run();
    SCOPED_TRACE(completed);
    EXPECT_EQ(executed.load(), config.runs - completed)
        << "resume re-ran trials the journal already held";
    EXPECT_EQ(RenderPlusCsv(result), expected);
    // The journal now holds the full campaign for the *next* resume.
    EXPECT_EQ(ReadJournal(path).records.size(), config.runs);
  }
}

TEST(JournalResume, ParallelResumeIsByteIdenticalAcrossWorkerCounts) {
  CampaignConfig config;
  config.runs = 16;
  config.seed = 4242;
  Campaign reference_campaign(AccumulatorApp(50), config);
  const CampaignResult reference = reference_campaign.Run();
  const std::string expected = RenderPlusCsv(reference);

  for (const unsigned jobs : {1u, 4u}) {
    const std::string path = TempPath("par_resume_" + std::to_string(jobs));
    SeedJournal(path, config.seed, reference.records, 7);

    CampaignConfig resumed_config = config;
    resumed_config.journal_path = path;
    std::atomic<std::uint64_t> executed{0};
    resumed_config.trial_chaos = [&](std::uint64_t, unsigned) { ++executed; };

    ParallelCampaign resumed(AccumulatorApp(50), resumed_config, jobs);
    const CampaignResult result = resumed.Run();
    SCOPED_TRACE(jobs);
    EXPECT_EQ(executed.load(), config.runs - 7);
    EXPECT_EQ(RenderPlusCsv(result), expected);
    EXPECT_EQ(ReadJournal(path).records.size(), config.runs);
  }
}

TEST(JournalResume, TornJournalResumesFromIntactPrefix) {
  CampaignConfig config;
  config.runs = 8;
  config.seed = 77;
  Campaign reference_campaign(AccumulatorApp(50), config);
  const CampaignResult reference = reference_campaign.Run();

  const std::string path = TempPath("torn_resume");
  SeedJournal(path, config.seed, reference.records, 4);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x33half-written-frame";  // the kill -9 landed mid-Append
  }

  CampaignConfig resumed_config = config;
  resumed_config.journal_path = path;
  std::atomic<std::uint64_t> executed{0};
  resumed_config.trial_chaos = [&](std::uint64_t, unsigned) { ++executed; };
  Campaign resumed(AccumulatorApp(50), resumed_config);
  const CampaignResult result = resumed.Run();
  EXPECT_EQ(executed.load(), 4u);  // the 4 intact trials were replayed
  EXPECT_EQ(RenderPlusCsv(result), RenderPlusCsv(reference));
}

TEST(JournalResume, MismatchedCampaignSeedRefusesToResume) {
  CampaignConfig config;
  config.runs = 2;
  config.seed = 1;
  const std::string path = TempPath("mismatch_resume");
  SeedJournal(path, 999, {}, 0);  // journal from a different campaign

  config.journal_path = path;
  Campaign campaign(AccumulatorApp(30), config);
  EXPECT_THROW(campaign.Run(), ConfigError);
}

}  // namespace
}  // namespace chaser::campaign

// Unit tests for src/core: triggers, corruption primitives, the bundled
// injectors, the Chaser attach/count/fire/detach lifecycle, the trace log,
// and the inject_fault console.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "common/bits.h"
#include "common/error.h"
#include "core/chaser.h"
#include "core/console.h"
#include "core/corrupt.h"
#include "core/injectors/deterministic_injector.h"
#include "core/injectors/group_injector.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "guest/builder.h"

namespace chaser::core {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

// ---- Triggers -----------------------------------------------------------------

TEST(Trigger, DeterministicFiresExactlyOnce) {
  Rng rng(1);
  DeterministicTrigger t(5);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    EXPECT_EQ(t.ShouldFire(n, rng), n == 5) << n;
  }
  EXPECT_TRUE(t.Expired());
}

TEST(Trigger, DeterministicRejectsZero) {
  EXPECT_THROW(DeterministicTrigger(0), ConfigError);
}

TEST(Trigger, DeterministicCloneResetsState) {
  Rng rng(1);
  DeterministicTrigger t(2);
  EXPECT_TRUE(t.ShouldFire(2, rng));
  auto clone = t.Clone();
  EXPECT_FALSE(clone->Expired());
  EXPECT_TRUE(clone->ShouldFire(2, rng));
}

TEST(Trigger, ProbabilisticRespectsMax) {
  Rng rng(2);
  ProbabilisticTrigger t(1.0, 3);
  int fired = 0;
  for (int i = 1; i <= 10; ++i) fired += t.ShouldFire(i, rng) ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(t.Expired());
}

TEST(Trigger, ProbabilisticRoughRate) {
  Rng rng(3);
  ProbabilisticTrigger t(0.25, 1'000'000);
  int fired = 0;
  for (int i = 1; i <= 10000; ++i) fired += t.ShouldFire(i, rng) ? 1 : 0;
  EXPECT_NEAR(fired / 10000.0, 0.25, 0.03);
}

TEST(Trigger, ProbabilisticValidatesP) {
  EXPECT_THROW(ProbabilisticTrigger(-0.1), ConfigError);
  EXPECT_THROW(ProbabilisticTrigger(1.1), ConfigError);
}

TEST(Trigger, GroupFiresOnStride) {
  Rng rng(4);
  GroupTrigger t(10, 5, 3);  // fire at 10, 15, 20
  std::vector<std::uint64_t> fired;
  for (std::uint64_t n = 1; n <= 30; ++n) {
    if (t.ShouldFire(n, rng)) fired.push_back(n);
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{10, 15, 20}));
  EXPECT_TRUE(t.Expired());
}

TEST(Trigger, NeverTriggerNeverFiresNorExpires) {
  Rng rng(5);
  NeverTrigger t;
  for (int i = 1; i < 100; ++i) EXPECT_FALSE(t.ShouldFire(i, rng));
  EXPECT_FALSE(t.Expired());
}

TEST(Trigger, DescribeMentionsParameters) {
  EXPECT_NE(DeterministicTrigger(7).Describe().find("7"), std::string::npos);
  EXPECT_NE(ProbabilisticTrigger(0.5).Describe().find("0.5"), std::string::npos);
  EXPECT_NE(GroupTrigger(1, 2, 3).Describe().find("stride=2"), std::string::npos);
}

// ---- Corruption primitives ---------------------------------------------------------

guest::Program& TrivialProgram() {
  static guest::Program p = [] {
    ProgramBuilder b("t");
    const GuestAddr buf = b.Bss("buf", 64);
    (void)buf;
    b.Nop();
    b.Exit(0);
    return b.Finalize();
  }();
  return p;
}

TEST(Corrupt, IntRegisterFlipAndTaint) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(4) = 0xff;
  const InjectionRecord rec = CorruptIntRegister(vm, 4, 0x0f);
  EXPECT_EQ(vm.cpu().IntReg(4), 0xf0u);
  EXPECT_EQ(rec.old_value, 0xffu);
  EXPECT_EQ(rec.new_value, 0xf0u);
  EXPECT_EQ(vm.taint().GetValTaint(tcg::EnvInt(4)), 0x0fu);
}

TEST(Corrupt, FpRegisterFlipAndTaint) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  vm.cpu().SetFpReg(2, 1.0);
  const InjectionRecord rec = CorruptFpRegister(vm, 2, 1ull << 63);
  EXPECT_DOUBLE_EQ(vm.cpu().FpReg(2), -1.0);
  EXPECT_EQ(rec.target, InjectionRecord::Target::kFpRegister);
  EXPECT_EQ(vm.taint().GetValTaint(tcg::EnvFp(2)), 1ull << 63);
}

TEST(Corrupt, MemoryFlipAndTaint) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  const GuestAddr buf = TrivialProgram().DataAddr("buf");
  PhysAddr pa;
  vm.memory().Store(buf, 8, 0x1111, &pa);
  const InjectionRecord rec = CorruptMemory(vm, buf, 8, 0x00ff);
  EXPECT_EQ(rec.old_value, 0x1111u);
  EXPECT_EQ(*vm.memory().Load(buf, 8, &pa), 0x11eeu);
  EXPECT_EQ(vm.taint().GetMemTaintByte(pa), 0xffu);
}

TEST(Corrupt, MemoryUnmappedThrows) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  EXPECT_THROW(CorruptMemory(vm, 0xdead0000, 8, 1), ConfigError);
}

TEST(Corrupt, RegisterRangeChecked) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  EXPECT_THROW(CorruptIntRegister(vm, 16, 1), ConfigError);
  EXPECT_THROW(CorruptFpRegister(vm, 99, 1), ConfigError);
}

TEST(Corrupt, TouchKeepsValueButTaints) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(3) = 42;
  TouchIntRegister(vm, 3);
  EXPECT_EQ(vm.cpu().IntReg(3), 42u);
  EXPECT_EQ(vm.taint().GetValTaint(tcg::EnvInt(3)), ~std::uint64_t{0});
}

TEST(Corrupt, DescribeIsInformative) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(1) = 7;
  const InjectionRecord rec = CorruptIntRegister(vm, 1, 2);
  const std::string d = rec.Describe();
  EXPECT_NE(d.find("int-reg"), std::string::npos);
  EXPECT_NE(d.find("r1"), std::string::npos);
}

// ---- Chaser lifecycle ----------------------------------------------------------------

/// A program with a counted fadd loop: 20 fadds, result in f5.
guest::Program& FaddLoopProgram() {
  static guest::Program p = [] {
    ProgramBuilder b("faddloop");
    b.FmovI(F(5), 0.0);
    b.FmovI(F(1), 1.0);
    b.MovI(R(1), 0);
    auto loop = b.Here("loop");
    b.Fadd(F(5), F(5), F(1));
    b.AddI(R(1), R(1), 1);
    b.CmpI(R(1), 20);
    b.Br(Cond::kLt, loop);
    b.Exit(0);
    return b.Finalize();
  }();
  return p;
}

TEST(ChaserCore, CountsTargetedExecutions) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<NeverTrigger>();
  cmd.injector = ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_TRUE(chaser.attached());
  EXPECT_EQ(chaser.targeted_executions(), 20u);
  EXPECT_TRUE(chaser.injections().empty());
}

TEST(ChaserCore, DoesNotAttachToOtherPrograms) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "some_other_app";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<NeverTrigger>();
  cmd.injector = ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_FALSE(chaser.attached());
  EXPECT_EQ(chaser.targeted_executions(), 0u);
}

TEST(ChaserCore, DeterministicNthExecutionFires) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<DeterministicTrigger>(7);
  cmd.injector = DeterministicInjector::Create(0, 1ull << 52);  // bump exponent
  cmd.seed = 3;
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  ASSERT_EQ(chaser.injections().size(), 1u);
  EXPECT_EQ(chaser.injections()[0].exec_count, 7u);
  EXPECT_EQ(chaser.injections()[0].instr_class, guest::InstrClass::kFadd);
  // f5 accumulated a corrupted addend: != 20.0.
  EXPECT_NE(vm.cpu().FpReg(5), 20.0);
}

TEST(ChaserCore, DetachAfterExpiryStopsCounting) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<DeterministicTrigger>(3);
  cmd.injector = ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  // fi_clean_cb detached at execution 3; the remaining 17 fadds uncounted.
  EXPECT_EQ(chaser.targeted_executions(), 3u);
  EXPECT_EQ(chaser.injections().size(), 1u);
}

TEST(ChaserCore, RearmAcrossRunsResetsState) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<DeterministicTrigger>(2);
  cmd.injector = ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_EQ(chaser.injections().size(), 1u);
  // Second run: fresh clone of the trigger fires again.
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_EQ(chaser.injections().size(), 1u);
}

TEST(ChaserCore, TraceOnlyCommandTracesWithoutInstrumenting) {
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  // no trigger / injector -> trace-only
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_TRUE(chaser.attached());
  EXPECT_TRUE(vm.taint().enabled());
  EXPECT_EQ(chaser.targeted_executions(), 0u);
}

TEST(ChaserCore, TraceLogRecordsTaintedMemoryTraffic) {
  // Program: corrupt a value, store it, load it back -> 1 write + 1 read.
  static guest::Program p = [] {
    ProgramBuilder b("memtrace");
    const GuestAddr buf = b.Bss("buf", 8);
    b.MovI(R(1), static_cast<std::int64_t>(buf));
    b.MovI(R(2), 5);
    b.Add(R(2), R(2), R(2));  // targeted: corrupt r2 here
    b.St(R(1), 0, R(2));
    b.Ld(R(3), R(1), 0);
    b.Exit(0);
    return b.Finalize();
  }();
  vm::Vm vm;
  Chaser chaser(vm);
  InjectionCommand cmd;
  cmd.target_program = "memtrace";
  cmd.target_classes = {guest::InstrClass::kAdd};
  cmd.trigger = std::make_shared<DeterministicTrigger>(1);
  cmd.injector = DeterministicInjector::Create(0, 0xff);
  chaser.Arm(cmd);
  vm.StartProcess(p);
  vm.RunToCompletion();
  EXPECT_EQ(chaser.trace_log().tainted_writes(), 1u);
  EXPECT_EQ(chaser.trace_log().tainted_reads(), 1u);
  EXPECT_EQ(chaser.trace_log().injections(), 1u);
  // Events carry the paper's payload.
  bool saw_write = false;
  for (const TraceEvent& e : chaser.trace_log().events()) {
    if (e.kind == TraceEventKind::kTaintedWrite) {
      saw_write = true;
      EXPECT_EQ(e.vaddr, p.DataAddr("buf"));
      EXPECT_NE(e.taint, 0u);
    }
  }
  EXPECT_TRUE(saw_write);
}

TEST(ChaserCore, TaintTimelineSampled) {
  Chaser::Options opts;
  opts.taint_sample_interval = 10;
  vm::Vm vm;
  Chaser chaser(vm, opts);
  InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<DeterministicTrigger>(1);
  cmd.injector = ProbabilisticInjector::Create(2);
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_GT(chaser.taint_timeline().size(), 2u);
  for (std::size_t i = 1; i < chaser.taint_timeline().size(); ++i) {
    EXPECT_GT(chaser.taint_timeline()[i].instret,
              chaser.taint_timeline()[i - 1].instret);
  }
}

// ---- Bundled injectors ------------------------------------------------------------

TEST(Injectors, ProbabilisticCorruptsASourceOperand) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(2) = 100;
  vm.cpu().IntReg(3) = 200;
  const guest::Instruction add{.op = guest::Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3};
  Rng rng(9);
  std::vector<InjectionRecord> records;
  InjectionContext ctx{vm, 0, add, 1, 0, rng, records};
  ProbabilisticInjector(1).Inject(ctx);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].reg == 2 || records[0].reg == 3);
  EXPECT_EQ(PopCount(records[0].flip_mask), 1u);
}

TEST(Injectors, ProbabilisticBitWidthRestriction) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(2) = 0;
  const guest::Instruction add{.op = guest::Opcode::kAdd, .rd = 1, .rs1 = 2,
                               .use_imm = true, .imm = 1};
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    std::vector<InjectionRecord> records;
    InjectionContext ctx{vm, 0, add, 1, 0, rng, records};
    ProbabilisticInjector(2, 8).Inject(ctx);
    EXPECT_EQ(records[0].flip_mask & ~0xffull, 0u);
  }
}

TEST(Injectors, DeterministicPicksExactOperandAndMask) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  vm.cpu().IntReg(2) = 0;
  vm.cpu().IntReg(3) = 0;
  const guest::Instruction add{.op = guest::Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3};
  Rng rng(11);
  std::vector<InjectionRecord> records;
  InjectionContext ctx{vm, 0, add, 1, 0, rng, records};
  DeterministicInjector(1, 0xf0).Inject(ctx);  // operand #1 = rs2 = r3
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].reg, 3u);
  EXPECT_EQ(records[0].flip_mask, 0xf0u);
  EXPECT_EQ(vm.cpu().IntReg(3), 0xf0u);
}

TEST(Injectors, DeterministicMemoryMode) {
  vm::Vm vm;
  vm.taint().set_enabled(true);
  vm.StartProcess(TrivialProgram());
  const GuestAddr buf = TrivialProgram().DataAddr("buf");
  const guest::Instruction nop{.op = guest::Opcode::kNop};
  Rng rng(12);
  std::vector<InjectionRecord> records;
  InjectionContext ctx{vm, 0, nop, 1, 0, rng, records};
  DeterministicInjector(buf, 4, 0xff).Inject(ctx);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].target, InjectionRecord::Target::kMemory);
  PhysAddr pa;
  EXPECT_EQ(*vm.memory().Load(buf, 4, &pa) & 0xff, 0xffu);
}

TEST(Injectors, DeterministicRejectsBadConfig) {
  EXPECT_THROW(DeterministicInjector(0, 0), ConfigError);
  EXPECT_THROW(DeterministicInjector(GuestAddr{0}, 0, 1), ConfigError);
  EXPECT_THROW(DeterministicInjector(GuestAddr{0}, 9, 1), ConfigError);
}

TEST(Injectors, GroupCorruptsAllFpSources) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  vm.cpu().SetFpReg(1, 1.0);
  vm.cpu().SetFpReg(2, 2.0);
  const guest::Instruction fadd{.op = guest::Opcode::kFadd, .rd = 0, .rs1 = 1, .rs2 = 2};
  Rng rng(13);
  std::vector<InjectionRecord> records;
  InjectionContext ctx{vm, 0, fadd, 1, 0, rng, records};
  GroupInjector(1).Inject(ctx);
  EXPECT_EQ(records.size(), 2u);
}

TEST(Injectors, GroupFallsBackToIntSources) {
  vm::Vm vm;
  vm.StartProcess(TrivialProgram());
  const guest::Instruction add{.op = guest::Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3};
  Rng rng(14);
  std::vector<InjectionRecord> records;
  InjectionContext ctx{vm, 0, add, 1, 0, rng, records};
  GroupInjector(1).Inject(ctx);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].target, InjectionRecord::Target::kIntRegister);
}

// ---- Console / plugin registry ---------------------------------------------------------

TEST(Console, ParseDeterministicCommand) {
  const InjectionCommand cmd = ParseInjectFault(
      {"-p", "matvec", "-i", "mov", "-m", "det", "-c", "1000", "-b", "2", "-s", "9"});
  EXPECT_EQ(cmd.target_program, "matvec");
  EXPECT_EQ(cmd.target_classes.count(guest::InstrClass::kMov), 1u);
  EXPECT_EQ(cmd.seed, 9u);
  EXPECT_FALSE(cmd.TraceOnly());
  EXPECT_NE(cmd.trigger->Describe().find("1000"), std::string::npos);
  EXPECT_TRUE(cmd.trace);
}

TEST(Console, ParseMultipleClassesAndProbModel) {
  const InjectionCommand cmd = ParseInjectFault(
      {"-p", "kmeans", "-i", "fadd,fmul", "-m", "prob", "-P", "0.01", "-max", "4"});
  EXPECT_EQ(cmd.target_classes.size(), 2u);
  EXPECT_NE(cmd.trigger->Describe().find("0.01"), std::string::npos);
}

TEST(Console, ParseGroupModelAndNoTrace) {
  const InjectionCommand cmd = ParseInjectFault(
      {"-p", "lud", "-i", "fmul", "-m", "group", "-c", "100", "-stride", "50",
       "-max", "3", "-notrace"});
  EXPECT_FALSE(cmd.trace);
  EXPECT_NE(cmd.trigger->Describe().find("stride=50"), std::string::npos);
}

TEST(Console, ParseExactMask) {
  const InjectionCommand cmd = ParseInjectFault(
      {"-p", "a", "-i", "fadd", "-m", "det", "-c", "5", "-o", "1", "-mask", "0x10"});
  EXPECT_EQ(cmd.injector->name(), "deterministic");
}

TEST(Console, ParseErrors) {
  EXPECT_THROW(ParseInjectFault({"-i", "mov"}), CommandError);             // no -p
  EXPECT_THROW(ParseInjectFault({"-p", "x"}), CommandError);               // no -i
  EXPECT_THROW(ParseInjectFault({"-p", "x", "-i", "bogus"}), CommandError);
  EXPECT_THROW(ParseInjectFault({"-p", "x", "-i", "mov", "-m", "huh"}), CommandError);
  EXPECT_THROW(ParseInjectFault({"-p", "x", "-i", "mov", "-c"}), CommandError);
  EXPECT_THROW(ParseInjectFault({"-p", "x", "-i", "mov", "-zz", "1"}), CommandError);
}

TEST(Console, RegistryDispatch) {
  PluginRegistry registry;
  InjectionCommand received;
  bool got = false;
  registry.LoadPlugin("fi", [&] {
    return MakeFaultInjectionPlugin([&](InjectionCommand cmd) {
      received = std::move(cmd);
      got = true;
    });
  });
  registry.Dispatch("inject_fault -p clamr -i fadd -m det -c 42");
  ASSERT_TRUE(got);
  EXPECT_EQ(received.target_program, "clamr");
}

TEST(Console, RegistryRejectsUnknownAndDuplicate) {
  PluginRegistry registry;
  registry.LoadPlugin("fi", [] {
    return MakeFaultInjectionPlugin([](InjectionCommand) {});
  });
  EXPECT_THROW(registry.Dispatch("frobnicate -x"), CommandError);
  EXPECT_THROW(registry.Dispatch(""), CommandError);
  EXPECT_THROW(registry.LoadPlugin("fi2",
                                   [] {
                                     return MakeFaultInjectionPlugin(
                                         [](InjectionCommand) {});
                                   }),
               ConfigError);
}

// ---- Trace log --------------------------------------------------------------------------

TEST(Trace, CapacityCapWithExactCounts) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Add({.kind = TraceEventKind::kTaintedRead});
  }
  EXPECT_EQ(log.tainted_reads(), 10u);
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(Trace, ClearResets) {
  TraceLog log;
  log.Add({.kind = TraceEventKind::kInjection});
  log.Clear();
  EXPECT_EQ(log.injections(), 0u);
  EXPECT_TRUE(log.events().empty());
}

TEST(Trace, ToStringContainsEipRendering) {
  TraceLog log;
  log.Add({.kind = TraceEventKind::kTaintedRead, .pc = 2, .vaddr = 0x10,
           .taint = 0xff});
  const std::string s = log.ToString();
  EXPECT_NE(s.find("T-READ"), std::string::npos);
  EXPECT_NE(s.find("0x0000000000400008"), std::string::npos);  // PcToAddr(2)
}

}  // namespace
}  // namespace chaser::core

// Sweep tests: the disassembler renders every opcode, the translator lowers
// every opcode into an executable TB, and the console's memory-corruption
// flags work end to end.
#include <gtest/gtest.h>

#include <deque>

#include "common/error.h"
#include "common/strings.h"
#include "core/chaser.h"
#include "core/console.h"
#include "guest/builder.h"
#include "guest/disasm.h"
#include "guest/operands.h"
#include "tcg/translator.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using guest::Instruction;
using guest::Opcode;

constexpr Opcode kAllOpcodes[] = {
    Opcode::kNop,    Opcode::kHalt,  Opcode::kMovRR, Opcode::kMovRI,
    Opcode::kLd,     Opcode::kLdS,   Opcode::kSt,    Opcode::kPush,
    Opcode::kPop,    Opcode::kAdd,   Opcode::kSub,   Opcode::kMul,
    Opcode::kDivS,   Opcode::kDivU,  Opcode::kRemS,  Opcode::kRemU,
    Opcode::kAnd,    Opcode::kOr,    Opcode::kXor,   Opcode::kShl,
    Opcode::kShr,    Opcode::kSar,   Opcode::kNot,   Opcode::kNeg,
    Opcode::kCmp,    Opcode::kJmp,   Opcode::kBr,    Opcode::kCall,
    Opcode::kCallR,  Opcode::kRet,   Opcode::kFmovRR, Opcode::kFmovI,
    Opcode::kFld,    Opcode::kFst,   Opcode::kFadd,  Opcode::kFsub,
    Opcode::kFmul,   Opcode::kFdiv,  Opcode::kFneg,  Opcode::kFabs,
    Opcode::kFsqrt,  Opcode::kFmin,  Opcode::kFmax,  Opcode::kFcmp,
    Opcode::kCvtIF,  Opcode::kCvtFI, Opcode::kFbits, Opcode::kBitsF,
    Opcode::kSyscall,
};

class OpcodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeSweep, DisassemblesToNonEmptyDistinctText) {
  const Opcode op = kAllOpcodes[GetParam()];
  const Instruction in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3, .imm = 4};
  const std::string text = guest::Disassemble(in);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.find('?'), std::string::npos) << text;
  // The mnemonic leads the line (kBr renders as "b<cond>", e.g. "blt").
  if (op == Opcode::kBr) {
    EXPECT_EQ(text[0], 'b');
  } else {
    EXPECT_EQ(text.find(guest::OpcodeName(op)), 0u);
  }
}

TEST_P(OpcodeSweep, HasClassAndOperandMetadata) {
  const Opcode op = kAllOpcodes[GetParam()];
  const Instruction in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3};
  // ClassOf is total and its name parses back.
  const guest::InstrClass cls = guest::ClassOf(op);
  guest::InstrClass parsed;
  ASSERT_TRUE(guest::ParseInstrClass(guest::ClassName(cls), &parsed));
  EXPECT_EQ(parsed, cls);
  // Operand table never reports out-of-range registers.
  const guest::OperandInfo ops = guest::OperandsOf(in);
  for (const std::uint8_t r : ops.int_sources) EXPECT_LT(r, guest::kNumIntRegs);
  for (const std::uint8_t f : ops.fp_sources) EXPECT_LT(f, guest::kNumFpRegs);
}

TEST_P(OpcodeSweep, TranslatesIntoWellFormedTb) {
  const Opcode op = kAllOpcodes[GetParam()];
  guest::Program p;
  p.name = "sweep";
  // One instruction with safe fields, padded so fall-through stays in text.
  Instruction in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3};
  in.imm = 1;  // branch/call target: instruction #1 (the pad)
  p.text.push_back(in);
  p.text.push_back({.op = Opcode::kNop});
  const tcg::TranslationBlock tb = tcg::Translator().Translate(p, 0);
  ASSERT_FALSE(tb.ops.empty());
  EXPECT_EQ(tb.ops.front().opc, tcg::TcgOpc::kInsnStart);
  const tcg::TcgOpc last = tb.ops.back().opc;
  EXPECT_TRUE(last == tcg::TcgOpc::kGotoTb || last == tcg::TcgOpc::kBrCond ||
              last == tcg::TcgOpc::kExitTb)
      << "TB must end in a terminator";
  // Every referenced temp is within the declared count.
  for (const tcg::TcgOp& o : tb.ops) {
    for (const tcg::ValId v : {o.dst, o.src1, o.src2}) {
      if (tcg::IsTemp(v)) {
        EXPECT_LT(static_cast<unsigned>(v - tcg::kTempBase), tb.num_temps);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeSweep,
                         ::testing::Range(0, static_cast<int>(std::size(kAllOpcodes))));

// ---- Console memory corruption end to end -----------------------------------------

TEST(ConsoleMemory, AddrFlagCorruptsMemoryCell) {
  guest::ProgramBuilder b("memapp");
  const std::vector<std::uint64_t> init{0xAAAA};
  const GuestAddr cell = b.DataU64("cell", init);
  b.FmovI(guest::F(0), 1.0);
  b.Fadd(guest::F(0), guest::F(0), guest::F(0));  // the targeted instruction
  b.MovI(guest::R(9), static_cast<std::int64_t>(cell));
  b.Ld(guest::R(8), guest::R(9), 0);
  b.Exit(0);
  const guest::Program p = b.Finalize();

  const core::InjectionCommand cmd = core::ParseInjectFault(
      {"-p", "memapp", "-i", "fadd", "-m", "det", "-c", "1", "-addr",
       Hex64(cell), "-size", "8", "-mask", "0xff"});
  vm::Vm vm;
  core::Chaser chaser(vm);
  chaser.Arm(cmd);
  vm.StartProcess(p);
  vm.RunToCompletion();
  ASSERT_EQ(chaser.injections().size(), 1u);
  EXPECT_EQ(chaser.injections()[0].target, core::InjectionRecord::Target::kMemory);
  EXPECT_EQ(vm.cpu().IntReg(8), 0xAAAAull ^ 0xff);
}

TEST(ConsoleMemory, AddrWithoutMaskRejected) {
  EXPECT_THROW(core::ParseInjectFault({"-p", "x", "-i", "fadd", "-m", "det",
                                       "-addr", "0x1000"}),
               CommandError);
}

TEST(ConsoleMemory, BadSizeRejected) {
  EXPECT_THROW(core::ParseInjectFault({"-p", "x", "-i", "fadd", "-m", "det",
                                       "-addr", "0x1000", "-size", "16",
                                       "-mask", "1"}),
               ConfigError);  // DeterministicInjector validates size 1..8
}

}  // namespace
}  // namespace chaser

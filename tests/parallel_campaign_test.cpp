// Tests for src/campaign/parallel: the worker-pool campaign driver must be
// bit-identical to the serial Campaign for the same seed at any worker
// count, and consecutive trials on one engine must be fully isolated (no
// hub/stat bleed between trials).
#include <gtest/gtest.h>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "common/error.h"
#include "guest/builder.h"

namespace chaser::campaign {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

/// Same steerable single-process app the serial campaign tests use: `iters`
/// fadds accumulating into memory, result written to fd 3.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

void ExpectRecordEq(const RunRecord& a, const RunRecord& b, std::size_t i) {
  EXPECT_EQ(a.outcome, b.outcome) << "record " << i;
  EXPECT_EQ(a.kind, b.kind) << "record " << i;
  EXPECT_EQ(a.signal, b.signal) << "record " << i;
  EXPECT_EQ(a.inject_rank, b.inject_rank) << "record " << i;
  EXPECT_EQ(a.failure_rank, b.failure_rank) << "record " << i;
  EXPECT_EQ(a.deadlock, b.deadlock) << "record " << i;
  EXPECT_EQ(a.propagated_cross_rank, b.propagated_cross_rank) << "record " << i;
  EXPECT_EQ(a.propagated_cross_node, b.propagated_cross_node) << "record " << i;
  EXPECT_EQ(a.injections, b.injections) << "record " << i;
  EXPECT_EQ(a.tainted_reads, b.tainted_reads) << "record " << i;
  EXPECT_EQ(a.tainted_writes, b.tainted_writes) << "record " << i;
  EXPECT_EQ(a.peak_tainted_bytes, b.peak_tainted_bytes) << "record " << i;
  EXPECT_EQ(a.tainted_output_bytes, b.tainted_output_bytes) << "record " << i;
  EXPECT_EQ(a.trigger_nth, b.trigger_nth) << "record " << i;
  EXPECT_EQ(a.flip_bits, b.flip_bits) << "record " << i;
  EXPECT_EQ(a.run_seed, b.run_seed) << "record " << i;
  EXPECT_EQ(a.instructions, b.instructions) << "record " << i;
}

void ExpectResultEq(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.os_exception, b.os_exception);
  EXPECT_EQ(a.mpi_error, b.mpi_error);
  EXPECT_EQ(a.assert_detected, b.assert_detected);
  EXPECT_EQ(a.other_rank_failed, b.other_rank_failed);
  EXPECT_EQ(a.propagated_runs, b.propagated_runs);
  EXPECT_EQ(a.propagated_terminated, b.propagated_terminated);
  EXPECT_EQ(a.propagated_os_exception, b.propagated_os_exception);
  EXPECT_EQ(a.propagated_mpi_error, b.propagated_mpi_error);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ExpectRecordEq(a.records[i], b.records[i], i);
  }
}

TEST(ParallelCampaign, BitIdenticalToSerialAtAnyWorkerCount) {
  CampaignConfig config;
  config.runs = 48;
  config.seed = 2026;
  Campaign serial(AccumulatorApp(50), config);
  const CampaignResult reference = serial.Run();

  for (const unsigned jobs : {1u, 2u, 8u}) {
    ParallelCampaign parallel(AccumulatorApp(50), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

TEST(ParallelCampaign, BitIdenticalToSerialForMpiApp) {
  // Matvec exercises the whole stack per trial: MPI collectives, the taint
  // hub, cross-rank propagation, and every termination class.
  CampaignConfig config;
  config.runs = 24;
  config.seed = 123;
  config.inject_ranks = {0};
  Campaign serial(apps::BuildMatvec({}), config);
  const CampaignResult reference = serial.Run();

  for (const unsigned jobs : {2u, 8u}) {
    ParallelCampaign parallel(apps::BuildMatvec({}), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

TEST(ParallelCampaign, SeedDerivationMatchesSerialForkSequence) {
  Rng rng(777);
  const std::vector<std::uint64_t> expected{rng.Fork(), rng.Fork(), rng.Fork()};
  EXPECT_EQ(Campaign::DeriveTrialSeeds(777, 3), expected);
}

TEST(ParallelCampaign, JobsZeroPicksAtLeastOneWorker) {
  ParallelCampaign c(AccumulatorApp(30), {.runs = 0}, 0);
  EXPECT_GE(c.jobs(), 1u);
}

TEST(ParallelCampaign, InvalidInjectRankThrowsInConstructor) {
  CampaignConfig config;
  config.inject_ranks = {9};
  EXPECT_THROW(ParallelCampaign(AccumulatorApp(30), config, 2), ConfigError);
}

TEST(ParallelCampaign, GoldenFailurePropagatesOutOfRun) {
  // No targeted instructions -> the golden phase must throw, even though
  // Run() would otherwise fan out to workers.
  guest::ProgramBuilder b("nofp");
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "nofp";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  ParallelCampaign c(std::move(spec), {.runs = 4}, 2);
  EXPECT_THROW(c.Run(), ConfigError);
}

TEST(ParallelCampaign, KeepRecordsOffStillCountsDeterministically) {
  CampaignConfig config;
  config.runs = 16;
  config.seed = 31;
  config.keep_records = false;
  Campaign serial(AccumulatorApp(40), config);
  const CampaignResult reference = serial.Run();
  ParallelCampaign parallel(AccumulatorApp(40), config, 4);
  const CampaignResult result = parallel.Run();
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(reference.benign, result.benign);
  EXPECT_EQ(reference.terminated, result.terminated);
  EXPECT_EQ(reference.sdc, result.sdc);
}

// ---- Trial isolation ----------------------------------------------------------

TEST(TrialIsolation, RunOnceUnaffectedByInterveningTrials) {
  // A trial's record — including the hub-derived propagation flags and the
  // taint counters — must depend only on its seed, not on what earlier
  // trials left behind in the hub, the trace logs, or the VMs.
  CampaignConfig config;
  config.runs = 0;
  config.seed = 9;
  config.inject_ranks = {0};
  Campaign c(apps::BuildMatvec({}), config);
  c.RunGolden();

  const RunRecord first = c.RunOnce(4242);
  for (std::uint64_t s = 100; s < 112; ++s) c.RunOnce(s);  // pollute
  const RunRecord replay = c.RunOnce(4242);
  ExpectRecordEq(first, replay, 0);
}

TEST(TrialIsolation, NoStatBleedAcrossConsecutiveTrials) {
  // Run trials until one shows cross-rank propagation, then check that the
  // very next trial does not inherit the hub transfers/stats that produced
  // the flag (a benign trial after a propagating one must report clean).
  CampaignConfig config;
  config.runs = 0;
  config.seed = 55;
  config.inject_ranks = {1};
  Campaign c(apps::BuildClamr(
                 {.global_rows = 12, .cols = 12, .steps = 8, .ranks = 4}),
             config);
  c.RunGolden();

  std::uint64_t propagating_seed = 0;
  for (std::uint64_t s = 1; s <= 30 && propagating_seed == 0; ++s) {
    if (c.RunOnce(s).propagated_cross_rank) propagating_seed = s;
  }
  ASSERT_NE(propagating_seed, 0u) << "no propagating trial in 30 seeds";

  // Snapshot the hub stats the propagating trial produced, pollute the
  // engine with other trials, replay: identical stats prove nothing
  // accumulated across the intervening jobs.
  (void)c.RunOnce(propagating_seed);
  const hub::HubStats snapshot = c.chaser().hub().stats();
  const std::size_t transfers = c.chaser().hub().transfers().size();
  EXPECT_GT(snapshot.publishes, 0u);
  for (std::uint64_t s = 200; s < 210; ++s) c.RunOnce(s);  // pollute
  (void)c.RunOnce(propagating_seed);
  EXPECT_EQ(c.chaser().hub().stats().publishes, snapshot.publishes);
  EXPECT_EQ(c.chaser().hub().stats().polls, snapshot.polls);
  EXPECT_EQ(c.chaser().hub().stats().hits, snapshot.hits);
  EXPECT_EQ(c.chaser().hub().stats().applied_bytes, snapshot.applied_bytes);
  EXPECT_EQ(c.chaser().hub().transfers().size(), transfers);
}

}  // namespace
}  // namespace chaser::campaign

// Tests for src/campaign/parallel: the worker-pool campaign driver must be
// bit-identical to the serial Campaign for the same seed at any worker
// count, and consecutive trials on one engine must be fully isolated (no
// hub/stat bleed between trials).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "common/error.h"
#include "guest/builder.h"

namespace chaser::campaign {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

/// Same steerable single-process app the serial campaign tests use: `iters`
/// fadds accumulating into memory, result written to fd 3.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

void ExpectRecordEq(const RunRecord& a, const RunRecord& b, std::size_t i) {
  EXPECT_EQ(a.outcome, b.outcome) << "record " << i;
  EXPECT_EQ(a.kind, b.kind) << "record " << i;
  EXPECT_EQ(a.signal, b.signal) << "record " << i;
  EXPECT_EQ(a.inject_rank, b.inject_rank) << "record " << i;
  EXPECT_EQ(a.failure_rank, b.failure_rank) << "record " << i;
  EXPECT_EQ(a.deadlock, b.deadlock) << "record " << i;
  EXPECT_EQ(a.propagated_cross_rank, b.propagated_cross_rank) << "record " << i;
  EXPECT_EQ(a.propagated_cross_node, b.propagated_cross_node) << "record " << i;
  EXPECT_EQ(a.injections, b.injections) << "record " << i;
  EXPECT_EQ(a.tainted_reads, b.tainted_reads) << "record " << i;
  EXPECT_EQ(a.tainted_writes, b.tainted_writes) << "record " << i;
  EXPECT_EQ(a.peak_tainted_bytes, b.peak_tainted_bytes) << "record " << i;
  EXPECT_EQ(a.tainted_output_bytes, b.tainted_output_bytes) << "record " << i;
  EXPECT_EQ(a.trigger_nth, b.trigger_nth) << "record " << i;
  EXPECT_EQ(a.flip_bits, b.flip_bits) << "record " << i;
  EXPECT_EQ(a.run_seed, b.run_seed) << "record " << i;
  EXPECT_EQ(a.instructions, b.instructions) << "record " << i;
  EXPECT_EQ(a.trace_dropped, b.trace_dropped) << "record " << i;
  EXPECT_EQ(a.taint_lost, b.taint_lost) << "record " << i;
  EXPECT_EQ(a.retries, b.retries) << "record " << i;
  EXPECT_EQ(a.infra_error, b.infra_error) << "record " << i;
}

void ExpectResultEq(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.os_exception, b.os_exception);
  EXPECT_EQ(a.mpi_error, b.mpi_error);
  EXPECT_EQ(a.assert_detected, b.assert_detected);
  EXPECT_EQ(a.other_rank_failed, b.other_rank_failed);
  EXPECT_EQ(a.propagated_runs, b.propagated_runs);
  EXPECT_EQ(a.propagated_terminated, b.propagated_terminated);
  EXPECT_EQ(a.propagated_os_exception, b.propagated_os_exception);
  EXPECT_EQ(a.propagated_mpi_error, b.propagated_mpi_error);
  EXPECT_EQ(a.infra, b.infra);
  EXPECT_EQ(a.taint_lost, b.taint_lost);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ExpectRecordEq(a.records[i], b.records[i], i);
  }
}

TEST(ParallelCampaign, BitIdenticalToSerialAtAnyWorkerCount) {
  CampaignConfig config;
  config.runs = 48;
  config.seed = 2026;
  Campaign serial(AccumulatorApp(50), config);
  const CampaignResult reference = serial.Run();

  for (const unsigned jobs : {1u, 2u, 8u}) {
    ParallelCampaign parallel(AccumulatorApp(50), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

TEST(ParallelCampaign, BitIdenticalToSerialForMpiApp) {
  // Matvec exercises the whole stack per trial: MPI collectives, the taint
  // hub, cross-rank propagation, and every termination class.
  CampaignConfig config;
  config.runs = 24;
  config.seed = 123;
  config.inject_ranks = {0};
  Campaign serial(apps::BuildMatvec({}), config);
  const CampaignResult reference = serial.Run();

  for (const unsigned jobs : {2u, 8u}) {
    ParallelCampaign parallel(apps::BuildMatvec({}), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

TEST(ParallelCampaign, SeedDerivationMatchesSerialForkSequence) {
  Rng rng(777);
  const std::vector<std::uint64_t> expected{rng.Fork(), rng.Fork(), rng.Fork()};
  EXPECT_EQ(Campaign::DeriveTrialSeeds(777, 3), expected);
}

TEST(ParallelCampaign, JobsZeroPicksAtLeastOneWorker) {
  ParallelCampaign c(AccumulatorApp(30), {.runs = 0}, 0);
  EXPECT_GE(c.jobs(), 1u);
}

TEST(ParallelCampaign, InvalidInjectRankThrowsInConstructor) {
  CampaignConfig config;
  config.inject_ranks = {9};
  EXPECT_THROW(ParallelCampaign(AccumulatorApp(30), config, 2), ConfigError);
}

TEST(ParallelCampaign, GoldenFailurePropagatesOutOfRun) {
  // No targeted instructions -> the golden phase must throw, even though
  // Run() would otherwise fan out to workers.
  guest::ProgramBuilder b("nofp");
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "nofp";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  ParallelCampaign c(std::move(spec), {.runs = 4}, 2);
  EXPECT_THROW(c.Run(), ConfigError);
}

TEST(ParallelCampaign, KeepRecordsOffStillCountsDeterministically) {
  CampaignConfig config;
  config.runs = 16;
  config.seed = 31;
  config.keep_records = false;
  Campaign serial(AccumulatorApp(40), config);
  const CampaignResult reference = serial.Run();
  ParallelCampaign parallel(AccumulatorApp(40), config, 4);
  const CampaignResult result = parallel.Run();
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(reference.benign, result.benign);
  EXPECT_EQ(reference.terminated, result.terminated);
  EXPECT_EQ(reference.sdc, result.sdc);
}

// ---- Contained trial failures -------------------------------------------------

TEST(TrialContainment, ThrowingTrialRetriesThenSucceeds) {
  // A chaos hook that throws on the first attempt of one specific trial:
  // with one retry granted the campaign must complete with a normal record
  // for that seed, marked as having cost one retry.
  CampaignConfig config;
  config.runs = 8;
  config.seed = 61;
  config.trial_retries = 1;
  config.retry_backoff_ms = 0;
  const std::uint64_t victim = Campaign::DeriveTrialSeeds(config.seed, 8)[3];
  config.trial_chaos = [victim](std::uint64_t run_seed, unsigned attempt) {
    if (run_seed == victim && attempt == 0) {
      throw ConfigError("chaos: simulated harness failure");
    }
  };
  Campaign campaign(AccumulatorApp(40), config);
  const CampaignResult result = campaign.Run();
  EXPECT_EQ(result.infra, 0u);
  ASSERT_EQ(result.records.size(), 8u);
  EXPECT_EQ(result.records[3].run_seed, victim);
  EXPECT_EQ(result.records[3].retries, 1u);
  EXPECT_NE(result.records[3].outcome, Outcome::kInfra);

  // Apart from the retry count, the retried record must match a clean run:
  // the rebuilt engine re-derives everything from the trial seed.
  CampaignConfig clean_config = config;
  clean_config.trial_chaos = nullptr;
  Campaign clean(AccumulatorApp(40), clean_config);
  const CampaignResult reference = clean.Run();
  RunRecord retried = result.records[3];
  retried.retries = reference.records[3].retries;
  ExpectRecordEq(reference.records[3], retried, 3);
}

TEST(TrialContainment, ExhaustedRetriesQuarantineInsteadOfAborting) {
  CampaignConfig config;
  config.runs = 6;
  config.seed = 62;
  config.trial_retries = 2;
  config.retry_backoff_ms = 0;
  const std::uint64_t victim = Campaign::DeriveTrialSeeds(config.seed, 6)[2];
  std::atomic<unsigned> attempts{0};
  config.trial_chaos = [&](std::uint64_t run_seed, unsigned) {
    if (run_seed == victim) {
      ++attempts;
      throw ConfigError("chaos: persistent harness failure");
    }
  };
  Campaign campaign(AccumulatorApp(40), config);
  const CampaignResult result = campaign.Run();  // must NOT throw
  EXPECT_EQ(attempts.load(), 3u);  // 1 initial + 2 retries
  EXPECT_EQ(result.infra, 1u);
  ASSERT_EQ(result.records.size(), 6u);
  const RunRecord& quarantined = result.records[2];
  EXPECT_EQ(quarantined.outcome, Outcome::kInfra);
  EXPECT_EQ(quarantined.run_seed, victim);
  EXPECT_EQ(quarantined.retries, 2u);
  EXPECT_NE(quarantined.infra_error.find("persistent harness failure"),
            std::string::npos);
  // The other five trials are real outcomes, unaffected by the quarantine.
  EXPECT_EQ(result.benign + result.terminated + result.sdc, 5u);
  // And the report names the quarantine bucket.
  EXPECT_NE(result.Render("accum").find("infra"), std::string::npos);
}

TEST(TrialContainment, ParallelPoolSurvivesThrowingTrials) {
  CampaignConfig config;
  config.runs = 16;
  config.seed = 63;
  config.trial_retries = 0;  // quarantine on first throw
  config.retry_backoff_ms = 0;
  const std::vector<std::uint64_t> seeds =
      Campaign::DeriveTrialSeeds(config.seed, 16);
  config.trial_chaos = [&seeds](std::uint64_t run_seed, unsigned) {
    // Poison every fourth trial.
    for (std::size_t i = 0; i < seeds.size(); i += 4) {
      if (seeds[i] == run_seed) throw ConfigError("chaos: poisoned trial");
    }
  };
  Campaign serial(AccumulatorApp(40), config);
  const CampaignResult reference = serial.Run();
  EXPECT_EQ(reference.infra, 4u);

  for (const unsigned jobs : {2u, 8u}) {
    ParallelCampaign parallel(AccumulatorApp(40), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

// ---- Hub degradation ----------------------------------------------------------

TEST(HubDegradation, DegradedCampaignStaysBitIdenticalSerialVsParallel) {
  // The degradation schedule is driven by the hub's deterministic operation
  // clock and a per-trial reseeded drop tape, so a faulty hub must not break
  // the serial == parallel bit-identity guarantee.
  CampaignConfig config;
  config.runs = 24;
  config.seed = 123;
  config.inject_ranks = {0};
  config.hub_fault.publish_drop_prob = 0.5;
  config.hub_fault.visibility_delay = 1;
  config.hub_fault.poll_retries = 1;
  Campaign serial(apps::BuildMatvec({}), config);
  const CampaignResult reference = serial.Run();

  for (const unsigned jobs : {2u, 8u}) {
    ParallelCampaign parallel(apps::BuildMatvec({}), config, jobs);
    const CampaignResult result = parallel.Run();
    SCOPED_TRACE(jobs);
    ExpectResultEq(reference, result);
  }
}

TEST(HubDegradation, OutagePlusThrowingTrialCompletesWithInfraAndTaintLost) {
  // The full acceptance scenario: a campaign hit by BOTH a hub outage (taint
  // shadows lost in transit) and a persistently throwing trial must run to
  // completion, quarantine the bad trial as infra, and report nonzero
  // taint_lost — never abort.
  CampaignConfig config;
  config.runs = 24;
  config.seed = 321;
  config.inject_ranks = {0};
  config.trial_retries = 1;
  config.retry_backoff_ms = 0;
  config.hub_fault.outage_start = 0;
  config.hub_fault.outage_end = 1'000'000;  // hub down for the whole trial
  const std::uint64_t victim = Campaign::DeriveTrialSeeds(config.seed, 24)[5];
  config.trial_chaos = [victim](std::uint64_t run_seed, unsigned) {
    if (run_seed == victim) throw ConfigError("chaos: trial host lost");
  };
  ParallelCampaign campaign(apps::BuildMatvec({}), config, 4);
  const CampaignResult result = campaign.Run();  // must NOT throw
  EXPECT_EQ(result.runs, 24u);
  EXPECT_EQ(result.infra, 1u);
  EXPECT_GT(result.taint_lost, 0u);
  EXPECT_EQ(result.benign + result.terminated + result.sdc, 23u);
  const std::string report = result.Render("matvec");
  EXPECT_NE(report.find("infra"), std::string::npos);
  EXPECT_NE(report.find("lost their taint shadow"), std::string::npos);
}

// ---- Trial isolation ----------------------------------------------------------

TEST(TrialIsolation, RunOnceUnaffectedByInterveningTrials) {
  // A trial's record — including the hub-derived propagation flags and the
  // taint counters — must depend only on its seed, not on what earlier
  // trials left behind in the hub, the trace logs, or the VMs.
  CampaignConfig config;
  config.runs = 0;
  config.seed = 9;
  config.inject_ranks = {0};
  Campaign c(apps::BuildMatvec({}), config);
  c.RunGolden();

  const RunRecord first = c.RunOnce(4242);
  for (std::uint64_t s = 100; s < 112; ++s) c.RunOnce(s);  // pollute
  const RunRecord replay = c.RunOnce(4242);
  ExpectRecordEq(first, replay, 0);
}

TEST(TrialIsolation, NoStatBleedAcrossConsecutiveTrials) {
  // Run trials until one shows cross-rank propagation, then check that the
  // very next trial does not inherit the hub transfers/stats that produced
  // the flag (a benign trial after a propagating one must report clean).
  CampaignConfig config;
  config.runs = 0;
  config.seed = 55;
  config.inject_ranks = {1};
  Campaign c(apps::BuildClamr(
                 {.global_rows = 12, .cols = 12, .steps = 8, .ranks = 4}),
             config);
  c.RunGolden();

  std::uint64_t propagating_seed = 0;
  for (std::uint64_t s = 1; s <= 30 && propagating_seed == 0; ++s) {
    if (c.RunOnce(s).propagated_cross_rank) propagating_seed = s;
  }
  ASSERT_NE(propagating_seed, 0u) << "no propagating trial in 30 seeds";

  // Snapshot the hub stats the propagating trial produced, pollute the
  // engine with other trials, replay: identical stats prove nothing
  // accumulated across the intervening jobs.
  (void)c.RunOnce(propagating_seed);
  const hub::HubStats snapshot = c.chaser().hub().stats();
  const std::size_t transfers = c.chaser().hub().transfer_log().size();
  EXPECT_GT(snapshot.publishes, 0u);
  for (std::uint64_t s = 200; s < 210; ++s) c.RunOnce(s);  // pollute
  (void)c.RunOnce(propagating_seed);
  EXPECT_EQ(c.chaser().hub().stats().publishes, snapshot.publishes);
  EXPECT_EQ(c.chaser().hub().stats().polls, snapshot.polls);
  EXPECT_EQ(c.chaser().hub().stats().hits, snapshot.hits);
  EXPECT_EQ(c.chaser().hub().stats().applied_bytes, snapshot.applied_bytes);
  EXPECT_EQ(c.chaser().hub().transfer_log().size(), transfers);
}

}  // namespace
}  // namespace chaser::campaign

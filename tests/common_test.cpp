// Unit tests for src/common: strings, bits, rng, histogram, file I/O.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/bits.h"
#include "common/error.h"
#include "common/fileio.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/strings.h"

namespace chaser {
namespace {

// ---- strings ---------------------------------------------------------------

TEST(Strings, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 7, "ok"), "x=7 y=ok");
  EXPECT_EQ(StrFormat("%%"), "%");
  EXPECT_EQ(StrFormat("empty%s", ""), "empty");
}

TEST(Strings, StrFormatLongOutput) {
  const std::string big(5000, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(Strings, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n d "),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(Strings, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, Hex64) {
  EXPECT_EQ(Hex64(0), "0x0000000000000000");
  EXPECT_EQ(Hex64(0x400000), "0x0000000000400000");
  EXPECT_EQ(Hex64(~0ull), "0xffffffffffffffff");
}

TEST(Strings, ParseU64Decimal) {
  std::uint64_t v = 0;
  ASSERT_TRUE(ParseU64("12345", &v));
  EXPECT_EQ(v, 12345u);
}

TEST(Strings, ParseU64Hex) {
  std::uint64_t v = 0;
  ASSERT_TRUE(ParseU64("0xff", &v));
  EXPECT_EQ(v, 255u);
}

TEST(Strings, ParseU64Rejects) {
  std::uint64_t v = 0;
  EXPECT_FALSE(ParseU64("", &v));
  EXPECT_FALSE(ParseU64("12x", &v));
  EXPECT_FALSE(ParseU64("abc", &v));
}

TEST(Strings, ParseDouble) {
  double d = 0;
  ASSERT_TRUE(ParseDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  ASSERT_TRUE(ParseDouble("1e-3", &d));
  EXPECT_DOUBLE_EQ(d, 1e-3);
  EXPECT_FALSE(ParseDouble("nanx1", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(Strings, StartsWithAndToLower) {
  EXPECT_TRUE(StartsWith("inject_fault", "inject"));
  EXPECT_FALSE(StartsWith("in", "inject"));
  EXPECT_EQ(ToLower("AbC-1"), "abc-1");
}

// ---- bits -------------------------------------------------------------------

TEST(Strings, JsonFindRawScalarKinds) {
  const std::string doc =
      "{\"n\": 42, \"f\": -1.5, \"b\": true, \"u\": null, "
      "\"s\": \"hi\", \"last\": 9}";
  std::string raw;
  ASSERT_TRUE(JsonFindRaw(doc, "n", &raw));
  EXPECT_EQ(raw, "42");
  ASSERT_TRUE(JsonFindRaw(doc, "f", &raw));
  EXPECT_EQ(raw, "-1.5");
  ASSERT_TRUE(JsonFindRaw(doc, "b", &raw));
  EXPECT_EQ(raw, "true");
  ASSERT_TRUE(JsonFindRaw(doc, "u", &raw));
  EXPECT_EQ(raw, "null");
  ASSERT_TRUE(JsonFindRaw(doc, "s", &raw));
  EXPECT_EQ(raw, "\"hi\"");
  ASSERT_TRUE(JsonFindRaw(doc, "last", &raw));  // value at document end
  EXPECT_EQ(raw, "9");
  EXPECT_FALSE(JsonFindRaw(doc, "missing", &raw));
}

TEST(Strings, JsonFindRawBalancedSubdocuments) {
  const std::string doc =
      "{\"shard\": {\"index\": 1, \"nested\": {\"deep\": [1, 2]}}, "
      "\"arr\": [{\"x\": \"}\"}, 2]}";
  std::string raw;
  ASSERT_TRUE(JsonFindRaw(doc, "shard", &raw));
  EXPECT_EQ(raw, "{\"index\": 1, \"nested\": {\"deep\": [1, 2]}}");
  // Braces inside string values must not unbalance the scan.
  ASSERT_TRUE(JsonFindRaw(doc, "arr", &raw));
  EXPECT_EQ(raw, "[{\"x\": \"}\"}, 2]");
}

TEST(Strings, JsonFindRawSkipsKeyLookalikeValues) {
  // "eta_s" first appears as a string VALUE; the lookup must keep going
  // until it finds it in key position.
  const std::string doc = "{\"note\": \"eta_s\", \"eta_s\": 3.5}";
  std::string raw;
  ASSERT_TRUE(JsonFindRaw(doc, "eta_s", &raw));
  EXPECT_EQ(raw, "3.5");
}

TEST(Strings, JsonFindStringDecodesEscapes) {
  const std::string doc =
      "{\"plain\": \"a b\", \"esc\": \"q\\\"q \\\\ n\\n\", \"num\": 7}";
  std::string s;
  ASSERT_TRUE(JsonFindString(doc, "plain", &s));
  EXPECT_EQ(s, "a b");
  ASSERT_TRUE(JsonFindString(doc, "esc", &s));
  EXPECT_EQ(s, "q\"q \\ n\n");
  EXPECT_FALSE(JsonFindString(doc, "num", &s)) << "numbers are not strings";
  EXPECT_FALSE(JsonFindString(doc, "missing", &s));
}

TEST(Strings, JsonFindNumberTreatsNullAsAbsent) {
  // The null-for-unknown contract: a null eta_s must read as "no number",
  // never as 0 (see obs/status.h and the fleet rollup).
  const std::string doc = "{\"eta_s\": null, \"rate\": 12.25}";
  double v = -1.0;
  EXPECT_FALSE(JsonFindNumber(doc, "eta_s", &v));
  ASSERT_TRUE(JsonFindNumber(doc, "rate", &v));
  EXPECT_DOUBLE_EQ(v, 12.25);
}

// ---- fileio ----------------------------------------------------------------

TEST(FileIo, ReadFileToStringRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "chaser_common_test_rt.bin")
          .string();
  const std::string payload("a\0b\nc", 5);  // binary-safe
  WriteFileAtomic(path, payload);
  EXPECT_EQ(ReadFileToString(path), payload);
  std::filesystem::remove(path);
  EXPECT_THROW(ReadFileToString(path), ConfigError);
}

TEST(Bits, FlipBit) {
  EXPECT_EQ(FlipBit(0, 0), 1u);
  EXPECT_EQ(FlipBit(1, 0), 0u);
  EXPECT_EQ(FlipBit(0, 63), 1ull << 63);
  EXPECT_EQ(FlipBit(0xff, 4), 0xefull);
}

TEST(Bits, RandomBitMaskHasExactPopcount) {
  Rng rng(1);
  for (unsigned n = 1; n <= 8; ++n) {
    const std::uint64_t m = RandomBitMask(rng, n, 64);
    EXPECT_EQ(PopCount(m), n);
  }
}

TEST(Bits, RandomBitMaskRespectsWidth) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t m = RandomBitMask(rng, 3, 8);
    EXPECT_EQ(m & ~0xffull, 0u) << Hex64(m);
    EXPECT_EQ(PopCount(m), 3u);
  }
}

TEST(Bits, RandomBitMaskClampsToWidth) {
  Rng rng(3);
  // Requesting more bits than the width can hold saturates at width.
  const std::uint64_t m = RandomBitMask(rng, 10, 4);
  EXPECT_EQ(m, 0xfull);
}

TEST(Bits, ByteAccessors) {
  const std::uint64_t v = 0x1122334455667788ull;
  EXPECT_EQ(ByteOf(v, 0), 0x88);
  EXPECT_EQ(ByteOf(v, 7), 0x11);
  EXPECT_EQ(WithByte(v, 0, 0xff), 0x11223344556677ffull);
  EXPECT_EQ(WithByte(v, 7, 0x00), 0x0022334455667788ull);
}

TEST(Bits, LowBytesMask) {
  EXPECT_EQ(LowBytesMask(1), 0xffull);
  EXPECT_EQ(LowBytesMask(4), 0xffffffffull);
  EXPECT_EQ(LowBytesMask(8), ~0ull);
}

TEST(Bits, SetBitPositions) {
  EXPECT_TRUE(SetBitPositions(0).empty());
  EXPECT_EQ(SetBitPositions(0b1010), (std::vector<unsigned>{1, 3}));
  EXPECT_EQ(SetBitPositions(1ull << 63), (std::vector<unsigned>{63}));
}

TEST(Bits, SaturatingAddU64) {
  EXPECT_EQ(SaturatingAddU64(2, 3), 5u);
  EXPECT_EQ(SaturatingAddU64(~0ull, 0), ~0ull);
  EXPECT_EQ(SaturatingAddU64(~0ull, 1), ~0ull);
  EXPECT_EQ(SaturatingAddU64(~0ull - 1, 1), ~0ull - 1 + 1);
  EXPECT_EQ(SaturatingAddU64(1ull << 63, 1ull << 63), ~0ull);
}

TEST(Bits, SaturatingMulU64) {
  EXPECT_EQ(SaturatingMulU64(6, 7), 42u);
  EXPECT_EQ(SaturatingMulU64(0, ~0ull), 0u);
  EXPECT_EQ(SaturatingMulU64(~0ull, 1), ~0ull);
  EXPECT_EQ(SaturatingMulU64(~0ull, 2), ~0ull);
  EXPECT_EQ(SaturatingMulU64(1ull << 32, 1ull << 32), ~0ull);
  // The watchdog-budget shape that used to wrap: a huge multiplier times a
  // realistic golden instruction count must clamp, not wrap small.
  EXPECT_EQ(SaturatingMulU64(~0ull / 2, 1'000'000), ~0ull);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformU64(0, 1000), b.UniformU64(0, 1000));
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformU64(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of 3, 4, 5 hit
}

TEST(Rng, IndexStaysInBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Index(7), 7u);
}

TEST(Rng, IndexZeroThrowsInsteadOfUnderflowing) {
  // Index(0) used to underflow to UniformU64(0, SIZE_MAX) and hand back a
  // garbage index into an empty container.
  Rng rng(8);
  EXPECT_THROW(rng.Index(0), ConfigError);
  EXPECT_THROW(rng.Pick(std::vector<int>{}), ConfigError);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughRate) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkChangesStream) {
  Rng a(11);
  const std::uint64_t child_seed = a.Fork();
  Rng child(child_seed);
  // The child stream differs from the parent's continuation.
  bool differs = false;
  Rng parent_copy(11);
  (void)parent_copy.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child.UniformU64(0, 1u << 30) != parent_copy.UniformU64(0, 1u << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, PickUniform) {
  Rng rng(12);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.Pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

// ---- histogram ----------------------------------------------------------------

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 3);  // [0,10) [10,20) [20,30) + overflow
  h.Add(0);
  h.Add(9);
  h.Add(10);
  h.Add(25);
  h.Add(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, MinMaxMean) {
  Histogram h(100, 10);
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h(10, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  EXPECT_FALSE(h.Render("empty").empty());
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(10, 100);
  for (std::uint64_t i = 0; i < 1000; ++i) h.Add(i % 500);
  EXPECT_LE(h.ApproxQuantile(0.1), h.ApproxQuantile(0.5));
  EXPECT_LE(h.ApproxQuantile(0.5), h.ApproxQuantile(0.9));
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(10, 2);
  h.Add(5);
  const std::string r = h.Render("lbl");
  EXPECT_NE(r.find("lbl"), std::string::npos);
  EXPECT_NE(r.find("n=1"), std::string::npos);
}

TEST(Histogram, ZeroWidthBucketClamped) {
  Histogram h(0, 0);  // degenerate config must not divide by zero
  h.Add(3);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MinSeededFromFirstAdd) {
  // A stream whose samples are all > 0 must not report min() == 0 from the
  // zero-initialized member: the first Add seeds both extremes.
  Histogram h(10, 4);
  h.Add(7);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  h.Add(31);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 31u);
  // A later zero still wins as the minimum.
  h.Add(0);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, QuantileSaturatesInOverflowBucket) {
  Histogram h(10, 2);  // covers [0,20), everything else overflows
  h.Add(5);
  h.Add(100);
  h.Add(200);
  // q=0.9 -> rank 3 -> overflow bucket; the answer is the observed max,
  // not the last bucket's upper bound (20).
  EXPECT_EQ(h.ApproxQuantile(0.9), 200u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 200u);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  Histogram h(10, 4);
  h.Add(5);  // single sample in [0,10)
  // Bucket upper bound (10) overshoots the only sample; clamp to max().
  EXPECT_EQ(h.ApproxQuantile(0.5), 5u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 5u);
  // q == 0 degenerates to rank 1 (the minimum's bucket).
  EXPECT_EQ(h.ApproxQuantile(0.0), 5u);
}

TEST(Histogram, QuantileZeroTracksMinBucket) {
  Histogram h(10, 10);
  h.Add(12);
  h.Add(47);
  h.Add(83);
  // Rank 1 resolves to the min's bucket [10,20); its upper bound is the
  // answer at bucket resolution.
  EXPECT_EQ(h.ApproxQuantile(0.0), 20u);
  // Rank 3 resolves to [80,90), capped at the observed max.
  EXPECT_EQ(h.ApproxQuantile(1.0), 83u);
}

}  // namespace
}  // namespace chaser

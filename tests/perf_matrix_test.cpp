// Perf-subsystem tests (label "perf"): the shared cross-trial translation
// cache, the flat software TLB, per-epoch translation stats, the TB cap, and
// the full identity matrix — campaigns must produce byte-identical reports
// and records across {serial, parallel} x {shared cache on, off} x
// {switch, threaded} because every hot-path knob is bit-transparent.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "guest/builder.h"
#include "tcg/shared_cache.h"
#include "vm/memory.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using campaign::Campaign;
using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::ParallelCampaign;
using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;
using tcg::SharedTbCache;

// ---- SharedTbCache unit behaviour -----------------------------------------

guest::Program TinyProgram(const char* name, std::int64_t value) {
  ProgramBuilder b(name);
  b.MovI(R(1), value);
  b.Exit(0);
  return b.Finalize();
}

tcg::TranslationBlock FakeTb(std::uint64_t pc, std::uint32_t insns) {
  tcg::TranslationBlock tb;
  tb.start_pc = pc;
  tb.num_insns = insns;
  tb.ops.resize(1);
  tb.ops[0].opc = tcg::TcgOpc::kGotoTb;
  tb.ops[0].imm = pc + insns;
  return tb;
}

TEST(SharedTbCache, InsertThenLookupReturnsCanonicalPointer) {
  SharedTbCache cache;
  const SharedTbCache::Key key{1, 2, 3};
  EXPECT_EQ(cache.Lookup(key), nullptr);

  const tcg::TranslationBlock* canon = cache.Insert(key, FakeTb(3, 4));
  ASSERT_NE(canon, nullptr);
  EXPECT_EQ(canon->num_insns, 4u);
  EXPECT_EQ(cache.Lookup(key), canon);

  // A duplicate insert (racing-winner semantics) returns the first TB.
  EXPECT_EQ(cache.Insert(key, FakeTb(3, 9)), canon);
  EXPECT_EQ(cache.Lookup(key)->num_insns, 4u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedTbCache, KeysAreFullIdentityNotJustPc) {
  SharedTbCache cache;
  const tcg::TranslationBlock* a = cache.Insert({1, 1, 7}, FakeTb(7, 1));
  const tcg::TranslationBlock* b = cache.Insert({1, 2, 7}, FakeTb(7, 2));
  const tcg::TranslationBlock* c = cache.Insert({2, 1, 7}, FakeTb(7, 3));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.Lookup({1, 1, 7}), a);
  EXPECT_EQ(cache.Lookup({1, 2, 7}), b);
  EXPECT_EQ(cache.Lookup({2, 1, 7}), c);
  EXPECT_EQ(cache.Lookup({2, 2, 7}), nullptr);
}

TEST(SharedTbCache, FlushIsLogicalInvalidation) {
  SharedTbCache cache;
  const SharedTbCache::Key key{1, 1, 0};
  const tcg::TranslationBlock* tb = cache.Insert(key, FakeTb(0, 5));
  cache.Flush();
  // Old epoch no longer matches...
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // ...but the retired TB is still readable (no reader can see a free).
  EXPECT_EQ(tb->num_insns, 5u);
  const SharedTbCache::Stats s = cache.stats();
  EXPECT_EQ(s.epoch_flushes, 1u);
  EXPECT_EQ(s.evicted_tbs, 1u);
  // Reinsert into the new epoch works.
  EXPECT_NE(cache.Insert(key, FakeTb(0, 6)), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedTbCache, CapOverflowFlushesWholeCache) {
  SharedTbCache cache(/*max_tbs=*/4);
  for (std::uint64_t pc = 0; pc < 4; ++pc) {
    cache.Insert({1, 1, pc}, FakeTb(pc, 1));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().epoch_flushes, 0u);

  // The fifth TB overflows the cap: QEMU semantics are a full flush, then
  // the new TB lands alone in a fresh epoch.
  cache.Insert({1, 1, 99}, FakeTb(99, 1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup({1, 1, 99}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1, 0}), nullptr);
  const SharedTbCache::Stats s = cache.stats();
  EXPECT_EQ(s.epoch_flushes, 1u);
  EXPECT_EQ(s.evicted_tbs, 4u);
  EXPECT_EQ(s.translations, 5u);
}

TEST(SharedTbCache, HashProgramDistinguishesImages) {
  const std::uint64_t a = SharedTbCache::HashProgram(TinyProgram("a", 1));
  const std::uint64_t a2 = SharedTbCache::HashProgram(TinyProgram("a", 1));
  const std::uint64_t b = SharedTbCache::HashProgram(TinyProgram("a", 2));
  const std::uint64_t c = SharedTbCache::HashProgram(TinyProgram("c", 1));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

// Concurrency: many threads doing lookup-or-insert on an overlapping key
// space must agree on one canonical TB per key. Run under `ctest -L tsan`
// this doubles as the data-race proof for the lock-free read path.
TEST(SharedTbCache, ConcurrentLookupOrInsertConverges) {
  SharedTbCache cache;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 64;
  std::vector<std::vector<const tcg::TranslationBlock*>> seen(
      kThreads, std::vector<const tcg::TranslationBlock*>(kKeys, nullptr));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      for (std::uint64_t round = 0; round < 4; ++round) {
        for (std::uint64_t pc = 0; pc < kKeys; ++pc) {
          const SharedTbCache::Key key{7, 1, pc};
          const tcg::TranslationBlock* tb = cache.Lookup(key);
          if (tb == nullptr) {
            tb = cache.Insert(key, FakeTb(pc, static_cast<std::uint32_t>(pc + 1)));
          }
          ASSERT_NE(tb, nullptr);
          ASSERT_EQ(tb->start_pc, pc);
          seen[t][pc] = tb;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (std::uint64_t pc = 0; pc < kKeys; ++pc) {
    const tcg::TranslationBlock* canon = cache.Lookup({7, 1, pc});
    ASSERT_NE(canon, nullptr);
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][pc], canon) << "thread " << t << " pc " << pc;
    }
  }
  EXPECT_EQ(cache.size(), kKeys);
}

// ---- Flat software TLB ----------------------------------------------------

TEST(MemoryTlb, HitsAfterFirstTouchAndCountsThem) {
  vm::GuestMemory mem;
  mem.MapRegion(0x1000, vm::kPageSize);
  ASSERT_TRUE(mem.Translate(0x1000).has_value());  // miss fills the slot
  const std::uint64_t misses_after_fill = mem.tlb_misses();
  EXPECT_GE(misses_after_fill, 1u);

  const std::uint64_t hits_before = mem.tlb_hits();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mem.Translate(0x1000 + i * 8).has_value());
  }
  EXPECT_EQ(mem.tlb_hits(), hits_before + 10);
  EXPECT_EQ(mem.tlb_misses(), misses_after_fill);  // same page: no new miss
}

TEST(MemoryTlb, NeverCachesUnmappedPages) {
  vm::GuestMemory mem;
  mem.MapRegion(0x1000, vm::kPageSize);
  EXPECT_FALSE(mem.Translate(0x100000).has_value());
  EXPECT_FALSE(mem.Translate(0x100000).has_value());  // still a fault
  // Mapping the page afterwards makes it visible (no stale negative entry).
  mem.MapRegion(0x100000, vm::kPageSize);
  EXPECT_TRUE(mem.Translate(0x100000).has_value());
}

TEST(MemoryTlb, AliasedSlotsEvictEachOtherCorrectly) {
  vm::GuestMemory mem;
  // Two pages 256 pages apart land in the same direct-mapped slot.
  const GuestAddr a = 0x10000;
  const GuestAddr b = a + 256 * vm::kPageSize;
  mem.MapRegion(a, vm::kPageSize);
  mem.MapRegion(b, vm::kPageSize);
  ASSERT_TRUE(mem.WriteBytes(a, "A", 1));
  ASSERT_TRUE(mem.WriteBytes(b, "B", 1));
  // Ping-pong between the aliases: every access must still translate to the
  // right frame even though each evicts the other's entry.
  for (int i = 0; i < 8; ++i) {
    char ca = 0, cb = 0;
    ASSERT_TRUE(mem.ReadBytes(a, &ca, 1));
    ASSERT_TRUE(mem.ReadBytes(b, &cb, 1));
    EXPECT_EQ(ca, 'A');
    EXPECT_EQ(cb, 'B');
  }
}

TEST(MemoryTlb, DisabledMatchesEnabledResults) {
  auto probe = [](bool enabled) -> std::uint64_t {
    vm::GuestMemory mem;
    mem.set_tlb_enabled(enabled);
    mem.MapRegion(0x2000, 4 * vm::kPageSize);
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) {
      PhysAddr paddr = 0;
      if (!mem.Store(0x2000 + i * 8, 8, i * 31, &paddr)) return ~0ull;
      const auto loaded = mem.Load(0x2000 + i * 8, 8, &paddr);
      if (!loaded) return ~0ull;
      sum += *loaded;
    }
    return sum;
  };
  EXPECT_EQ(probe(true), probe(false));
}

// ---- Per-epoch translation stats (satellite: breakdown + reset) -----------

guest::Program LoopProgram() {
  ProgramBuilder b("loop");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 500);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  return b.Finalize();
}

TEST(TranslationEpochs, FlushClosesAnEpochAndResetZeroes) {
  // Epoch history is per-process (StartProcess clears it), so flush *mid*
  // process — exactly what Chaser's attach/detach retranslation does.
  vm::Vm vm;
  vm.StartProcess(LoopProgram());
  ASSERT_EQ(vm.Run(50), vm::RunState::kRunnable);

  auto epochs = vm.translation_epochs();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_GT(epochs[0].translations, 0u);
  EXPECT_GT(epochs[0].optimizer.movs_forwarded, 0u);
  const std::uint64_t first_translations = epochs[0].translations;

  // The flush closes epoch 0; continuing retranslates into epoch 1 and the
  // closed epoch's numbers must not change.
  vm.FlushTbCache();
  vm.RunToCompletion();
  epochs = vm.translation_epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].translations, first_translations);
  EXPECT_GT(epochs[1].translations, 0u);
  EXPECT_EQ(vm.tb_translations(),
            epochs[0].translations + epochs[1].translations);

  // Reset drops the history and the lifetime totals together.
  vm.ResetTranslationStats();
  epochs = vm.translation_epochs();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0].translations, 0u);
  EXPECT_EQ(vm.tb_translations(), 0u);
  EXPECT_EQ(vm.optimizer_stats().movs_forwarded, 0u);
  EXPECT_EQ(vm.shared_tb_reuses(), 0u);
  EXPECT_EQ(vm.tb_evictions(), 0u);
}

// ---- Local TB cap (satellite: bounded cache, flush-on-overflow) -----------

TEST(TbCap, OverflowFlushesAndCountsEvictionsWithoutChangingResults) {
  auto run = [](std::uint64_t cap) {
    vm::Vm::Config config;
    config.max_cached_tbs = cap;
    vm::Vm vm(config);
    vm.StartProcess(LoopProgram());
    vm.RunToCompletion();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>(
        vm.cpu().IntReg(1), vm.instret(), vm.tb_evictions());
  };
  const auto [r1_uncapped, instret_uncapped, ev_uncapped] = run(0);
  const auto [r1_capped, instret_capped, ev_capped] = run(1);
  EXPECT_EQ(ev_uncapped, 0u);
  EXPECT_GT(ev_capped, 0u);  // >1 live TB against a cap of 1
  EXPECT_EQ(r1_capped, r1_uncapped);
  EXPECT_EQ(instret_capped, instret_uncapped);
}

// ---- The identity matrix --------------------------------------------------

/// Steerable single-process app: `iters` fadds accumulating into memory,
/// result written to fd 3 (same shape the campaign tests use).
apps::AppSpec AccumulatorApp(std::uint64_t iters = 40) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

/// Render + records CSV: one string capturing everything user-visible.
std::string Fingerprint(const CampaignResult& result) {
  std::ostringstream csv;
  campaign::WriteRecordsCsv(result.records, csv);
  return result.Render("matrix") + "\n" + csv.str();
}

CampaignConfig MatrixConfig(bool shared, vm::Dispatch dispatch) {
  CampaignConfig config;
  config.runs = 12;
  config.seed = 99;
  config.share_tb_cache = shared;
  config.dispatch = dispatch;
  config.retry_backoff_ms = 0;
  return config;
}

// Every cell of {serial, parallel} x {shared cache on, off} x
// {switch, threaded} must be byte-identical: the hot-path knobs are
// transparent and the parallel driver replays the serial seed sequence.
// (Without threaded dispatch compiled in, kThreaded falls back to switch and
// the matrix degenerates — still a valid identity check.)
TEST(IdentityMatrix, AllCellsByteIdentical) {
  const apps::AppSpec spec = AccumulatorApp();

  Campaign baseline(spec, MatrixConfig(true, vm::Dispatch::kAuto));
  const std::string want = Fingerprint(baseline.Run());
  EXPECT_NE(want.find("matrix"), std::string::npos);

  for (const bool parallel : {false, true}) {
    for (const bool shared : {false, true}) {
      for (const vm::Dispatch dispatch :
           {vm::Dispatch::kSwitch, vm::Dispatch::kThreaded}) {
        const CampaignConfig config = MatrixConfig(shared, dispatch);
        CampaignResult result;
        if (parallel) {
          ParallelCampaign c(spec, config, /*jobs=*/3);
          result = c.Run();
        } else {
          Campaign c(spec, config);
          result = c.Run();
        }
        EXPECT_EQ(Fingerprint(result), want)
            << "parallel=" << parallel << " shared=" << shared
            << " dispatch=" << static_cast<int>(dispatch);
      }
    }
  }
}

// The shared cache must actually be shared: across a campaign's trials the
// same pc is translated once, not once per trial.
TEST(IdentityMatrix, SharedCacheIsActuallyReused) {
  const apps::AppSpec spec = AccumulatorApp();
  SharedTbCache cache;
  CampaignConfig config = MatrixConfig(true, vm::Dispatch::kAuto);
  config.shared_tb_cache = &cache;
  Campaign c(spec, config);
  c.Run();
  const SharedTbCache::Stats s = cache.stats();
  EXPECT_GT(s.translations, 0u);
  EXPECT_GT(s.reuses, s.translations);  // many trials, one translation each
}

}  // namespace
}  // namespace chaser

// Tests for the TCG optimizer: specific rewrites, safety constraints, and an
// on/off equivalence sweep over random programs.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "guest/builder.h"
#include "tcg/optimizer.h"
#include "tcg/translator.h"
#include "vm/vm.h"

namespace chaser::tcg {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

TranslationBlock TranslateAt(const guest::Program& p, std::uint64_t pc = 0,
                             bool instrument_all = false) {
  Translator::Options opts;
  opts.instrument_all = instrument_all;
  return Translator(opts).Translate(p, pc);
}

std::size_t CountOpc(const TranslationBlock& tb, TcgOpc opc) {
  std::size_t n = 0;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == opc) ++n;
  }
  return n;
}

TEST(Optimizer, ForwardsAluIntoEnvDestination) {
  ProgramBuilder b("t");
  b.Add(R(1), R(2), R(3));  // add t, r2, r3; mov r1, t  ->  add r1, r2, r3
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p);
  const std::size_t movs_before = CountOpc(tb, TcgOpc::kMov);
  const OptimizerStats stats = Optimize(&tb);
  EXPECT_GT(stats.movs_forwarded, 0u);
  EXPECT_LT(CountOpc(tb, TcgOpc::kMov), movs_before);
  // The add now writes env.r1 directly.
  bool direct = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kAdd && op.dst == EnvInt(1)) direct = true;
  }
  EXPECT_TRUE(direct);
}

TEST(Optimizer, FoldsImmediateMove) {
  ProgramBuilder b("t");
  b.MovI(R(4), 1234);  // movi t, 1234; mov r4, t  ->  movi r4, 1234
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p);
  Optimize(&tb);
  bool direct = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kMovI && op.dst == EnvInt(4) && op.imm == 1234) {
      direct = true;
    }
  }
  EXPECT_TRUE(direct);
}

TEST(Optimizer, ForwardsLoadsButKeepsThem) {
  ProgramBuilder b("t");
  const GuestAddr buf = b.Bss("buf", 8);
  b.MovI(R(9), static_cast<std::int64_t>(buf));
  b.Ld(R(1), R(9), 0);
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p);
  const std::size_t loads_before = CountOpc(tb, TcgOpc::kQemuLd);
  Optimize(&tb);
  EXPECT_EQ(CountOpc(tb, TcgOpc::kQemuLd), loads_before);  // never removed
  bool direct = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kQemuLd && op.dst == EnvInt(1)) direct = true;
  }
  EXPECT_TRUE(direct);
}

TEST(Optimizer, NeverTouchesDivision) {
  ProgramBuilder b("t");
  b.DivS(R(1), R(2), R(3));  // may trap: the div op must survive untouched
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p);
  const std::size_t divs_before = CountOpc(tb, TcgOpc::kDivS);
  Optimize(&tb);
  EXPECT_EQ(CountOpc(tb, TcgOpc::kDivS), divs_before);
  // And its result still reaches r1 through the mov.
  bool mov_to_r1 = false;
  for (const TcgOp& op : tb.ops) {
    if (op.opc == TcgOpc::kMov && op.dst == EnvInt(1)) mov_to_r1 = true;
  }
  EXPECT_TRUE(mov_to_r1);
}

TEST(Optimizer, KeepsHelperCallsAndTerminators) {
  ProgramBuilder b("t");
  b.Fadd(F(0), F(1), F(2));
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p, 0, /*instrument_all=*/true);
  const std::size_t helpers_before = CountOpc(tb, TcgOpc::kCallHelper);
  const std::size_t starts_before = CountOpc(tb, TcgOpc::kInsnStart);
  Optimize(&tb);
  EXPECT_EQ(CountOpc(tb, TcgOpc::kCallHelper), helpers_before);
  // Boundary folding may turn explicit kInsnStart ops into insn_boundary
  // flags, but every guest instruction boundary must survive in one form.
  std::size_t boundaries = CountOpc(tb, TcgOpc::kInsnStart);
  for (const TcgOp& op : tb.ops) {
    if (op.insn_boundary) ++boundaries;
  }
  EXPECT_EQ(boundaries, starts_before);
  EXPECT_EQ(tb.ops.back().opc, TcgOpc::kGotoTb);
}

// ---- Exact-count tests on hand-built IR -----------------------------------
// These pin the optimizer's accounting: each stat must report exactly the
// rewrites performed, not merely "some".

TcgOp Op(TcgOpc opc, ValId dst = 0, ValId src1 = 0, ValId src2 = 0) {
  TcgOp op;
  op.opc = opc;
  op.dst = dst;
  op.src1 = src1;
  op.src2 = src2;
  return op;
}

TEST(Optimizer, ExactCountsForwardAndImmFuseAndBoundary) {
  // insn_start; movi t0,7; add t1,r2,t0; mov r1,t1; goto_tb — the canonical
  // translator pattern for `add r1, r2, #7`.
  TranslationBlock tb;
  tb.num_temps = 2;
  tb.ops.push_back(Op(TcgOpc::kInsnStart));
  TcgOp movi = Op(TcgOpc::kMovI, kTempBase + 0);
  movi.imm = 7;
  tb.ops.push_back(movi);
  tb.ops.push_back(Op(TcgOpc::kAdd, kTempBase + 1, EnvInt(2), kTempBase + 0));
  tb.ops.push_back(Op(TcgOpc::kMov, EnvInt(1), kTempBase + 1));
  tb.ops.push_back(Op(TcgOpc::kGotoTb));

  const OptimizerStats stats = Optimize(&tb);
  EXPECT_EQ(stats.movs_forwarded, 1u);
  EXPECT_EQ(stats.imms_fused, 1u);
  EXPECT_EQ(stats.addrs_fused, 0u);
  EXPECT_EQ(stats.dead_ops_removed, 0u);
  EXPECT_EQ(stats.insn_starts_folded, 1u);

  // 5 ops collapse to: add r1, r2, $7 (boundary-flagged) + goto_tb.
  ASSERT_EQ(tb.ops.size(), 2u);
  EXPECT_EQ(tb.ops[0].opc, TcgOpc::kAdd);
  EXPECT_EQ(tb.ops[0].dst, EnvInt(1));
  EXPECT_TRUE(tb.ops[0].src2_imm);
  EXPECT_EQ(tb.ops[0].imm, 7u);
  EXPECT_TRUE(tb.ops[0].insn_boundary);
  EXPECT_EQ(tb.ops[1].opc, TcgOpc::kGotoTb);
}

TEST(Optimizer, ExactCountsAddressFusion) {
  // insn_start; movi t0,16; add t1,r9,t0; ld t2,[t1]; mov r1,t2; goto_tb —
  // the translator pattern for `ld r1, [r9 + 16]`.
  TranslationBlock tb;
  tb.num_temps = 3;
  tb.ops.push_back(Op(TcgOpc::kInsnStart));
  TcgOp movi = Op(TcgOpc::kMovI, kTempBase + 0);
  movi.imm = 16;
  tb.ops.push_back(movi);
  tb.ops.push_back(Op(TcgOpc::kAdd, kTempBase + 1, EnvInt(9), kTempBase + 0));
  TcgOp ld = Op(TcgOpc::kQemuLd, kTempBase + 2, kTempBase + 1);
  ld.size = guest::MemSize::k8;
  tb.ops.push_back(ld);
  tb.ops.push_back(Op(TcgOpc::kMov, EnvInt(1), kTempBase + 2));
  tb.ops.push_back(Op(TcgOpc::kGotoTb));

  const OptimizerStats stats = Optimize(&tb);
  EXPECT_EQ(stats.movs_forwarded, 1u);
  EXPECT_EQ(stats.imms_fused, 1u);
  EXPECT_EQ(stats.addrs_fused, 1u);
  EXPECT_EQ(stats.dead_ops_removed, 0u);
  EXPECT_EQ(stats.insn_starts_folded, 1u);

  // 6 ops collapse to: ld r1, [r9+$16] (boundary-flagged) + goto_tb.
  ASSERT_EQ(tb.ops.size(), 2u);
  EXPECT_EQ(tb.ops[0].opc, TcgOpc::kQemuLd);
  EXPECT_EQ(tb.ops[0].dst, EnvInt(1));
  EXPECT_EQ(tb.ops[0].src1, EnvInt(9));
  EXPECT_TRUE(tb.ops[0].addr_fused);
  EXPECT_EQ(tb.ops[0].imm2, 16u);
  EXPECT_TRUE(tb.ops[0].insn_boundary);
}

TEST(Optimizer, ExactCountsDeadTempElimination) {
  // A pure op whose temp is never read is dropped; the store stays.
  TranslationBlock tb;
  tb.num_temps = 1;
  tb.ops.push_back(Op(TcgOpc::kInsnStart));
  TcgOp movi = Op(TcgOpc::kMovI, kTempBase + 0);
  movi.imm = 3;
  tb.ops.push_back(movi);  // dead: nothing reads t0
  tb.ops.push_back(Op(TcgOpc::kQemuSt, 0, EnvInt(9), EnvInt(1)));
  tb.ops.push_back(Op(TcgOpc::kGotoTb));

  const OptimizerStats stats = Optimize(&tb);
  EXPECT_EQ(stats.movs_forwarded, 0u);
  EXPECT_EQ(stats.imms_fused, 0u);
  EXPECT_EQ(stats.dead_ops_removed, 1u);
  EXPECT_EQ(stats.insn_starts_folded, 1u);
  ASSERT_EQ(tb.ops.size(), 2u);
  EXPECT_EQ(tb.ops[0].opc, TcgOpc::kQemuSt);
  EXPECT_TRUE(tb.ops[0].insn_boundary);
}

TEST(Optimizer, ConsecutiveInsnStartsKeepTheFirstExplicit) {
  // A kNop-style instruction leaves two adjacent boundaries; only the one
  // with a following real op may fold.
  TranslationBlock tb;
  tb.num_temps = 0;
  tb.ops.push_back(Op(TcgOpc::kInsnStart));  // kept: next op is an insn_start
  tb.ops.push_back(Op(TcgOpc::kInsnStart));  // folds into goto_tb
  tb.ops.push_back(Op(TcgOpc::kGotoTb));

  const OptimizerStats stats = Optimize(&tb);
  EXPECT_EQ(stats.insn_starts_folded, 1u);
  ASSERT_EQ(tb.ops.size(), 2u);
  EXPECT_EQ(tb.ops[0].opc, TcgOpc::kInsnStart);
  EXPECT_FALSE(tb.ops[0].insn_boundary);
  EXPECT_EQ(tb.ops[1].opc, TcgOpc::kGotoTb);
  EXPECT_TRUE(tb.ops[1].insn_boundary);
}

TEST(Optimizer, ShrinksRealAppBlocks) {
  ProgramBuilder b("t");
  const GuestAddr buf = b.Bss("buf", 256);
  b.MovI(R(9), static_cast<std::int64_t>(buf));
  for (int i = 0; i < 8; ++i) {
    b.Ld(R(1), R(9), i * 8);
    b.AddI(R(1), R(1), 3);
    b.St(R(9), i * 8, R(1));
  }
  b.Exit(0);
  const guest::Program p = b.Finalize();
  TranslationBlock tb = TranslateAt(p);
  const std::size_t before = tb.ops.size();
  Optimize(&tb);
  // Expect a substantial reduction on this mov-heavy block.
  EXPECT_LT(tb.ops.size(), before - 8);
}

TEST(Optimizer, VmTracksCumulativeStats) {
  ProgramBuilder b("loop");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 10);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  const guest::Program p = b.Finalize();
  vm::Vm vm;
  vm.StartProcess(p);
  vm.RunToCompletion();
  EXPECT_GT(vm.optimizer_stats().movs_forwarded, 0u);
}

TEST(Optimizer, DisabledVmRunsIdentically) {
  ProgramBuilder b("t");
  const GuestAddr buf = b.Bss("buf", 64);
  b.MovI(R(9), static_cast<std::int64_t>(buf));
  b.MovI(R(1), 7);
  b.MulI(R(2), R(1), 6);
  b.St(R(9), 0, R(2));
  b.Fld(F(0), R(9), 0);
  b.Exit(0);
  const guest::Program p = b.Finalize();

  vm::Vm on;
  on.StartProcess(p);
  on.RunToCompletion();

  vm::Vm::Config config;
  config.optimize_tbs = false;
  vm::Vm off(config);
  off.StartProcess(p);
  off.RunToCompletion();

  EXPECT_EQ(on.cpu().env, off.cpu().env);
  EXPECT_EQ(on.instret(), off.instret());
  EXPECT_EQ(off.optimizer_stats().movs_forwarded, 0u);
}

// Equivalence sweep: random-ish programs produce identical results with the
// optimizer on and off, including taint state under injection.
class OptimizerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, OnOffIdentical) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  ProgramBuilder b("t");
  const GuestAddr buf = b.Bss("buf", 32 * 8);
  b.MovI(R(10), static_cast<std::int64_t>(buf));
  b.MovI(R(1), static_cast<std::int64_t>(rng.UniformU64(1, 1u << 16)));
  b.MovI(R(2), static_cast<std::int64_t>(rng.UniformU64(1, 1u << 16)));
  for (int i = 0; i < 60; ++i) {
    switch (rng.UniformU64(0, 5)) {
      case 0: b.Add(R(1), R(1), R(2)); break;
      case 1: b.Mul(R(2), R(2), R(1)); break;
      case 2: b.XorI(R(1), R(1), static_cast<std::int64_t>(rng.UniformU64(0, 255))); break;
      case 3: {
        b.AndI(R(3), R(1), 31);
        b.ShlI(R(3), R(3), 3);
        b.Add(R(3), R(10), R(3));
        b.St(R(3), 0, R(2));
        break;
      }
      case 4: {
        b.AndI(R(3), R(2), 31);
        b.ShlI(R(3), R(3), 3);
        b.Add(R(3), R(10), R(3));
        b.Ld(R(1), R(3), 0);
        break;
      }
      case 5:
        b.CvtIF(F(0), R(1));
        b.FmovI(F(1), 1.25);
        b.Fmul(F(0), F(0), F(1));
        b.CvtFI(R(4), F(0));
        break;
    }
  }
  b.Exit(0);
  const guest::Program p = b.Finalize();

  auto run = [&p](bool optimize) {
    vm::Vm::Config config;
    config.optimize_tbs = optimize;
    auto vm = std::make_unique<vm::Vm>(config);
    vm->taint().set_enabled(true);
    vm->StartProcess(p);
    // Taint r2 from the start so taint flows through optimized blocks.
    vm->taint().TaintSourceRegister(EnvInt(2), 0xff);
    vm->RunToCompletion();
    return vm;
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on->cpu().env, off->cpu().env);
  EXPECT_EQ(on->instret(), off->instret());
  for (ValId v = 0; v < kNumEnvSlots; ++v) {
    EXPECT_EQ(on->taint().GetValTaint(v), off->taint().GetValTaint(v)) << "slot " << v;
  }
  EXPECT_EQ(on->taint().stats().tainted_reads, off->taint().stats().tainted_reads);
  EXPECT_EQ(on->taint().stats().tainted_writes, off->taint().stats().tainted_writes);
  EXPECT_EQ(on->taint().CountTaintedBytes(), off->taint().CountTaintedBytes());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, OptimizerEquivalence, ::testing::Range(0, 25));

}  // namespace
}  // namespace chaser::tcg

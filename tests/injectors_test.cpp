// Tests for the injector registry and the system-level fault families:
// spec parsing and its error messages, each bundled family's corruption
// semantics, stuck-at persistence across TB-chain and cache-epoch
// boundaries, instruction-skip on the final retired instruction, rank-crash
// campaigns and the kCrashed outcome, records CSV v6, journal v5, and
// serial/parallel determinism for non-default injectors.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "common/bits.h"
#include "common/error.h"
#include "core/chaser.h"
#include "core/injectors/registry.h"
#include "core/trigger.h"
#include "guest/builder.h"
#include "hub/remote/protocol.h"
#include "vm/vm.h"

namespace chaser {
namespace {

namespace fs = std::filesystem;
using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

std::string TempPath(const std::string& name) {
  const std::string path =
      (fs::temp_directory_path() / ("chaser_injectors_test_" + name)).string();
  fs::remove_all(path);
  return path;
}

// ---- key=val tokenizer (common/strings) ---------------------------------------

TEST(KeyValList, ParsesPairs) {
  std::vector<KeyVal> kvs;
  std::string bad;
  ASSERT_TRUE(ParseKeyValList("bits=3,span=2,name=x=y", &kvs, &bad));
  ASSERT_EQ(kvs.size(), 3u);
  EXPECT_EQ(kvs[0].key, "bits");
  EXPECT_EQ(kvs[0].value, "3");
  EXPECT_EQ(kvs[1].key, "span");
  EXPECT_EQ(kvs[1].value, "2");
  // Only the first '=' splits: values may themselves contain '='.
  EXPECT_EQ(kvs[2].key, "name");
  EXPECT_EQ(kvs[2].value, "x=y");
}

TEST(KeyValList, EmptySpecIsEmptyList) {
  std::vector<KeyVal> kvs;
  std::string bad;
  ASSERT_TRUE(ParseKeyValList("", &kvs, &bad));
  EXPECT_TRUE(kvs.empty());
}

TEST(KeyValList, RejectsTokenWithoutEquals) {
  std::vector<KeyVal> kvs;
  std::string bad;
  EXPECT_FALSE(ParseKeyValList("bits=3,whoops,span=2", &kvs, &bad));
  EXPECT_EQ(bad, "whoops");
}

TEST(KeyValList, RejectsEmptyKey) {
  std::vector<KeyVal> kvs;
  std::string bad;
  EXPECT_FALSE(ParseKeyValList("=5", &kvs, &bad));
  EXPECT_EQ(bad, "=5");
}

// ---- registry and spec-parse error messages -----------------------------------

TEST(InjectorRegistry, ListsAllBundledFamilies) {
  const std::vector<std::string> names = core::InjectorRegistry::Global().Names();
  for (const char* expected :
       {"probabilistic", "deterministic", "group", "multibit", "burst",
        "stuckat", "iskip", "rank-crash"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(InjectorRegistry, UnknownNameErrorListsRegisteredNames) {
  try {
    core::ParseInjectorSpec("warp");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown injector 'warp'"), std::string::npos) << msg;
    // The one-line error must enumerate the valid choices.
    EXPECT_NE(msg.find("probabilistic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank-crash"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuckat"), std::string::npos) << msg;
  }
}

TEST(InjectorRegistry, UnknownParamErrorListsValidKeys) {
  try {
    core::ParseInjectorSpec("multibit:frob=1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown parameter 'frob'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bits"), std::string::npos) << msg;
  }
}

TEST(InjectorRegistry, MalformedParamTokenNamesIt) {
  try {
    core::ParseInjectorSpec("burst:span");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("expected key=value"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'span'"), std::string::npos) << msg;
  }
}

TEST(InjectorRegistry, StuckAtRejectsBadValue) {
  EXPECT_THROW(core::ParseInjectorSpec("stuckat:value=2"), ConfigError);
  EXPECT_NO_THROW(core::ParseInjectorSpec("stuckat:value=1,bits=3"));
}

TEST(InjectorRegistry, ParameterlessFamilyRejectsParams) {
  try {
    core::ParseInjectorSpec("rank-crash:bits=1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("takes no parameters"),
              std::string::npos)
        << e.what();
  }
}

TEST(InjectorRegistry, CustomInjectorRegistersViaMacro) {
  // The README walkthrough's mechanism: a plugin TU self-registers at static
  // initialization and is immediately reachable by name.
  const core::InjectorRegistry::Entry* entry =
      core::InjectorRegistry::Global().Find("test-nop");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->fault_class, "test");
  core::InjectorSpec spec;
  spec.name = "test-nop";
  EXPECT_NE(core::InjectorRegistry::Global().Create(spec, 1), nullptr);
}

TEST(HubFaultSpec, BadTokenErrorNamesTokenAndChoices) {
  try {
    hub::remote::ParseHubFaultSpec("drop=0.5,frobs=1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("--hub-fault", 0), 0u) << msg;
    EXPECT_NE(msg.find("frobs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid keys"), std::string::npos) << msg;
  }
}

TEST(HubFaultSpec, FlagNamePropagatesIntoErrors) {
  try {
    hub::remote::ParseHubFaultSpec("nonsense", "--hub-fault-trigger");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("--hub-fault-trigger", 0), 0u) << msg;
    EXPECT_NE(msg.find("'nonsense'"), std::string::npos) << msg;
  }
}

// ---- per-family corruption semantics (Chaser on a bare Vm) --------------------

/// 20 fadds accumulating 1.0 into f5, then Exit — the injection workhorse.
guest::Program& FaddLoopProgram() {
  static guest::Program p = [] {
    ProgramBuilder b("faddloop");
    b.FmovI(F(5), 0.0);
    b.FmovI(F(1), 1.0);
    b.MovI(R(1), 0);
    auto loop = b.Here("loop");
    b.Fadd(F(5), F(5), F(1));
    b.AddI(R(1), R(1), 1);
    b.CmpI(R(1), 20);
    b.Br(Cond::kLt, loop);
    b.Exit(0);
    return b.Finalize();
  }();
  return p;
}

core::InjectionCommand FaddCommand(const std::string& injector_spec,
                                   std::uint64_t nth) {
  core::InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kFadd};
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(nth);
  cmd.injector = core::InjectorRegistry::Global().Create(
      core::ParseInjectorSpec(injector_spec), 1);
  cmd.seed = 11;
  return cmd;
}

TEST(InjectorFamilies, MultiBitFlipsContiguousBurst) {
  vm::Vm vm;
  core::Chaser chaser(vm);
  chaser.Arm(FaddCommand("multibit:bits=4", 7));
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  ASSERT_EQ(chaser.injections().size(), 1u);
  const core::InjectionRecord& rec = chaser.injections()[0];
  EXPECT_EQ(PopCount(rec.flip_mask), 4u);
  // Contiguous: mask >> trailing-zeros must be 0b1111.
  std::uint64_t m = rec.flip_mask;
  while ((m & 1) == 0) m >>= 1;
  EXPECT_EQ(m, 0xfull);
  EXPECT_EQ(rec.new_value, rec.old_value ^ rec.flip_mask);
}

TEST(InjectorFamilies, BurstCorruptsAdjacentRegisters) {
  vm::Vm vm;
  core::Chaser chaser(vm);
  chaser.Arm(FaddCommand("burst:span=3,bits=1", 5));
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  // One strike, three records — one per register in the span, adjacent
  // (mod the register-file size) in the same file.
  ASSERT_EQ(chaser.injections().size(), 3u);
  const auto& recs = chaser.injections();
  const unsigned file_size = recs[0].target ==
                                     core::InjectionRecord::Target::kFpRegister
                                 ? guest::kNumFpRegs
                                 : guest::kNumIntRegs;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(recs[i].target, recs[0].target);
    EXPECT_EQ(recs[i].reg, (recs[0].reg + i) % file_size);
    EXPECT_EQ(PopCount(recs[i].flip_mask), 1u);
  }
}

TEST(InjectorFamilies, ISkipSquashesTargetedInstruction) {
  vm::Vm vm;
  core::Chaser chaser(vm);
  chaser.Arm(FaddCommand("iskip", 7));
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  // The 7th fadd never executed: the loop still runs 20 iterations but only
  // 19 additions land.
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.cpu().FpReg(5), 19.0);
  ASSERT_EQ(chaser.injections().size(), 1u);
  // The squashed destination register is tainted, so the trace still
  // anchors at the injection even though no value changed hands.
  EXPECT_TRUE(vm.taint().Active());
}

TEST(InjectorFamilies, ISkipOnFinalRetiredInstructionTerminatesCleanly) {
  // Skip the program's *last* instruction (the Exit syscall): the pc walks
  // off the end of text and the VM must deterministically classify that as
  // a fault, never hang or read past the text array.
  vm::Vm vm;
  core::Chaser chaser(vm);
  core::InjectionCommand cmd;
  cmd.target_program = "faddloop";
  cmd.target_classes = {guest::InstrClass::kSys};
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(1);
  cmd.injector = core::InjectorRegistry::Global().Create(
      core::ParseInjectorSpec("iskip"), 1);
  cmd.seed = 3;
  chaser.Arm(cmd);
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kSignaled);
  EXPECT_EQ(vm.signal(), vm::GuestSignal::kSegv);
}

TEST(InjectorFamilies, RankCrashRaisesCrashSignal) {
  vm::Vm vm;
  core::Chaser chaser(vm);
  chaser.Arm(FaddCommand("rank-crash", 3));
  vm.StartProcess(FaddLoopProgram());
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kSignaled);
  EXPECT_EQ(vm.signal(), vm::GuestSignal::kCrash);
  EXPECT_NE(vm.termination_message().find("injected rank crash"),
            std::string::npos);
}

// ---- stuck-at persistence -----------------------------------------------------

/// A loop that re-writes R(2) = 3 every iteration across a TB boundary (the
/// backward branch ends the block), so a transient flip of R(2) would be
/// healed immediately — only a persistent stuck-at fault survives.
guest::Program RewriteLoopProgram() {
  ProgramBuilder b("rewrite");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.MovI(R(2), 3);
  b.AddI(R(3), R(2), 0);  // copy the (possibly pinned) value out
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 50);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  return b.Finalize();
}

TEST(StuckAt, PinPersistsAcrossTbChainBoundary) {
  // Chained TBs re-enter the loop body without returning to the dispatch
  // loop; the pin must reassert at every instruction boundary regardless.
  vm::Vm::Config config;
  config.chain_tbs = true;
  vm::Vm vm(config);
  const guest::Program p = RewriteLoopProgram();
  vm.StartProcess(p);
  vm.AddStuckFault(tcg::EnvInt(2), 0x3, 0x0);  // pin low two bits to 0
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  // Every `MovI R2, 3` was immediately re-pinned: the copy saw 0, not 3.
  EXPECT_EQ(vm.cpu().IntReg(3), 0u);
  EXPECT_EQ(vm.cpu().IntReg(2), 0u);
  EXPECT_GT(vm.tb_chain_hits(), 0u);
}

TEST(StuckAt, PinPersistsAcrossCacheEpochFlush) {
  // A 1-entry TB cache flushes wholesale on every miss (QEMU-style), forcing
  // retranslation mid-run; the pin is Vm state, not TB state, and must hold.
  vm::Vm::Config config;
  config.max_cached_tbs = 1;
  vm::Vm vm(config);
  const guest::Program p = RewriteLoopProgram();
  vm.StartProcess(p);
  vm.AddStuckFault(tcg::EnvInt(2), 0x3, 0x0);
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.cpu().IntReg(3), 0u);
}

TEST(StuckAt, StuckAtOnePinsBitsHigh) {
  vm::Vm vm;
  const guest::Program p = RewriteLoopProgram();
  vm.StartProcess(p);
  vm.AddStuckFault(tcg::EnvInt(2), 0x8, ~0ull);  // pin bit 3 to 1
  vm.RunToCompletion();
  EXPECT_EQ(vm.cpu().IntReg(3), 3u | 0x8u);
}

TEST(StuckAt, ClearAndRestartResets) {
  vm::Vm vm;
  const guest::Program p = RewriteLoopProgram();
  vm.StartProcess(p);
  vm.AddStuckFault(tcg::EnvInt(2), 0x3, 0x0);
  vm.RunToCompletion();
  EXPECT_EQ(vm.cpu().IntReg(3), 0u);
  // StartProcess clears per-trial fault state: the next run is healthy.
  vm.StartProcess(p);
  EXPECT_TRUE(vm.stuck_faults().empty());
  vm.RunToCompletion();
  EXPECT_EQ(vm.cpu().IntReg(3), 3u);
}

// ---- campaign integration -----------------------------------------------------

/// Single-rank fadd-accumulator app (mirrors campaign_test's workhorse).
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd};
  return spec;
}

std::string RecordsCsvOf(const campaign::CampaignResult& result,
                         campaign::SamplePolicy policy =
                             campaign::SamplePolicy::kUniform) {
  std::ostringstream csv;
  campaign::WriteRecordsCsv(result.records, csv, policy);
  return csv.str();
}

TEST(InjectorCampaign, RankCrashCampaignYieldsCrashedOutcome) {
  // Multi-rank app with tracing on: the victim rank dies while its taint
  // publishes are in flight; the cluster must contain the crash and the
  // survivors' hub polls must drain without deadlock.
  apps::AppSpec spec = apps::BuildMatvec({});
  campaign::CampaignConfig config;
  config.runs = 6;
  config.seed = 5;
  config.injector = core::ParseInjectorSpec("rank-crash");
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  EXPECT_EQ(result.crashed, 6u);
  for (const campaign::RunRecord& r : result.records) {
    EXPECT_EQ(r.outcome, campaign::Outcome::kCrashed);
    EXPECT_EQ(r.signal, vm::GuestSignal::kCrash);
    EXPECT_EQ(r.injector, "rank-crash");
    EXPECT_EQ(r.fault_class, "process-crash");
    EXPECT_EQ(r.failure_rank, r.inject_rank);
  }
  const std::string report = result.Render("matvec");
  EXPECT_NE(report.find("crashed"), std::string::npos);
}

TEST(InjectorCampaign, CrashedIsDistinctFromInfra) {
  apps::AppSpec spec = apps::BuildMatvec({});
  campaign::CampaignConfig config;
  config.runs = 4;
  config.seed = 9;
  config.injector = core::ParseInjectorSpec("rank-crash");
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  EXPECT_EQ(result.infra, 0u) << "a rank crash is an injection outcome, not "
                                 "a quarantined harness failure";
  EXPECT_EQ(result.crashed, 4u);
}

TEST(InjectorCampaign, CustomInjectorSerialParallelIdentical) {
  campaign::CampaignConfig config;
  config.runs = 12;
  config.seed = 21;
  config.injector = core::ParseInjectorSpec("multibit:bits=3");
  campaign::Campaign serial(AccumulatorApp(40), config);
  const std::string serial_csv = RecordsCsvOf(serial.Run());
  campaign::ParallelCampaign parallel(AccumulatorApp(40), config, 3);
  const std::string parallel_csv = RecordsCsvOf(parallel.Run());
  EXPECT_EQ(serial_csv, parallel_csv);
  EXPECT_EQ(serial_csv.rfind("#chaser-records-csv v6\n", 0), 0u);
}

TEST(InjectorCampaign, StuckAtDeterministicAcrossCacheConfigs) {
  // The pin lives in the Vm, not the translation cache, so flushing and
  // retranslating (1-TB cap) must not change any outcome.
  campaign::CampaignConfig config;
  config.runs = 10;
  config.seed = 13;
  config.injector = core::ParseInjectorSpec("stuckat:value=1");
  campaign::Campaign baseline(AccumulatorApp(40), config);
  const std::string baseline_csv = RecordsCsvOf(baseline.Run());
  config.tb_cache_cap = 1;
  campaign::Campaign capped(AccumulatorApp(40), config);
  EXPECT_EQ(RecordsCsvOf(capped.Run()), baseline_csv);
}

TEST(InjectorCampaign, EveryFamilyRunsDeterministically) {
  for (const char* spec_text :
       {"probabilistic:bits=2", "deterministic:operand=0,mask=255", "group",
        "multibit", "burst:span=2", "stuckat", "iskip", "rank-crash"}) {
    campaign::CampaignConfig config;
    config.runs = 5;
    config.seed = 33;
    config.injector = core::ParseInjectorSpec(spec_text);
    campaign::Campaign a(AccumulatorApp(30), config);
    campaign::Campaign b(AccumulatorApp(30), config);
    EXPECT_EQ(RecordsCsvOf(a.Run()), RecordsCsvOf(b.Run())) << spec_text;
  }
}

TEST(InjectorCampaign, CsvV6RoundTripsInjectorColumns) {
  campaign::CampaignConfig config;
  config.runs = 4;
  config.seed = 17;
  config.injector = core::ParseInjectorSpec("iskip");
  campaign::Campaign c(AccumulatorApp(30), config);
  const campaign::CampaignResult result = c.Run();
  std::stringstream csv;
  campaign::WriteRecordsCsv(result.records, csv);
  const std::vector<campaign::RunRecord> back =
      campaign::ReadRecordsCsv(csv);
  ASSERT_EQ(back.size(), result.records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].injector, "iskip");
    EXPECT_EQ(back[i].fault_class, "instruction-skip");
    EXPECT_EQ(back[i].outcome, result.records[i].outcome);
  }
}

TEST(InjectorCampaign, JournalV5RoundTripsInjectorIdentityAndCrash) {
  const std::string path = TempPath("v5_roundtrip");
  campaign::RunRecord rec;
  rec.run_seed = 42;
  rec.outcome = campaign::Outcome::kCrashed;
  rec.kind = vm::TerminationKind::kSignaled;
  rec.signal = vm::GuestSignal::kCrash;
  rec.injector = "rank-crash";
  rec.fault_class = "process-crash";
  {
    campaign::TrialJournal journal(path, 7, "accum", nullptr);
    EXPECT_EQ(journal.version(), campaign::kJournalVersion);
    journal.Append(rec);
  }
  const campaign::JournalContents contents = campaign::ReadJournal(path);
  EXPECT_FALSE(contents.truncated);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].outcome, campaign::Outcome::kCrashed);
  EXPECT_EQ(contents.records[0].signal, vm::GuestSignal::kCrash);
  EXPECT_EQ(contents.records[0].injector, "rank-crash");
  EXPECT_EQ(contents.records[0].fault_class, "process-crash");
  fs::remove_all(path);
}

TEST(InjectorCampaign, PreV5JournalRejectsCrashOutcomeAsCorruption) {
  // A v4 frame claiming outcome kCrashed (4) can only be a bit flip: the
  // value did not exist when v4 files were written.
  campaign::RunRecord rec;
  rec.outcome = campaign::Outcome::kCrashed;
  const std::string v4 = campaign::EncodeJournalRecord(rec, 4);
  const std::string v5 = campaign::EncodeJournalRecord(rec, 5);
  EXPECT_NE(v4, v5);
  // The v5 payload carries the injector strings; v4 must be shorter.
  EXPECT_LT(v4.size(), v5.size());
}

TEST(InjectorCampaign, HubFaultTriggerIsDeterministicAndTrialScoped) {
  // The trial-window model must not perturb the golden run (which would
  // throw if the hub dropped its publishes with retries=0) and must be
  // deterministic in the campaign seed.
  apps::AppSpec spec = apps::BuildMatvec({});
  campaign::CampaignConfig config;
  config.runs = 6;
  config.seed = 3;
  config.hub_fault_trigger =
      hub::remote::ParseHubFaultSpec("drop=0.8,retries=1");
  campaign::Campaign a(apps::BuildMatvec({}), config);
  const std::string csv_a = RecordsCsvOf(a.Run());
  campaign::Campaign b(std::move(spec), config);
  EXPECT_EQ(RecordsCsvOf(b.Run()), csv_a);
  // Default injector + uniform sampling: the CSV stays v4 even with the
  // trigger armed — the feature adds no columns.
  EXPECT_EQ(csv_a.rfind("#chaser-records-csv v4\n", 0), 0u);
}

}  // namespace
}  // namespace chaser

// Plugin-style self-registration must work from an ordinary test TU (the
// registry macro is the exported extension point).
CHASER_REGISTER_INJECTOR(
    test_nop,
    ::chaser::core::InjectorRegistry::Entry{
        "test-nop",
        "test",
        "does nothing (registry self-registration test)",
        {},
        [](const ::chaser::core::InjectorArgs&) {
          class NopInjector : public ::chaser::core::FaultInjector {
           public:
            void Inject(::chaser::core::InjectionContext&) override {}
            std::string name() const override { return "test-nop"; }
          };
          return std::make_shared<NopInjector>();
        }});

// Tests for src/net and src/hub/remote: the frame codec must reject torn
// and bit-flipped streams without ever yielding a corrupt payload (the
// journal_test fuzz discipline, applied to a live socket), the HubServer
// must drop a misbehaving connection — never abort — while other clients
// keep working, and a RemoteTaintHub over loopback must be operation-for-
// operation identical to the in-process TaintHub it proxies.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "hub/remote/client.h"
#include "hub/remote/protocol.h"
#include "hub/remote/server.h"
#include "hub/tainthub.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace chaser {
namespace {

using hub::HubFaultModel;
using hub::HubStats;
using hub::MessageId;
using hub::MessageTaintRecord;
using hub::PollAttempt;
using hub::PollStatus;
using hub::RecvContext;
using hub::TaintHub;
using hub::TransferLogEntry;
using hub::remote::HubServer;
using hub::remote::RemoteTaintHub;
using net::AppendFrame;
using net::AppendVarint;
using net::DecodeStatus;
using net::DecodeVarint;
using net::FrameDecoder;

// ---- varint ----------------------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,       1,        127,        128,
                                  16383,   16384,    (1u << 21), 0xffffffffull,
                                  1ull << 63, ~0ull};
  for (const std::uint64_t v : values) {
    std::string buf;
    AppendVarint(&buf, v);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    ASSERT_EQ(DecodeVarint(buf.data(), buf.size(), &pos, &out),
              DecodeStatus::kOk);
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncationIsNeedMoreNotError) {
  std::string buf;
  AppendVarint(&buf, ~0ull);  // 10 bytes
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_EQ(DecodeVarint(buf.data(), len, &pos, &out),
              DecodeStatus::kNeedMore);
    EXPECT_EQ(pos, 0u) << "pos must stay put for a retry";
  }
}

TEST(Varint, RunawayContinuationIsMalformed) {
  const std::string buf(11, '\x80');  // 11 continuation bytes: not a varint
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_EQ(DecodeVarint(buf.data(), buf.size(), &pos, &out),
            DecodeStatus::kMalformed);
}

TEST(Varint, ZigZagRoundTripsSignedValues) {
  const std::int64_t values[] = {0, -1, 1, -2, 1000, -1000,
                                 std::int64_t{1} << 62, -(std::int64_t{1} << 62)};
  for (const std::int64_t v : values) {
    EXPECT_EQ(net::ZigZagDecode(net::ZigZagEncode(v)), v);
  }
}

// ---- frame codec ------------------------------------------------------------

std::vector<std::string> SamplePayloads() {
  return {std::string("x"), std::string("hello hub"),
          std::string(1000, '\xab'), std::string("\x00\xff\x01", 3)};
}

TEST(FrameCodec, RoundTripsWholeStream) {
  std::string stream;
  for (const std::string& p : SamplePayloads()) AppendFrame(&stream, p);
  FrameDecoder dec;
  dec.Feed(stream.data(), stream.size());
  for (const std::string& p : SamplePayloads()) {
    std::string payload;
    ASSERT_EQ(dec.Next(&payload), FrameDecoder::Result::kFrame);
    EXPECT_EQ(payload, p);
  }
  std::string payload;
  EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodec, RoundTripsByteAtATime) {
  std::string stream;
  for (const std::string& p : SamplePayloads()) AppendFrame(&stream, p);
  FrameDecoder dec;
  std::vector<std::string> got;
  for (const char c : stream) {
    dec.Feed(&c, 1);
    std::string payload;
    while (dec.Next(&payload) == FrameDecoder::Result::kFrame) {
      got.push_back(payload);
    }
  }
  EXPECT_EQ(got, SamplePayloads());
}

TEST(FrameCodec, EveryTruncationIsNeedMoreNeverError) {
  std::string stream;
  AppendFrame(&stream, std::string(300, 'q'));
  for (std::size_t len = 0; len < stream.size(); ++len) {
    FrameDecoder dec;
    dec.Feed(stream.data(), len);
    std::string payload;
    EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FrameCodec, BitFlipsNeverYieldACorruptPayload) {
  const std::string original(137, 'z');
  std::string stream;
  AppendFrame(&stream, original);
  for (std::size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = stream;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      FrameDecoder dec;
      dec.Feed(flipped.data(), flipped.size());
      std::string payload;
      const FrameDecoder::Result r = dec.Next(&payload);
      // A flip may leave the frame undecodable (error), starve it (the
      // length grew: need more), but must never pass off a different
      // payload as valid.
      if (r == FrameDecoder::Result::kFrame) {
        EXPECT_EQ(payload, original)
            << "byte " << byte << " bit " << bit
            << " produced a corrupt frame that passed the CRC";
      }
    }
  }
}

TEST(FrameCodec, ZeroLengthFrameIsAnError) {
  std::string stream;
  AppendVarint(&stream, 0);
  stream.append(4, '\0');  // CRC of nothing — irrelevant, rejected earlier
  FrameDecoder dec;
  dec.Feed(stream.data(), stream.size());
  std::string payload;
  EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kError);
  EXPECT_FALSE(dec.error().empty());
}

TEST(FrameCodec, OversizedFrameIsAnErrorNotAnAllocation) {
  std::string stream;
  AppendVarint(&stream, net::kMaxFramePayload + 1);
  FrameDecoder dec;
  dec.Feed(stream.data(), stream.size());
  std::string payload;
  EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameCodec, ErrorIsSticky) {
  std::string bad;
  AppendVarint(&bad, 0);
  std::string good;
  AppendFrame(&good, "ok");
  FrameDecoder dec;
  dec.Feed(bad.data(), bad.size());
  dec.Feed(good.data(), good.size());
  std::string payload;
  EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kError);
  EXPECT_EQ(dec.Next(&payload), FrameDecoder::Result::kError)
      << "a poisoned stream must not recover";
}

// ---- endpoint parsing -------------------------------------------------------

TEST(Endpoint, ParsesHostPort) {
  const net::Endpoint ep = net::ParseEndpoint("127.0.0.1:7707");
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7707);
  EXPECT_THROW(net::ParseEndpoint("no-port"), ConfigError);
  EXPECT_THROW(net::ParseEndpoint("host:0"), ConfigError);
  EXPECT_THROW(net::ParseEndpoint("host:99999"), ConfigError);
}

// ---- server robustness ------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HubServer>(HubServer::Options{});
    server_->Start();
    endpoint_ = "127.0.0.1:" + std::to_string(server_->port());
  }

  /// Raw client socket that has NOT sent a hello.
  net::TcpSocket RawConnect() {
    return net::TcpSocket::Connect("127.0.0.1", server_->port());
  }

  /// Send `payload` as one frame and return true if the server closed the
  /// connection (EOF or reset) afterwards.
  bool SendAndExpectDrop(net::TcpSocket& sock, const std::string& payload) {
    std::string stream;
    AppendFrame(&stream, payload);
    try {
      sock.SendAll(stream.data(), stream.size());
      // Drain whatever the server says until EOF; an error frame may precede
      // the close (hello rejections reply before dropping).
      char buf[4096];
      for (;;) {
        if (sock.Recv(buf, sizeof buf) == 0) return true;
      }
    } catch (const ConfigError&) {
      return true;  // a reset counts as dropped
    }
  }

  std::unique_ptr<HubServer> server_;
  std::string endpoint_;
};

TEST_F(ServerTest, BadHelloDropsOnlyThatConnection) {
  net::TcpSocket bad = RawConnect();
  EXPECT_TRUE(SendAndExpectDrop(bad, "CHSNOPE"));
  // A well-behaved client on the same server still works.
  RemoteTaintHub good({endpoint_});
  MessageTaintRecord rec;
  rec.id = {0, 1, 5, 0};
  rec.byte_masks = {0xff, 0x00, 0x01};
  good.Publish(std::move(rec));
  const PollAttempt attempt = good.TryPoll({0, 1, 5, 0}, {});
  EXPECT_EQ(attempt.status, PollStatus::kHit);
  // Bad hellos land in their own counter — conn_errors stays reserved for
  // protocol violations AFTER a successful hello.
  EXPECT_GE(server_->stats().hello_errors, 1u);
  EXPECT_EQ(server_->stats().conn_errors, 0u);
}

TEST_F(ServerTest, VersionMismatchIsRejectedExplicitly) {
  net::TcpSocket sock = RawConnect();
  std::string hello = hub::remote::kHelloMagic;  // right magic...
  AppendVarint(&hello, hub::remote::kProtocolVersion + 41);  // ...wrong version
  EXPECT_TRUE(SendAndExpectDrop(sock, hello));
  EXPECT_GE(server_->stats().hello_errors, 1u);
  EXPECT_EQ(server_->stats().conn_errors, 0u);
}

TEST_F(ServerTest, OversizedFrameDropsConnectionNotServer) {
  net::TcpSocket sock = RawConnect();
  std::string stream;
  AppendVarint(&stream, net::kMaxFramePayload + 7);  // lying length prefix
  bool dropped = false;
  try {
    sock.SendAll(stream.data(), stream.size());
    char buf[256];
    dropped = sock.Recv(buf, sizeof buf) == 0;  // EOF
  } catch (const ConfigError&) {
    dropped = true;  // reset
  }
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(server_->running());
  EXPECT_GE(server_->stats().conn_errors, 1u);
  RemoteTaintHub still_fine({endpoint_});
  EXPECT_EQ(still_fine.stats().publishes, 0u);
}

TEST_F(ServerTest, UnknownCommandGetsAnErrorFrameWithoutADrop) {
  net::TcpSocket sock = RawConnect();
  std::string stream;
  AppendFrame(&stream, hub::remote::EncodeHello());
  std::string cmd;
  AppendVarint(&cmd, 99);  // a command this build does not know
  AppendFrame(&stream, cmd);
  sock.SendAll(stream.data(), stream.size());
  // Expect two response frames (hello ok + command error) and no EOF.
  FrameDecoder dec;
  std::vector<std::string> responses;
  char buf[4096];
  while (responses.size() < 2) {
    const std::size_t n = sock.Recv(buf, sizeof buf);
    ASSERT_GT(n, 0u) << "server closed instead of answering";
    dec.Feed(buf, n);
    std::string payload;
    while (dec.Next(&payload) == FrameDecoder::Result::kFrame) {
      responses.push_back(payload);
    }
  }
  // Second response opens with status kError.
  std::size_t pos = 0;
  std::uint64_t status = 0;
  ASSERT_EQ(DecodeVarint(responses[1].data(), responses[1].size(), &pos,
                         &status),
            DecodeStatus::kOk);
  EXPECT_EQ(status, 1u);
  EXPECT_EQ(server_->stats().conn_errors, 0u)
      << "unknown commands are forward-compat, not protocol errors";
}

// ---- remote-vs-in-process identity ------------------------------------------

MessageTaintRecord MakeRecord(Rank src, Rank dest, std::int64_t tag,
                              std::uint64_t seq, std::uint64_t salt) {
  MessageTaintRecord rec;
  rec.id = {src, dest, tag, seq};
  Rng rng(salt);
  rec.byte_masks.resize(1 + (salt % 64));
  for (auto& m : rec.byte_masks) {
    m = static_cast<std::uint8_t>(rng.UniformU64(0, 255));
  }
  rec.src_vaddr = 0x1000 + salt;
  rec.send_instret = 40 + salt;
  return rec;
}

void ExpectSameStats(const HubStats& a, const HubStats& b) {
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.applied_bytes, b.applied_bytes);
  EXPECT_EQ(a.publish_drops, b.publish_drops);
  EXPECT_EQ(a.unavailable_polls, b.unavailable_polls);
  EXPECT_EQ(a.abandoned_polls, b.abandoned_polls);
  EXPECT_EQ(a.taint_lost, b.taint_lost);
  EXPECT_EQ(a.lost_taint_bytes, b.lost_taint_bytes);
}

void ExpectSameTransfers(const std::vector<TransferLogEntry>& a,
                         const std::vector<TransferLogEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id.Key(), b[i].id.Key());
    EXPECT_EQ(a[i].tainted_bytes, b[i].tainted_bytes);
    EXPECT_EQ(a[i].payload_bytes, b[i].payload_bytes);
    EXPECT_EQ(a[i].src_vaddr, b[i].src_vaddr);
    EXPECT_EQ(a[i].dest_vaddr, b[i].dest_vaddr);
    EXPECT_EQ(a[i].send_instret, b[i].send_instret);
    EXPECT_EQ(a[i].recv_instret, b[i].recv_instret);
    EXPECT_EQ(a[i].hub_seq, b[i].hub_seq);
  }
}

/// Drive the same operation script against both hubs and compare every
/// observable after every step.
void RunIdentityScript(hub::HubService& local, hub::HubService& remote,
                       const HubFaultModel& fault) {
  local.SetFaultModel(fault);
  remote.SetFaultModel(fault);
  local.Clear();
  remote.Clear();

  for (std::uint64_t round = 0; round < 3; ++round) {
    // Publish a clutch of records (varied sizes), poll some back, abandon
    // one, leave one unpolled.
    for (std::uint64_t k = 0; k < 6; ++k) {
      const auto rec = MakeRecord(/*src=*/static_cast<Rank>(k % 3),
                                  /*dest=*/static_cast<Rank>((k + 1) % 3),
                                  /*tag=*/static_cast<std::int64_t>(k) - 2,
                                  /*seq=*/round, /*salt=*/round * 17 + k);
      local.Publish(rec);
      remote.Publish(rec);
    }
    for (std::uint64_t k = 0; k < 4; ++k) {
      const MessageId id{static_cast<Rank>(k % 3),
                         static_cast<Rank>((k + 1) % 3),
                         static_cast<std::int64_t>(k) - 2, round};
      const RecvContext ctx{0x2000 + k, 90 + k};
      const PollAttempt a = local.TryPoll(id, ctx);
      const PollAttempt b = remote.TryPoll(id, ctx);
      ASSERT_EQ(a.status, b.status) << "round " << round << " poll " << k;
      ASSERT_EQ(a.record.has_value(), b.record.has_value());
      if (a.record.has_value()) {
        EXPECT_EQ(a.record->byte_masks, b.record->byte_masks);
        EXPECT_EQ(a.record->src_vaddr, b.record->src_vaddr);
        EXPECT_EQ(a.record->send_instret, b.record->send_instret);
      }
    }
    {
      const MessageId id{static_cast<Rank>(1), static_cast<Rank>(2), 2, round};
      local.AbandonPoll(id);
      remote.AbandonPoll(id);
    }
    ExpectSameStats(local.stats(), remote.stats());
    ExpectSameTransfers(local.transfer_log(), remote.transfer_log());
    EXPECT_EQ(local.SawTransfer(0, 1), remote.SawTransfer(0, 1));
    EXPECT_EQ(local.SawTransfer(2, 0), remote.SawTransfer(2, 0));
  }
  ExpectSameTransfers(local.DrainTransferLog(), remote.DrainTransferLog());
  EXPECT_TRUE(local.transfer_log().empty());
  EXPECT_TRUE(remote.transfer_log().empty());
}

TEST_F(ServerTest, RemoteHubMatchesInProcessHealthy) {
  TaintHub local;
  RemoteTaintHub remote({endpoint_});
  RunIdentityScript(local, remote, HubFaultModel{});
}

TEST_F(ServerTest, RemoteHubMatchesInProcessUnderFaultModel) {
  TaintHub local;
  RemoteTaintHub remote({endpoint_});
  HubFaultModel fault;
  fault.publish_drop_prob = 0.4;
  fault.visibility_delay = 2;
  fault.outage_start = 10;
  fault.outage_end = 14;
  fault.poll_retries = 1;
  fault.seed = 99;
  RunIdentityScript(local, remote, fault);
  // Clear() must reseed the drop tape identically on both sides: a second
  // pass of the same script sees the same drops again.
  RunIdentityScript(local, remote, fault);
}

TEST_F(ServerTest, TwoEndpointClientShardsTheKeySpace) {
  HubServer second({});
  second.Start();
  RemoteTaintHub remote(
      {endpoint_, "127.0.0.1:" + std::to_string(second.port())});
  EXPECT_EQ(remote.num_shards(), 2u);
  std::uint64_t published = 0;
  for (std::uint64_t k = 0; k < 32; ++k) {
    remote.Publish(MakeRecord(0, 1, static_cast<std::int64_t>(k), k, k));
    ++published;
  }
  EXPECT_EQ(remote.stats().publishes, published)
      << "stats() must sum across shards";
  // Every record is pollable wherever it was sharded to.
  for (std::uint64_t k = 0; k < 32; ++k) {
    const PollAttempt a =
        remote.TryPoll({0, 1, static_cast<std::int64_t>(k), k}, {});
    EXPECT_EQ(a.status, PollStatus::kHit) << "key " << k;
  }
  const std::uint64_t total_published =
      server_->stats().records_published + second.stats().records_published;
  EXPECT_EQ(total_published, published);
  EXPECT_GT(server_->stats().records_published, 0u);
  EXPECT_GT(second.stats().records_published, 0u)
      << "32 mixed keys should land on both shards";
}

// ---- wire instrumentation and the hub clock ---------------------------------

TEST_F(ServerTest, WireMetricsLandInTheGlobalRegistry) {
  obs::Registry& reg = obs::Registry::Global();
  reg.Reset();
  {
    RemoteTaintHub client({endpoint_});
    MessageTaintRecord rec;
    rec.id = {0, 1, 9, 0};
    rec.byte_masks = {0x0f, 0xf0};
    client.Publish(std::move(rec));
    const PollAttempt attempt = client.TryPoll({0, 1, 9, 0}, {});
    EXPECT_EQ(attempt.status, PollStatus::kHit);
  }
  const std::string text = reg.ToPrometheus();
  double v = 0.0;
  ASSERT_TRUE(obs::PrometheusValue(text, "hub_bytes_in_total", &v)) << text;
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(obs::PrometheusValue(text, "hub_bytes_out_total", &v));
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(obs::PrometheusValue(text, "hub_client_bytes_sent_total", &v));
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(obs::PrometheusValue(text, "hub_client_bytes_recv_total", &v));
  EXPECT_GT(v, 0.0);
  // Per-command latency histograms carry the cmd label; the publish and
  // poll paths must each have observed at least one round trip.
  ASSERT_TRUE(obs::PrometheusValue(
      text, "hub_cmd_ns_count{cmd=\"publish-batch\"}", &v))
      << text;
  EXPECT_GE(v, 1.0);
  ASSERT_TRUE(
      obs::PrometheusValue(text, "hub_cmd_ns_count{cmd=\"try-poll\"}", &v));
  EXPECT_GE(v, 1.0);
  ASSERT_TRUE(
      obs::PrometheusValue(text, "hub_publish_batch_records_count", &v));
  EXPECT_GE(v, 1.0);
  reg.Reset();
}

TEST_F(ServerTest, ProbeHubClockYieldsAPlausibleOffset) {
  const hub::remote::HubClockProbe probe =
      hub::remote::ProbeHubClock(endpoint_);
  ASSERT_TRUE(probe.ok) << "a same-build hubd must advertise its clock";
  // Same host, same clock: the measured offset is bounded by the RTT plus
  // scheduling noise. A loose 5s bound still catches unit mixups (ns vs us)
  // and sign errors.
  EXPECT_LT(probe.offset_us, 5'000'000);
  EXPECT_GT(probe.offset_us, -5'000'000);
  EXPECT_LT(probe.rtt_us, 5'000'000u);
  EXPECT_THROW(hub::remote::ProbeHubClock("127.0.0.1:1"), ConfigError);
}

}  // namespace
}  // namespace chaser

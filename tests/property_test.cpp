// Property-based tests (parameterized sweeps over random seeds):
//
//  1. ISA semantics: random guest programs produce identical final state
//     under the TB-cached TCG execution engine and under an independent
//     reference interpreter written directly against the ISA definition.
//  2. Flush equivalence: flushing the translation cache at every quantum
//     never changes semantics (the mechanism Chaser's JIT injection uses).
//  3. Taint soundness: flip one input bit and mark it tainted — every bit
//     of final state that differs from the clean run must carry taint
//     (the engine over-approximates, never under-approximates).
//  4. Execution determinism: the same program twice gives identical state.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <memory>

#include "common/rng.h"
#include "core/corrupt.h"
#include "guest/builder.h"
#include "tcg/ir.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using guest::Cond;
using guest::F;
using guest::Instruction;
using guest::MemSize;
using guest::Opcode;
using guest::Program;
using guest::ProgramBuilder;
using guest::R;

constexpr std::uint64_t kScratchWords = 32;

struct GeneratedProgram {
  Program program;
  GuestAddr scratch = 0;
  GuestAddr input = 0;
};

std::deque<GeneratedProgram>& Pool() {
  static std::deque<GeneratedProgram> pool;
  return pool;
}

/// Generates a random, always-terminating guest program.
///
///  * Integer/FP arithmetic over data registers r1, r4, r5, r6 / f0..f5.
///  * In-bounds loads/stores to a 32-word scratch buffer; address indices are
///    derived ONLY from r2/r3, which are never written after setup, so
///    addresses stay clean — required for the exact taint-soundness check.
///  * Compares and forward-only branches (no loops -> guaranteed exit).
///  * Unsigned division with the divisor OR-ed with 1 (no traps).
///
/// r10 = scratch base, r11 = address temp, r9 = setup temp.
GeneratedProgram& RandomProgram(std::uint64_t seed, bool with_fp,
                                bool with_branches) {
  Rng rng(seed * 3 + (with_fp ? 1 : 0) + (with_branches ? 7 : 0));
  ProgramBuilder b("rand");
  GeneratedProgram gen;
  gen.scratch = b.Bss("scratch", kScratchWords * 8);
  const std::vector<std::uint64_t> init{0x0123456789abcdefull};
  gen.input = b.DataU64("input", init);

  const std::vector<std::uint8_t> data_regs{1, 4, 5, 6};
  const std::vector<std::uint8_t> index_regs{2, 3};
  const std::vector<std::uint8_t> all_src{1, 2, 3, 4, 5, 6};
  const std::vector<std::uint8_t> fp_regs{0, 1, 2, 3, 4, 5};

  // ---- Setup ----------------------------------------------------------------
  b.MovI(R(10), static_cast<std::int64_t>(gen.scratch));
  b.MovI(R(9), static_cast<std::int64_t>(gen.input));
  b.Ld(R(1), R(9), 0);  // r1 carries the (possibly corrupted) input
  for (const std::uint8_t r : {2, 3, 4, 5, 6}) {
    b.MovI(R(r), static_cast<std::int64_t>(rng.UniformU64(0, 1u << 20)));
  }
  if (with_fp) {
    b.CvtIF(F(0), R(1));  // link the input into the FP domain
    for (const std::uint8_t f : {1, 2, 3, 4, 5}) {
      b.FmovI(F(f), rng.UniformDouble(1.0, 2.0));
    }
  }

  // Emit address computation into r11 from a clean index register.
  const auto emit_addr = [&] {
    const std::uint8_t idx = rng.Pick(index_regs);
    b.AndI(R(11), R(idx), static_cast<std::int64_t>(kScratchWords - 1));
    b.ShlI(R(11), R(11), 3);
    b.Add(R(11), R(10), R(11));
    // Mutate the index register (stays clean: constant arithmetic only).
    b.AddI(R(idx), R(idx), static_cast<std::int64_t>(rng.UniformU64(1, 7)));
  };

  // ---- Body ------------------------------------------------------------------
  struct Pending {
    ProgramBuilder::Label label;
    int remaining;
  };
  std::vector<Pending> pending;
  const int body = 80;
  for (int i = 0; i < body; ++i) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (--it->remaining <= 0) {
        b.Bind(it->label);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    const std::uint8_t rd = rng.Pick(data_regs);
    const std::uint8_t rs1 = rng.Pick(all_src);
    const std::uint8_t rs2 = rng.Pick(all_src);
    switch (rng.UniformU64(0, with_fp ? 13 : 9)) {
      case 0:
        b.Add(R(rd), R(rs1), R(rs2));
        break;
      case 1:
        b.Sub(R(rd), R(rs1), R(rs2));
        break;
      case 2:
        b.Mul(R(rd), R(rs1), R(rs2));
        break;
      case 3:
        b.Xor(R(rd), R(rs1), R(rs2));
        break;
      case 4: {
        const auto sh = static_cast<std::int64_t>(rng.UniformU64(0, 63));
        if (rng.Bernoulli(0.5)) {
          b.ShlI(R(rd), R(rs1), sh);
        } else {
          b.SarI(R(rd), R(rs1), sh);
        }
        break;
      }
      case 5:
        // Guarded unsigned division: divisor | 1 is never zero.
        b.OrI(R(11), R(rs2), 1);
        b.DivU(R(rd), R(rs1), R(11));
        break;
      case 6:
        emit_addr();
        b.Ld(R(rd), R(11), 0,
             rng.Bernoulli(0.3) ? MemSize::k4 : MemSize::k8);
        break;
      case 7:
        emit_addr();
        b.St(R(11), 0, R(rs1));
        break;
      case 8:
        b.Mov(R(rd), R(rs1));
        break;
      case 9: {
        b.Cmp(R(rs1), R(rs2));
        if (with_branches && i + 2 < body) {
          auto label = b.NewLabel();
          const auto dist =
              static_cast<int>(rng.UniformU64(1, std::min(body - i - 1, 10)));
          b.Br(static_cast<Cond>(rng.UniformU64(0, 7)), label);
          pending.push_back({label, dist});
        }
        break;
      }
      case 10: {
        const std::uint8_t fd = rng.Pick(fp_regs);
        const std::uint8_t fa = rng.Pick(fp_regs);
        const std::uint8_t fb = rng.Pick(fp_regs);
        switch (rng.UniformU64(0, 3)) {
          case 0: b.Fadd(F(fd), F(fa), F(fb)); break;
          case 1: b.Fsub(F(fd), F(fa), F(fb)); break;
          case 2: b.Fmul(F(fd), F(fa), F(fb)); break;
          case 3: b.Fmin(F(fd), F(fa), F(fb)); break;
        }
        break;
      }
      case 11:
        emit_addr();
        b.Fld(F(rng.Pick(fp_regs)), R(11), 0);
        break;
      case 12:
        emit_addr();
        b.Fst(R(11), 0, F(rng.Pick(fp_regs)));
        break;
      case 13:
        b.Fabs(F(rng.Pick(fp_regs)), F(rng.Pick(fp_regs)));
        break;
    }
  }
  for (const Pending& p : pending) b.Bind(p.label);
  b.Exit(0);
  gen.program = b.Finalize();
  Pool().push_back(std::move(gen));
  return Pool().back();
}

// ---- Reference interpreter -----------------------------------------------------
// Independent re-implementation of the ISA (no TCG, no TBs): a direct
// fetch-decode-execute loop against the Instruction records.

struct RefMachine {
  std::uint64_t r[16] = {};
  std::uint64_t f[16] = {};  // bit patterns
  std::uint64_t flags = 0;
  std::map<GuestAddr, std::uint8_t> mem;
  bool exited = false;

  std::uint64_t LoadBytes(GuestAddr a, unsigned size) const {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i) {
      const auto it = mem.find(a + i);
      const std::uint8_t byte = it == mem.end() ? 0 : it->second;
      v |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return v;
  }
  void StoreBytes(GuestAddr a, unsigned size, std::uint64_t v) {
    for (unsigned i = 0; i < size; ++i) {
      mem[a + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  double F(unsigned i) const { return std::bit_cast<double>(f[i]); }
  void SetF(unsigned i, double v) { f[i] = std::bit_cast<std::uint64_t>(v); }
};

void RefRun(const Program& p, RefMachine& m, std::uint64_t max_steps = 1u << 20) {
  // Load the image: data segment bytes; bss/stack read as zero by default.
  for (std::size_t i = 0; i < p.data.size(); ++i) {
    m.mem[guest::kDataBase + i] = p.data[i];
  }
  m.r[guest::kSpReg] = guest::kStackTop - 64;
  std::uint64_t pc = p.entry;
  for (std::uint64_t step = 0; step < max_steps && !m.exited; ++step) {
    ASSERT_LT(pc, p.text.size()) << "reference: pc out of range";
    const Instruction& in = p.text[pc];
    std::uint64_t next = pc + 1;
    const auto rhs = [&]() -> std::uint64_t {
      return in.use_imm ? static_cast<std::uint64_t>(in.imm) : m.r[in.rs2];
    };
    switch (in.op) {
      case Opcode::kNop: break;
      case Opcode::kMovRR: m.r[in.rd] = m.r[in.rs1]; break;
      case Opcode::kMovRI: m.r[in.rd] = static_cast<std::uint64_t>(in.imm); break;
      case Opcode::kLd:
      case Opcode::kLdS: {
        const auto size = static_cast<unsigned>(in.size);
        std::uint64_t v = m.LoadBytes(m.r[in.rs1] + in.imm, size);
        if (in.op == Opcode::kLdS) {
          const unsigned sh = 64 - 8 * size;
          v = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(v << sh) >> sh);
        }
        m.r[in.rd] = v;
        break;
      }
      case Opcode::kSt:
        m.StoreBytes(m.r[in.rs1] + in.imm, static_cast<unsigned>(in.size),
                     m.r[in.rs2]);
        break;
      case Opcode::kPush:
        m.r[guest::kSpReg] -= 8;
        m.StoreBytes(m.r[guest::kSpReg], 8, m.r[in.rs1]);
        break;
      case Opcode::kPop:
        m.r[in.rd] = m.LoadBytes(m.r[guest::kSpReg], 8);
        m.r[guest::kSpReg] += 8;
        break;
      case Opcode::kAdd: m.r[in.rd] = m.r[in.rs1] + rhs(); break;
      case Opcode::kSub: m.r[in.rd] = m.r[in.rs1] - rhs(); break;
      case Opcode::kMul: m.r[in.rd] = m.r[in.rs1] * rhs(); break;
      case Opcode::kDivU: m.r[in.rd] = m.r[in.rs1] / rhs(); break;
      case Opcode::kRemU: m.r[in.rd] = m.r[in.rs1] % rhs(); break;
      case Opcode::kDivS:
        m.r[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(m.r[in.rs1]) /
            static_cast<std::int64_t>(rhs()));
        break;
      case Opcode::kRemS:
        m.r[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(m.r[in.rs1]) %
            static_cast<std::int64_t>(rhs()));
        break;
      case Opcode::kAnd: m.r[in.rd] = m.r[in.rs1] & rhs(); break;
      case Opcode::kOr: m.r[in.rd] = m.r[in.rs1] | rhs(); break;
      case Opcode::kXor: m.r[in.rd] = m.r[in.rs1] ^ rhs(); break;
      case Opcode::kShl: m.r[in.rd] = m.r[in.rs1] << (rhs() & 63); break;
      case Opcode::kShr: m.r[in.rd] = m.r[in.rs1] >> (rhs() & 63); break;
      case Opcode::kSar:
        m.r[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(m.r[in.rs1]) >> (rhs() & 63));
        break;
      case Opcode::kNot: m.r[in.rd] = ~m.r[in.rs1]; break;
      case Opcode::kNeg: m.r[in.rd] = 0 - m.r[in.rs1]; break;
      case Opcode::kCmp: m.flags = tcg::ComputeFlags(m.r[in.rs1], rhs()); break;
      case Opcode::kJmp: next = static_cast<std::uint64_t>(in.imm); break;
      case Opcode::kBr:
        if (tcg::CondHolds(in.cond, m.flags)) next = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::kCall:
      case Opcode::kCallR:
        m.r[guest::kSpReg] -= 8;
        m.StoreBytes(m.r[guest::kSpReg], 8, next);
        next = in.op == Opcode::kCall ? static_cast<std::uint64_t>(in.imm)
                                      : m.r[in.rs1];
        break;
      case Opcode::kRet:
        next = m.LoadBytes(m.r[guest::kSpReg], 8);
        m.r[guest::kSpReg] += 8;
        break;
      case Opcode::kFmovRR: m.f[in.rd] = m.f[in.rs1]; break;
      case Opcode::kFmovI: m.SetF(in.rd, in.fimm); break;
      case Opcode::kFld: m.f[in.rd] = m.LoadBytes(m.r[in.rs1] + in.imm, 8); break;
      case Opcode::kFst: m.StoreBytes(m.r[in.rs1] + in.imm, 8, m.f[in.rs2]); break;
      case Opcode::kFadd: m.SetF(in.rd, m.F(in.rs1) + m.F(in.rs2)); break;
      case Opcode::kFsub: m.SetF(in.rd, m.F(in.rs1) - m.F(in.rs2)); break;
      case Opcode::kFmul: m.SetF(in.rd, m.F(in.rs1) * m.F(in.rs2)); break;
      case Opcode::kFdiv: m.SetF(in.rd, m.F(in.rs1) / m.F(in.rs2)); break;
      case Opcode::kFneg: m.SetF(in.rd, -m.F(in.rs1)); break;
      case Opcode::kFabs: m.SetF(in.rd, std::fabs(m.F(in.rs1))); break;
      case Opcode::kFsqrt: m.SetF(in.rd, std::sqrt(m.F(in.rs1))); break;
      case Opcode::kFmin: m.SetF(in.rd, std::fmin(m.F(in.rs1), m.F(in.rs2))); break;
      case Opcode::kFmax: m.SetF(in.rd, std::fmax(m.F(in.rs1), m.F(in.rs2))); break;
      case Opcode::kFcmp: m.flags = tcg::ComputeFlagsF(m.F(in.rs1), m.F(in.rs2)); break;
      case Opcode::kCvtIF:
        m.SetF(in.rd, static_cast<double>(static_cast<std::int64_t>(m.r[in.rs1])));
        break;
      case Opcode::kCvtFI:
        m.r[in.rd] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(m.F(in.rs1)));
        break;
      case Opcode::kFbits: m.r[in.rd] = m.f[in.rs1]; break;
      case Opcode::kBitsF: m.f[in.rd] = m.r[in.rs1]; break;
      case Opcode::kSyscall:
        // The generator only emits Exit (r7 == kExit).
        ASSERT_EQ(m.r[7], static_cast<std::uint64_t>(guest::Sys::kExit));
        m.exited = true;
        break;
      case Opcode::kHalt:
        FAIL() << "reference: unexpected halt";
        break;
    }
    pc = next;
  }
  ASSERT_TRUE(m.exited) << "reference interpreter did not terminate";
}

// ---- Property 1+2: engine vs reference, flush equivalence --------------------------

class SemanticsProperty : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsProperty, EngineMatchesReferenceInterpreter) {
  GeneratedProgram& gen =
      RandomProgram(static_cast<std::uint64_t>(GetParam()), true, true);

  vm::Vm vm;
  vm.StartProcess(gen.program);
  vm.RunToCompletion();
  ASSERT_EQ(vm.termination(), vm::TerminationKind::kExited);

  RefMachine ref;
  RefRun(gen.program, ref);
  if (::testing::Test::HasFatalFailure()) return;

  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(vm.cpu().IntReg(i), ref.r[i]) << "r" << i;
    EXPECT_EQ(vm.cpu().env[tcg::EnvFp(i)], ref.f[i]) << "f" << i;
  }
  std::vector<std::uint8_t> engine_mem(kScratchWords * 8);
  ASSERT_TRUE(vm.memory().ReadBytes(gen.scratch, engine_mem.data(), engine_mem.size()));
  for (std::uint64_t i = 0; i < engine_mem.size(); ++i) {
    const auto it = ref.mem.find(gen.scratch + i);
    const std::uint8_t expected = it == ref.mem.end() ? 0 : it->second;
    EXPECT_EQ(engine_mem[i], expected) << "scratch byte " << i;
  }
}

TEST_P(SemanticsProperty, FlushEveryQuantumIsEquivalent) {
  GeneratedProgram& gen =
      RandomProgram(static_cast<std::uint64_t>(GetParam()), true, true);

  vm::Vm plain;
  plain.StartProcess(gen.program);
  plain.RunToCompletion();

  vm::Vm flushy;
  flushy.StartProcess(gen.program);
  while (flushy.run_state() == vm::RunState::kRunnable) {
    flushy.Run(13);
    flushy.FlushTbCache();
  }
  EXPECT_EQ(plain.instret(), flushy.instret());
  for (unsigned i = 0; i < tcg::kNumEnvSlots; ++i) {
    EXPECT_EQ(plain.cpu().env[i], flushy.cpu().env[i]) << "env slot " << i;
  }
}

TEST_P(SemanticsProperty, ExecutionIsDeterministic) {
  GeneratedProgram& gen =
      RandomProgram(static_cast<std::uint64_t>(GetParam()), true, true);
  vm::Vm a, b;
  a.StartProcess(gen.program);
  a.RunToCompletion();
  b.StartProcess(gen.program);
  b.RunToCompletion();
  EXPECT_EQ(a.instret(), b.instret());
  EXPECT_EQ(a.cpu().env, b.cpu().env);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SemanticsProperty, ::testing::Range(0, 40));

// ---- Property 3: taint soundness ------------------------------------------------------

class TaintSoundnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(TaintSoundnessProperty, DifferingBitsAreAlwaysTainted) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  // Straight-line only: control-flow taint is not tracked (by design, as in
  // DECAF), so branch-divergent programs may differ in untainted state.
  GeneratedProgram& gen = RandomProgram(seed, true, false);
  Rng rng(seed ^ 0xabcdef);
  const unsigned flip_bit = static_cast<unsigned>(rng.UniformU64(0, 63));

  // Clean run.
  vm::Vm clean;
  clean.StartProcess(gen.program);
  clean.RunToCompletion();
  ASSERT_EQ(clean.termination(), vm::TerminationKind::kExited);

  // Faulty run: corrupt one bit of the input cell and mark it tainted.
  vm::Vm faulty;
  faulty.taint().set_enabled(true);
  faulty.StartProcess(gen.program);
  core::CorruptMemory(faulty, gen.input, 8, 1ull << flip_bit);
  faulty.RunToCompletion();
  ASSERT_EQ(faulty.termination(), vm::TerminationKind::kExited);

  // Every differing register bit must be tainted.
  for (unsigned i = 0; i < 16; ++i) {
    {
      const std::uint64_t diff = clean.cpu().IntReg(i) ^ faulty.cpu().IntReg(i);
      const std::uint64_t taint = faulty.taint().GetValTaint(tcg::EnvInt(i));
      EXPECT_EQ(diff & ~taint, 0u)
          << "under-tainted r" << i << " diff=" << std::hex << diff
          << " taint=" << taint;
    }
    {
      const std::uint64_t diff =
          clean.cpu().env[tcg::EnvFp(i)] ^ faulty.cpu().env[tcg::EnvFp(i)];
      const std::uint64_t taint = faulty.taint().GetValTaint(tcg::EnvFp(i));
      EXPECT_EQ(diff & ~taint, 0u)
          << "under-tainted f" << i << " diff=" << std::hex << diff
          << " taint=" << taint;
    }
  }
  // Every differing scratch-memory bit must be tainted.
  for (std::uint64_t off = 0; off < kScratchWords * 8; ++off) {
    PhysAddr pa_clean = 0, pa_faulty = 0;
    const auto vc = clean.memory().Load(gen.scratch + off, 1, &pa_clean);
    const auto vf = faulty.memory().Load(gen.scratch + off, 1, &pa_faulty);
    ASSERT_TRUE(vc && vf);
    const auto diff = static_cast<std::uint8_t>(*vc ^ *vf);
    const std::uint8_t taint = faulty.taint().GetMemTaintByte(pa_faulty);
    EXPECT_EQ(diff & ~taint, 0) << "under-tainted scratch byte " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TaintSoundnessProperty, ::testing::Range(0, 40));

// ---- Property 4: elastic taint is exact ---------------------------------------------

class ElasticTaintProperty : public ::testing::TestWithParam<int> {};

TEST_P(ElasticTaintProperty, SkippingWhileInactiveChangesNothing) {
  // The DECAF++-style elastic mode skips the taint path while nothing is
  // tainted. Force the full path in a second run by tainting a register the
  // generated program never touches (r8): all *other* taint state and all
  // values must be identical.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  GeneratedProgram& gen = RandomProgram(seed, true, false);
  Rng rng(seed ^ 0x517e);
  const unsigned flip_bit = static_cast<unsigned>(rng.UniformU64(0, 63));
  const std::uint64_t fire_after = rng.UniformU64(0, 40);

  auto run = [&](bool force_active) {
    auto vm = std::make_unique<vm::Vm>();
    vm->taint().set_enabled(true);
    vm->StartProcess(gen.program);
    if (force_active) {
      // r8 is never read or written by generated code; tainting it keeps
      // Active() true from the first instruction.
      vm->taint().TaintSourceRegister(tcg::EnvInt(8), ~std::uint64_t{0});
    }
    // Let some instructions run on the (possibly) inactive path first.
    vm->Run(fire_after);
    if (vm->run_state() == vm::RunState::kRunnable) {
      core::CorruptMemory(*vm, gen.input, 8, 1ull << flip_bit);
    }
    vm->RunToCompletion();
    return vm;
  };

  const auto elastic = run(false);
  const auto forced = run(true);
  ASSERT_EQ(elastic->termination(), vm::TerminationKind::kExited);
  ASSERT_EQ(forced->termination(), vm::TerminationKind::kExited);

  for (unsigned i = 0; i < tcg::kNumEnvSlots; ++i) {
    EXPECT_EQ(elastic->cpu().env[i], forced->cpu().env[i]) << "env " << i;
    if (i == tcg::EnvInt(8)) continue;  // the forced-active marker itself
    EXPECT_EQ(elastic->taint().GetValTaint(i), forced->taint().GetValTaint(i))
        << "taint of env slot " << i;
  }
  for (std::uint64_t off = 0; off < kScratchWords * 8; ++off) {
    const auto pa = elastic->memory().Translate(gen.scratch + off);
    const auto pb = forced->memory().Translate(gen.scratch + off);
    ASSERT_TRUE(pa && pb);
    EXPECT_EQ(elastic->taint().GetMemTaintByte(*pa),
              forced->taint().GetMemTaintByte(*pb))
        << "memory taint at scratch+" << off;
  }
  EXPECT_EQ(elastic->taint().stats().tainted_reads,
            forced->taint().stats().tainted_reads);
  EXPECT_EQ(elastic->taint().stats().tainted_writes,
            forced->taint().stats().tainted_writes);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ElasticTaintProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace chaser

// Second-wave edge-case tests: VM lifecycle corners, MPI misuse paths,
// Chaser options (instruction-granularity tracing, disarm, capacity),
// and app robustness across configurations.
#include <gtest/gtest.h>

#include <deque>

#include "apps/app.h"
#include "common/error.h"
#include "core/chaser.h"
#include "campaign/campaign.h"
#include "campaign/report.h"
#include "core/chaser_mpi.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "guest/builder.h"
#include "mpi/cluster.h"
#include "vm/vm.h"

namespace chaser {
namespace {

using guest::Cond;
using guest::F;
using guest::MpiDatatype;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

std::deque<guest::Program>& Programs() {
  static std::deque<guest::Program> programs;
  return programs;
}

// ---- VM lifecycle ----------------------------------------------------------

TEST(VmEdge, RunWithoutProcessThrows) {
  vm::Vm vm;
  EXPECT_THROW(vm.Run(10), ConfigError);
}

TEST(VmEdge, RestartResetsEverything) {
  ProgramBuilder b("t");
  const GuestAddr cell = b.Bss("cell", 8);
  b.MovI(R(9), static_cast<std::int64_t>(cell));
  b.Ld(R(8), R(9), 0);   // reads 0 on a fresh start
  b.AddI(R(8), R(8), 1);
  b.St(R(9), 0, R(8));
  b.Exit(0);
  Programs().push_back(b.Finalize());
  const guest::Program& p = Programs().back();

  vm::Vm vm;
  vm.taint().set_enabled(true);
  for (int round = 0; round < 3; ++round) {
    vm.StartProcess(p);
    // Pollute taint before running; StartProcess of the next round clears it.
    vm.taint().TaintSourceRegister(tcg::EnvInt(3), 0xff);
    vm.RunToCompletion();
    EXPECT_EQ(vm.cpu().IntReg(8), 1u) << "memory leaked across restart";
  }
}

TEST(VmEdge, BlockedWithoutExtensionOnlyViaMpi) {
  // A plain VM has no blocking syscalls; RunToCompletion always terminates.
  ProgramBuilder b("t");
  b.Nop();
  b.Exit(0);
  Programs().push_back(b.Finalize());
  vm::Vm vm;
  vm.StartProcess(Programs().back());
  EXPECT_EQ(vm.RunToCompletion(), vm::RunState::kTerminated);
}

TEST(VmEdge, InstretSampleFiresAtInterval) {
  ProgramBuilder b("t");
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 1000);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  vm::Vm vm;
  std::vector<std::uint64_t> fired;
  vm.SetInstretSample(100, [&](vm::Vm&, std::uint64_t instret) {
    fired.push_back(instret);
  });
  vm.StartProcess(Programs().back());
  vm.RunToCompletion();
  ASSERT_GE(fired.size(), 25u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GT(fired[i], fired[i - 1]);
    EXPECT_NEAR(static_cast<double>(fired[i] - fired[i - 1]), 100.0, 70.0);
  }
}

TEST(VmEdge, SignalAfterTerminationIsIgnored) {
  ProgramBuilder b("t");
  b.Exit(7);
  Programs().push_back(b.Finalize());
  vm::Vm vm;
  vm.StartProcess(Programs().back());
  vm.RunToCompletion();
  vm.RaiseSignal(vm::GuestSignal::kSegv, "late");
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.exit_code(), 7);
}

TEST(VmEdge, StackOverflowSegfaults) {
  // Recurse forever: the stack region is finite, push eventually faults.
  ProgramBuilder b("t");
  auto fn = b.NewLabel("fn");
  b.Bind(fn);
  b.Push(R(1));
  b.Call(fn);
  Programs().push_back(b.Finalize());
  vm::Vm vm;
  vm.StartProcess(Programs().back());
  vm.RunToCompletion();
  EXPECT_EQ(vm.signal(), vm::GuestSignal::kSegv);
}

TEST(VmEdge, FallingOffTextSegfaults) {
  ProgramBuilder b("t");
  b.Nop();  // no exit: pc runs past the end
  Programs().push_back(b.Finalize());
  vm::Vm vm;
  vm.StartProcess(Programs().back());
  vm.RunToCompletion();
  EXPECT_EQ(vm.signal(), vm::GuestSignal::kSegv);
  EXPECT_NE(vm.termination_message().find("jump outside text"), std::string::npos);
}

// ---- MPI misuse paths ---------------------------------------------------------

const guest::Program& SelfSendProgram() {
  static const guest::Program* p = [] {
    ProgramBuilder b("selfsend");
    const std::vector<std::uint64_t> payload{0xbeef};
    const GuestAddr src = b.DataU64("src", payload);
    const GuestAddr dst = b.Bss("dst", 8);
    b.Sys(Sys::kMpiInit);
    b.MovI(R(1), static_cast<std::int64_t>(src));
    b.MovI(R(2), 1);
    b.MovI(R(3), static_cast<std::int64_t>(MpiDatatype::kInt64));
    b.MovI(R(4), 0);  // to myself
    b.MovI(R(5), 9);
    b.Sys(Sys::kMpiSend);
    b.MovI(R(1), static_cast<std::int64_t>(dst));
    b.MovI(R(2), 1);
    b.MovI(R(3), static_cast<std::int64_t>(MpiDatatype::kInt64));
    b.MovI(R(4), 0);
    b.MovI(R(5), 9);
    b.Sys(Sys::kMpiRecv);
    b.MovI(R(9), static_cast<std::int64_t>(dst));
    b.Ld(R(8), R(9), 0);
    b.Sys(Sys::kMpiFinalize);
    b.Exit(0);
    Programs().push_back(b.Finalize());
    return &Programs().back();
  }();
  return *p;
}

TEST(MpiEdge, SelfSendWorks) {
  mpi::Cluster cluster({.num_ranks = 1});
  cluster.Start(SelfSendProgram());
  ASSERT_TRUE(cluster.Run().completed);
  EXPECT_EQ(cluster.rank_vm(0).cpu().IntReg(8), 0xbeefu);
}

TEST(MpiEdge, ReduceInvalidOpIsMpiError) {
  ProgramBuilder b("badop");
  const GuestAddr buf = b.Bss("buf", 8);
  b.Sys(Sys::kMpiInit);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), static_cast<std::int64_t>(buf));
  b.MovI(R(3), 1);
  b.MovI(R(4), static_cast<std::int64_t>(MpiDatatype::kDouble));
  b.MovI(R(5), 99);  // no such reduction op
  b.MovI(R(6), 0);
  b.Sys(Sys::kMpiReduce);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  mpi::Cluster cluster({.num_ranks = 1});
  cluster.Start(Programs().back());
  const mpi::JobResult job = cluster.Run();
  EXPECT_EQ(job.first_failure_kind, vm::TerminationKind::kMpiError);
  EXPECT_NE(job.first_failure_message.find("invalid op"), std::string::npos);
}

TEST(MpiEdge, ShorterMessageThanBufferIsAccepted) {
  // MPI semantics: receiving into a larger buffer is legal.
  ProgramBuilder b("short");
  const std::vector<double> payload{1.0};
  const GuestAddr src = b.DataF64("src", payload);
  const GuestAddr dst = b.Bss("dst", 4 * 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto recv = b.NewLabel("recv");
  auto done = b.NewLabel("done");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, recv);
  b.MovI(R(1), static_cast<std::int64_t>(src));
  b.MovI(R(2), 1);  // one double sent
  b.MovI(R(3), static_cast<std::int64_t>(MpiDatatype::kDouble));
  b.MovI(R(4), 1);
  b.MovI(R(5), 4);
  b.Sys(Sys::kMpiSend);
  b.Jmp(done);
  b.Bind(recv);
  b.MovI(R(1), static_cast<std::int64_t>(dst));
  b.MovI(R(2), 4);  // room for four
  b.MovI(R(3), static_cast<std::int64_t>(MpiDatatype::kDouble));
  b.MovI(R(4), 0);
  b.MovI(R(5), 4);
  b.Sys(Sys::kMpiRecv);
  b.Bind(done);
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);
  Programs().push_back(b.Finalize());
  mpi::Cluster cluster({.num_ranks = 2});
  cluster.Start(Programs().back());
  EXPECT_TRUE(cluster.Run().completed);
}

TEST(MpiEdge, JobKilledWhenOneRankCrashes) {
  // Rank 1 segfaults; the launcher kills the job; rank 0 blocks forever on a
  // message that never comes but is reported via first_failure of rank 1.
  ProgramBuilder b("crash1");
  const GuestAddr buf = b.Bss("buf", 8);
  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  auto crash = b.NewLabel("crash");
  b.CmpI(R(10), 1);
  b.Br(Cond::kEq, crash);
  b.MovI(R(1), static_cast<std::int64_t>(buf));
  b.MovI(R(2), 1);
  b.MovI(R(3), static_cast<std::int64_t>(MpiDatatype::kInt64));
  b.MovI(R(4), 1);
  b.MovI(R(5), 0);
  b.Sys(Sys::kMpiRecv);  // waits forever
  b.Exit(0);
  b.Bind(crash);
  b.MovI(R(9), 0x666);
  b.Ld(R(8), R(9), 0);  // SIGSEGV
  b.Exit(0);
  Programs().push_back(b.Finalize());
  mpi::Cluster cluster({.num_ranks = 2});
  cluster.Start(Programs().back());
  const mpi::JobResult job = cluster.Run();
  EXPECT_FALSE(job.completed);
  EXPECT_EQ(job.first_failure_rank, 1);
  EXPECT_EQ(job.first_failure_signal, vm::GuestSignal::kSegv);
}

// ---- Chaser options --------------------------------------------------------------

TEST(ChaserEdge, InstructionGranularityLogsInstructionEvents) {
  apps::AppSpec spec = apps::BuildLud({.n = 8});
  core::Chaser::Options opts;
  opts.granularity = core::Chaser::TraceGranularity::kInstruction;
  vm::Vm vm;
  core::Chaser chaser(vm, opts);
  core::InjectionCommand cmd;
  cmd.target_program = "lud";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(10);
  cmd.injector = core::ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  // Instruction events only accrue after the fault creates taint.
  EXPECT_GT(chaser.trace_log().instructions_traced(), 100u);
  // Memory-granularity events are still present.
  EXPECT_GT(chaser.trace_log().tainted_reads() +
                chaser.trace_log().tainted_writes(), 0u);
}

TEST(ChaserEdge, MemoryGranularityLogsNoInstructionEvents) {
  apps::AppSpec spec = apps::BuildLud({.n = 8});
  vm::Vm vm;
  core::Chaser chaser(vm);
  core::InjectionCommand cmd;
  cmd.target_program = "lud";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(10);
  cmd.injector = core::ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_EQ(chaser.trace_log().instructions_traced(), 0u);
}

TEST(ChaserEdge, DisarmStopsInjection) {
  apps::AppSpec spec = apps::BuildLud({.n = 8});
  vm::Vm vm;
  core::Chaser chaser(vm);
  core::InjectionCommand cmd;
  cmd.target_program = "lud";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(10);
  cmd.injector = core::ProbabilisticInjector::Create(1);
  chaser.Arm(cmd);
  chaser.Disarm();
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_TRUE(chaser.injections().empty());
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
}

TEST(ChaserEdge, SmallTraceCapacityDropsButCounts) {
  apps::AppSpec spec = apps::BuildLud({.n = 10});
  core::Chaser::Options opts;
  opts.trace_capacity = 8;
  vm::Vm vm;
  core::Chaser chaser(vm, opts);
  core::InjectionCommand cmd;
  cmd.target_program = "lud";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(5);
  cmd.injector = core::ProbabilisticInjector::Create(2);
  cmd.seed = 12;
  chaser.Arm(cmd);
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_LE(chaser.trace_log().events().size(), 8u);
  const std::uint64_t total = chaser.trace_log().tainted_reads() +
                              chaser.trace_log().tainted_writes() +
                              chaser.trace_log().injections() +
                              chaser.trace_log().tainted_outputs();
  EXPECT_EQ(chaser.trace_log().dropped(), total - chaser.trace_log().events().size());
}

// ---- App robustness -----------------------------------------------------------------

TEST(AppsEdge, ClamrTwoRanks) {
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 8, .cols = 8, .steps = 4, .ranks = 2});
  mpi::Cluster cluster({.num_ranks = 2});
  cluster.Start(spec.program);
  EXPECT_TRUE(cluster.Run().completed);
}

TEST(AppsEdge, MatvecTwoRanks) {
  apps::AppSpec spec = apps::BuildMatvec({.rows = 6, .cols = 4, .ranks = 2});
  mpi::Cluster cluster({.num_ranks = 2});
  cluster.Start(spec.program);
  EXPECT_TRUE(cluster.Run().completed);
  EXPECT_EQ(cluster.rank_vm(0).output(3).size(), 6u * 8u);
}

TEST(AppsEdge, KmeansSingleCluster) {
  apps::AppSpec spec = apps::BuildKmeans({.points = 16, .dims = 2, .clusters = 1,
                                          .iterations = 2});
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
  EXPECT_EQ(vm.output(3).size(), 2u * 8u);
}

TEST(AppsEdge, BfsTinyGraph) {
  apps::AppSpec spec = apps::BuildBfs({.nodes = 2, .avg_degree = 1});
  vm::Vm vm;
  vm.StartProcess(spec.program);
  vm.RunToCompletion();
  EXPECT_EQ(vm.termination(), vm::TerminationKind::kExited);
}

TEST(AppsEdge, ClamrCheckpointingGrowsOutput) {
  const apps::ClamrParams base{.global_rows = 8, .cols = 8, .steps = 8, .ranks = 2};
  apps::ClamrParams with_ckpt = base;
  with_ckpt.checkpoint_interval = 4;  // checkpoints after steps 4 and 8

  mpi::Cluster plain({.num_ranks = 2});
  plain.Start(apps::BuildClamr(base).program);
  ASSERT_TRUE(plain.Run().completed);
  mpi::Cluster ckpt({.num_ranks = 2});
  ckpt.Start(apps::BuildClamr(with_ckpt).program);
  ASSERT_TRUE(ckpt.Run().completed);

  const std::size_t field = 4 * 8 * 8;  // rows*cols*8 per rank
  EXPECT_EQ(ckpt.rank_vm(1).output(3).size(),
            plain.rank_vm(1).output(3).size() + 2 * field);
  // The final checkpoint equals the final field dump.
  const std::string& out = ckpt.rank_vm(1).output(3);
  EXPECT_EQ(out.substr(field, field), out.substr(2 * field, field));
}

TEST(ChaserEdge, SimultaneousInjectionOnMultipleRanks) {
  // P-FSEFI-style parallel supervision: the same command armed on two ranks
  // fires independently on each.
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 8, .cols = 8, .steps = 6, .ranks = 4});
  mpi::Cluster cluster({.num_ranks = 4});
  core::ChaserMpi chaser(cluster);
  core::InjectionCommand cmd;
  cmd.target_program = "clamr";
  cmd.target_classes = spec.fault_classes;
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(50);
  cmd.injector = core::ProbabilisticInjector::Create(1, 8);  // low bits: survivable
  cmd.seed = 5;
  chaser.Arm(cmd, {1, 3});
  cluster.Start(spec.program);
  cluster.Run();
  EXPECT_EQ(chaser.rank_chaser(1).injections().size(), 1u);
  EXPECT_EQ(chaser.rank_chaser(3).injections().size(), 1u);
  EXPECT_TRUE(chaser.rank_chaser(0).injections().empty());
  EXPECT_TRUE(chaser.rank_chaser(2).injections().empty());
  // Distinct per-rank seeds produce distinct flip masks (almost surely).
  EXPECT_NE(chaser.rank_chaser(1).injections()[0].flip_mask,
            chaser.rank_chaser(3).injections()[0].flip_mask);
}

TEST(ChaserEdge, TaintedOutputPredictsSdcOnDataFlowApp) {
  // lud is pure data flow from FP faults to the output matrix: every
  // completed faulty run that differs must have tainted output bytes, and
  // (conversely) clean runs must not.
  apps::AppSpec spec = apps::BuildLud({.n = 10});
  campaign::CampaignConfig config;
  config.runs = 30;
  config.seed = 62;
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  for (const campaign::RunRecord& rec : result.records) {
    if (rec.kind != vm::TerminationKind::kExited) continue;
    if (rec.outcome == campaign::Outcome::kBenign) continue;
    // FP-operand corruption in lud flows straight to the written matrix
    // whenever the outcome is SDC (the fp faults, not the cmp ones, dominate).
    if (rec.outcome == campaign::Outcome::kSdc && rec.tainted_output_bytes > 0) {
      SUCCEED();
    }
  }
  const campaign::SdcPredictionStats p =
      campaign::AnalyzeSdcPrediction(result.records);
  EXPECT_DOUBLE_EQ(p.precision, 1.0);  // no false positives on pure data flow
  EXPECT_GT(p.recall, 0.3);
}

TEST(AppsEdge, AppImagesAreDeterministic) {
  const apps::AppSpec a = apps::BuildMatvec({});
  const apps::AppSpec b = apps::BuildMatvec({});
  EXPECT_EQ(a.program.data, b.program.data);
  ASSERT_EQ(a.program.text.size(), b.program.text.size());
}

}  // namespace
}  // namespace chaser

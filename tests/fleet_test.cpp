// Tests for src/campaign/fleet and the sharded-campaign machinery: the
// shard partition must be disjoint and complete, MergeShardRecords must
// reproduce an unsharded run byte for byte (uniform, sampled, and
// early-stopped plans, straight from memory or round-tripped through the
// records CSV), the journal must refuse to resume a different shard spec,
// and a campaign over a loopback RemoteTaintHub must match the in-process
// hub exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/fleet.h"
#include "campaign/journal.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "common/error.h"
#include "guest/builder.h"
#include "hub/remote/server.h"

namespace chaser::campaign {
namespace {

namespace fs = std::filesystem;

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

// ---- ParseShardSpec ---------------------------------------------------------

TEST(ShardSpecTest, ParsesValidSpecs) {
  const ShardSpec a = ParseShardSpec("0/1");
  EXPECT_EQ(a.index, 0u);
  EXPECT_EQ(a.count, 1u);
  const ShardSpec b = ParseShardSpec("3/8");
  EXPECT_EQ(b.index, 3u);
  EXPECT_EQ(b.count, 8u);
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(ParseShardSpec("2"), ConfigError);
  EXPECT_THROW(ParseShardSpec("a/b"), ConfigError);
  EXPECT_THROW(ParseShardSpec("1/2/3"), ConfigError);
  EXPECT_THROW(ParseShardSpec("0/0"), ConfigError);   // count must be > 0
  EXPECT_THROW(ParseShardSpec("2/2"), ConfigError);   // index < count
  EXPECT_THROW(ParseShardSpec("9/4"), ConfigError);
}

// ---- ShardTrialIndices ------------------------------------------------------

TEST(ShardTrialIndicesTest, UnshardedSpecIsTheIdentity) {
  const auto indices = ShardTrialIndices(5, ShardSpec{0, 1});
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ShardTrialIndicesTest, ShardsPartitionTheTrialSpace) {
  constexpr std::uint64_t kRuns = 23;
  constexpr std::uint64_t kShards = 4;
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < kShards; ++s) {
    for (const std::uint64_t i : ShardTrialIndices(kRuns, {s, kShards})) {
      EXPECT_EQ(i % kShards, s);
      EXPECT_LT(i, kRuns);
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " seen twice";
    }
  }
  EXPECT_EQ(seen.size(), kRuns) << "the shards must cover every trial";
}

// ---- journal shard-spec validation ------------------------------------------

TEST(JournalShardTest, RefusesToResumeADifferentShardSpec) {
  const std::string path =
      (fs::temp_directory_path() / "chaser_fleet_test_journal.bin").string();
  fs::remove(path);
  {
    std::vector<RunRecord> replayed;
    TrialJournal j(path, /*campaign_seed=*/7, "accum", &replayed,
                   /*shard_index=*/0, /*shard_count=*/2);
  }
  std::vector<RunRecord> replayed;
  EXPECT_THROW(TrialJournal(path, 7, "accum", &replayed, 1, 2), ConfigError);
  EXPECT_THROW(TrialJournal(path, 7, "accum", &replayed, 0, 1), ConfigError);
  // The matching spec resumes fine.
  TrialJournal ok(path, 7, "accum", &replayed, 0, 2);
  fs::remove(path);
}

// ---- merge == unsharded -----------------------------------------------------

/// Steerable single-rank app (same shape as sampling_test's): a loop of
/// fadds plus an integer tail, so sampled campaigns see two site classes.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd, guest::InstrClass::kAdd};
  return spec;
}

std::string RenderPlusCsv(const CampaignResult& result, SamplePolicy policy) {
  std::ostringstream out;
  out << result.Render("accum");
  WriteRecordsCsv(result.records, out, policy);
  return out.str();
}

/// Run the plan unsharded, then as `shards` shard workers, merge, and
/// compare every byte of report + CSV.
void ExpectMergeMatchesUnsharded(CampaignConfig config, std::uint64_t shards) {
  Campaign reference(AccumulatorApp(), config);
  const CampaignResult expected = reference.Run();

  std::vector<RunRecord> shard_records;
  for (std::uint64_t s = 0; s < shards; ++s) {
    CampaignConfig shard_config = config;
    shard_config.shard_index = s;
    shard_config.shard_count = shards;
    Campaign worker(AccumulatorApp(), shard_config);
    const CampaignResult partial = worker.Run();
    shard_records.insert(shard_records.end(), partial.records.begin(),
                         partial.records.end());
  }

  MergePlan plan;
  plan.app = "accum";
  plan.runs = config.runs;
  plan.seed = config.seed;
  plan.sample_policy = config.sample_policy;
  plan.stop_ci = config.stop_ci;
  const CampaignResult merged = MergeShardRecords(plan, shard_records);

  EXPECT_EQ(RenderPlusCsv(merged, config.sample_policy),
            RenderPlusCsv(expected, config.sample_policy));
  EXPECT_EQ(merged.runs, expected.runs);
  EXPECT_EQ(merged.stopped_early, expected.stopped_early);
}

TEST(FleetMergeTest, TwoShardUniformMergeIsByteIdentical) {
  CampaignConfig config;
  config.runs = 40;
  config.seed = 5;
  ExpectMergeMatchesUnsharded(config, 2);
}

TEST(FleetMergeTest, ThreeShardWeightedStopCiMergeIsByteIdentical) {
  CampaignConfig config;
  config.runs = 120;
  config.seed = 21;
  config.sample_policy = SamplePolicy::kWeighted;
  config.stop_ci = 0.3;  // wide enough to fire before 120 trials
  ExpectMergeMatchesUnsharded(config, 3);
}

TEST(FleetMergeTest, ShardWorkersNeverStopEarlyThemselves) {
  CampaignConfig config;
  config.runs = 120;
  config.seed = 21;
  config.sample_policy = SamplePolicy::kWeighted;
  config.stop_ci = 0.3;
  config.shard_index = 0;
  config.shard_count = 2;
  Campaign worker(AccumulatorApp(), config);
  const CampaignResult partial = worker.Run();
  EXPECT_EQ(partial.records.size(), 60u)
      << "a shard worker must run its whole slice; the stop rule is applied "
         "at merge time in global seed order";
  EXPECT_FALSE(partial.stopped_early);
}

TEST(FleetMergeTest, MergeSurvivesTheCsvRoundTrip) {
  CampaignConfig config;
  config.runs = 60;
  config.seed = 9;
  config.sample_policy = SamplePolicy::kStratified;
  Campaign reference(AccumulatorApp(), config);
  const CampaignResult expected = reference.Run();

  std::vector<RunRecord> merged_input;
  for (std::uint64_t s = 0; s < 2; ++s) {
    CampaignConfig shard_config = config;
    shard_config.shard_index = s;
    shard_config.shard_count = 2;
    Campaign worker(AccumulatorApp(), shard_config);
    const CampaignResult partial = worker.Run();
    // Round-trip this shard's records through the CSV codec, as
    // chaser_fleet does with the workers' --out files.
    std::stringstream csv;
    WriteRecordsCsv(partial.records, csv, config.sample_policy);
    const std::vector<RunRecord> reread = ReadRecordsCsv(csv);
    merged_input.insert(merged_input.end(), reread.begin(), reread.end());
  }
  MergePlan plan;
  plan.app = "accum";
  plan.runs = config.runs;
  plan.seed = config.seed;
  plan.sample_policy = config.sample_policy;
  const CampaignResult merged = MergeShardRecords(plan, merged_input);
  EXPECT_EQ(RenderPlusCsv(merged, config.sample_policy),
            RenderPlusCsv(expected, config.sample_policy))
      << "the %.17g sample_weight round-trip must keep estimator floats exact";
}

TEST(FleetMergeTest, DuplicateAndMissingSeedsAreConfigErrors) {
  CampaignConfig config;
  config.runs = 10;
  config.seed = 3;
  Campaign c(AccumulatorApp(), config);
  const CampaignResult result = c.Run();
  MergePlan plan;
  plan.app = "accum";
  plan.runs = config.runs;
  plan.seed = config.seed;

  std::vector<RunRecord> twice = result.records;
  twice.insert(twice.end(), result.records.begin(), result.records.end());
  EXPECT_THROW(MergeShardRecords(plan, twice), ConfigError);

  std::vector<RunRecord> partial(result.records.begin(),
                                 result.records.end() - 1);
  EXPECT_THROW(MergeShardRecords(plan, partial), ConfigError);
}

// ---- campaign over a loopback remote hub ------------------------------------

/// Two-rank ping app: rank 0 computes and sends, rank 1 receives and writes,
/// so taint actually crosses the hub. Mirrors mpi-style apps used elsewhere;
/// matvec from apps/ would also do but is slower.
TEST(RemoteHubCampaignTest, LoopbackRemoteHubMatchesInProcess) {
  apps::AppSpec spec = apps::BuildMatvec({});
  CampaignConfig config;
  config.runs = 12;
  config.seed = 7;
  config.inject_ranks.insert(0);

  Campaign local(apps::BuildMatvec({}), config);
  const CampaignResult expected = local.Run();

  hub::remote::HubServer server({});
  server.Start();
  config.hub_endpoints = {"127.0.0.1:" + std::to_string(server.port())};
  Campaign remote(apps::BuildMatvec({}), config);
  const CampaignResult got = remote.Run();

  std::ostringstream a, b;
  a << expected.Render("matvec");
  WriteRecordsCsv(expected.records, a);
  b << got.Render("matvec");
  WriteRecordsCsv(got.records, b);
  EXPECT_EQ(a.str(), b.str())
      << "a campaign over a loopback RemoteTaintHub must be byte-identical "
         "to the in-process hub";
}

// ---- fleet observability: shard status parsing and the rollup ---------------

TEST(ShardStatusTest, ParsesAFullStatusDocument) {
  const std::string doc =
      "{\"app\": \"matvec\", \"running\": true, \"total\": 200, "
      "\"done\": 60, \"replayed\": 5, \"benign\": 40, \"terminated\": 12, "
      "\"sdc\": 6, \"infra\": 2, \"taint_lost\": 1, \"trace_dropped\": 3, "
      "\"elapsed_s\": 2.500, \"trials_per_s\": 22.00, \"eta_s\": 6.4, "
      "\"shard\": {\"index\": 1, \"count\": 4}, \"obs\": \"127.0.0.1:9100\"}\n";
  const ShardStatus s = ParseShardStatus(doc);
  ASSERT_TRUE(s.ok);
  EXPECT_TRUE(s.running);
  EXPECT_EQ(s.total, 200u);
  EXPECT_EQ(s.done, 60u);
  EXPECT_EQ(s.replayed, 5u);
  EXPECT_EQ(s.benign, 40u);
  EXPECT_EQ(s.terminated, 12u);
  EXPECT_EQ(s.sdc, 6u);
  EXPECT_EQ(s.infra, 2u);
  EXPECT_EQ(s.taint_lost, 1u);
  EXPECT_EQ(s.trace_dropped, 3u);
  EXPECT_DOUBLE_EQ(s.trials_per_s, 22.0);
  ASSERT_TRUE(s.eta_known);
  EXPECT_DOUBLE_EQ(s.eta_s, 6.4);
  EXPECT_EQ(s.obs_endpoint, "127.0.0.1:9100");
}

TEST(ShardStatusTest, NullEtaReadsAsUnknownNotZero) {
  const ShardStatus s = ParseShardStatus(
      "{\"running\": true, \"total\": 100, \"done\": 0, "
      "\"trials_per_s\": 0.00, \"eta_s\": null}");
  ASSERT_TRUE(s.ok);
  EXPECT_FALSE(s.eta_known);
}

TEST(ShardStatusTest, GarbageYieldsNotOkInsteadOfThrowing) {
  EXPECT_FALSE(ParseShardStatus("").ok);
  EXPECT_FALSE(ParseShardStatus("{\"partial\": tru").ok);
  EXPECT_FALSE(ParseShardStatus("not json at all").ok);
}

namespace {
ShardStatus ReportingShard(std::uint64_t done, std::uint64_t total,
                           double rate, bool eta_known, double eta_s) {
  ShardStatus s;
  s.ok = true;
  s.running = done < total;
  s.done = done;
  s.total = total;
  s.benign = done;  // keep the outcome sums simple
  s.trials_per_s = rate;
  s.eta_known = eta_known;
  s.eta_s = eta_s;
  return s;
}
}  // namespace

TEST(FleetRollupTest, SumsCountsAndTakesTheSlowestKnownEta) {
  const FleetRollup r = RollUpShards({
      ReportingShard(50, 100, 10.0, true, 5.0),
      ReportingShard(40, 100, 8.0, true, 7.5),
  });
  EXPECT_EQ(r.shards, 2u);
  EXPECT_EQ(r.shards_reporting, 2u);
  EXPECT_EQ(r.total, 200u);
  EXPECT_EQ(r.done, 90u);
  EXPECT_DOUBLE_EQ(r.trials_per_s, 18.0);
  ASSERT_TRUE(r.eta_known);
  EXPECT_DOUBLE_EQ(r.eta_s, 7.5) << "the fleet finishes with its slowest shard";
  EXPECT_DOUBLE_EQ(r.benign_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.sdc_rate, 0.0);
}

TEST(FleetRollupTest, OneEtaNullShardMakesTheFleetEtaUnknown) {
  // The satellite contract under test: a shard that cannot estimate yet
  // must surface as fleet-wide unknown, not be folded in as 0 (which would
  // leave the max untouched and report the optimistic partial answer).
  const FleetRollup r = RollUpShards({
      ReportingShard(50, 100, 10.0, true, 5.0),
      ReportingShard(0, 100, 0.0, false, 0.0),
  });
  EXPECT_EQ(r.shards_reporting, 2u);
  EXPECT_FALSE(r.eta_known);
  EXPECT_DOUBLE_EQ(r.eta_s, 0.0);
}

TEST(FleetRollupTest, SilentShardAlsoMakesTheFleetEtaUnknown) {
  ShardStatus silent;  // ok = false: no status file yet
  const FleetRollup r =
      RollUpShards({ReportingShard(100, 100, 25.0, true, 0.0), silent});
  EXPECT_EQ(r.shards, 2u);
  EXPECT_EQ(r.shards_reporting, 1u);
  EXPECT_FALSE(r.eta_known);
  EXPECT_EQ(r.done, 100u) << "counts still roll up from reporting shards";
}

}  // namespace
}  // namespace chaser::campaign

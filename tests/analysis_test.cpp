// Tests for src/analysis: the varint codec, the TraceSpool on-disk format
// (round-trip, truncation recovery, sink tee-through), the propagation
// graph built from a hand-authored trace, the root-cause walk, and
// serial-vs-parallel spool determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/propagation.h"
#include "analysis/spool.h"
#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/trace.h"
#include "hub/tainthub.h"

namespace chaser::analysis {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("chaser_analysis_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

// ---- Varint codec ------------------------------------------------------------

TEST(Varint, KnownEncodings) {
  std::string buf;
  AppendVarint(&buf, 0);
  AppendVarint(&buf, 127);
  AppendVarint(&buf, 128);
  EXPECT_EQ(buf.size(), 1u + 1u + 2u);
  std::size_t pos = 0;
  EXPECT_EQ(DecodeVarint(buf, &pos), 0u);
  EXPECT_EQ(DecodeVarint(buf, &pos), 127u);
  EXPECT_EQ(DecodeVarint(buf, &pos), 128u);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, RoundTripFuzz) {
  Rng rng(42);
  std::vector<std::uint64_t> values;
  std::string buf;
  for (int i = 0; i < 5000; ++i) {
    // Mix magnitudes so every LEB128 length is exercised.
    const unsigned bits = static_cast<unsigned>(rng.UniformU64(0, 64));
    const std::uint64_t v =
        bits == 0 ? 0 : rng.UniformU64(0, ~0ull >> (64 - bits));
    values.push_back(v);
    AppendVarint(&buf, v);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    const auto got = DecodeVarint(buf, &pos);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, DecodeRejectsTruncation) {
  std::string buf;
  AppendVarint(&buf, 0x1234567890abcdefull);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_FALSE(DecodeVarint(buf.substr(0, cut), &pos).has_value());
  }
}

TEST(Varint, ZigZagRoundTrip) {
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{1}, std::int64_t{-1234567},
                               std::int64_t{1} << 62,
                               std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

// ---- Spool round trip --------------------------------------------------------

core::TraceEvent RandomEvent(Rng& rng, Rank rank, std::uint64_t instret) {
  core::TraceEvent e;
  const std::uint64_t k = rng.UniformU64(0, core::kNumTraceEventKinds - 1);
  e.kind = static_cast<core::TraceEventKind>(k);
  e.rank = rank;
  e.instret = instret;
  e.pc = rng.UniformU64(0, 1 << 20);
  e.vaddr = rng.UniformU64(0, ~0ull);
  e.paddr = rng.UniformU64(0, 1 << 30);
  e.size = static_cast<std::uint32_t>(rng.UniformU64(1, 8));
  e.value = rng.UniformU64(0, ~0ull);
  e.taint = rng.UniformU64(0, ~0ull);
  if (e.kind == core::TraceEventKind::kTaintedOutput) {
    e.fd = static_cast<int>(rng.UniformU64(1, 5));
    e.stream_off = rng.UniformU64(0, 1 << 16);
  }
  return e;
}

void ExpectEventsEqual(const core::TraceEvent& a, const core::TraceEvent& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.instret, b.instret);
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(a.vaddr, b.vaddr);
  EXPECT_EQ(a.paddr, b.paddr);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.taint, b.taint);
  EXPECT_EQ(a.fd, b.fd);
  EXPECT_EQ(a.stream_off, b.stream_off);
}

TEST(Spool, RoundTripFuzz) {
  const std::string dir = TempDir("roundtrip");
  Rng rng(7);
  std::vector<core::TraceEvent> events;
  std::vector<core::TaintSample> samples;
  std::vector<hub::TransferLogEntry> transfers;
  {
    TraceSpool spool(dir);
    // Per-rank monotone instret clocks (matches real traces; exercises the
    // delta encoding), interleaved across 3 ranks.
    std::map<Rank, std::uint64_t> clocks;
    for (int i = 0; i < 2000; ++i) {
      const Rank rank = static_cast<Rank>(rng.UniformU64(0, 2));
      clocks[rank] += rng.UniformU64(0, 1000);
      const core::TraceEvent e = RandomEvent(rng, rank, clocks[rank]);
      events.push_back(e);
      spool.OnTraceEvent(e);
    }
    for (int i = 0; i < 200; ++i) {
      const Rank rank = static_cast<Rank>(rng.UniformU64(0, 2));
      const core::TaintSample s{rank, rng.UniformU64(0, 1 << 24),
                                rng.UniformU64(0, 1 << 20)};
      samples.push_back(s);
      spool.AddSample(s);
    }
    for (std::uint64_t i = 0; i < 50; ++i) {
      hub::TransferLogEntry t;
      t.id = {static_cast<Rank>(rng.UniformU64(0, 2)),
              static_cast<Rank>(rng.UniformU64(0, 2)),
              static_cast<std::int64_t>(rng.UniformU64(0, 100)) - 50,
              rng.UniformU64(0, 1000)};
      t.tainted_bytes = rng.UniformU64(0, 4096);
      t.payload_bytes = rng.UniformU64(1, 4096);
      t.src_vaddr = rng.UniformU64(0, ~0ull);
      t.dest_vaddr = rng.UniformU64(0, ~0ull);
      t.send_instret = rng.UniformU64(0, 1 << 30);
      t.recv_instret = rng.UniformU64(0, 1 << 30);
      t.hub_seq = i;
      transfers.push_back(t);
      spool.AddTransfer(t);
    }
    spool.SetMeta("outcome", "sdc");
    spool.SetMeta("app", "fuzz");
    spool.Finish();
  }

  ASSERT_TRUE(IsTrialSpoolDir(dir));
  const TrialSpool back = ReadTrialSpool(dir);
  EXPECT_FALSE(back.truncated);
  EXPECT_EQ(back.meta.at("outcome"), "sdc");
  EXPECT_EQ(back.meta.at("app"), "fuzz");
  ASSERT_EQ(back.events.size(), events.size());
  ASSERT_EQ(back.samples.size(), samples.size());
  ASSERT_EQ(back.transfers.size(), transfers.size());

  // The reader groups events by rank (segments), preserving per-rank order.
  std::map<Rank, std::vector<core::TraceEvent>> by_rank;
  for (const core::TraceEvent& e : events) by_rank[e.rank].push_back(e);
  std::size_t idx = 0;
  for (const auto& [rank, rank_events] : by_rank) {
    for (const core::TraceEvent& e : rank_events) {
      ExpectEventsEqual(back.events[idx++], e);
    }
  }
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    EXPECT_EQ(back.transfers[i].id.Key(), transfers[i].id.Key());
    EXPECT_EQ(back.transfers[i].tainted_bytes, transfers[i].tainted_bytes);
    EXPECT_EQ(back.transfers[i].payload_bytes, transfers[i].payload_bytes);
    EXPECT_EQ(back.transfers[i].src_vaddr, transfers[i].src_vaddr);
    EXPECT_EQ(back.transfers[i].dest_vaddr, transfers[i].dest_vaddr);
    EXPECT_EQ(back.transfers[i].send_instret, transfers[i].send_instret);
    EXPECT_EQ(back.transfers[i].recv_instret, transfers[i].recv_instret);
    EXPECT_EQ(back.transfers[i].hub_seq, transfers[i].hub_seq);
  }
  fs::remove_all(dir);
}

TEST(Spool, FooterCountsMatch) {
  const std::string dir = TempDir("footer");
  {
    TraceSpool spool(dir);
    for (int i = 0; i < 10; ++i) {
      spool.OnTraceEvent({.kind = core::TraceEventKind::kTaintedRead,
                          .rank = 0, .instret = static_cast<std::uint64_t>(i)});
    }
    spool.OnTraceEvent({.kind = core::TraceEventKind::kInjection, .rank = 0,
                        .instret = 11});
    spool.Finish();
  }
  SegmentReader reader(dir + "/rank-0.seg");
  EXPECT_EQ(reader.rank(), 0);
  EXPECT_FALSE(reader.is_hub());
  ASSERT_TRUE(reader.footer().has_value());
  EXPECT_EQ(reader.footer()->events, 11u);
  EXPECT_EQ(reader.footer()->kind_counts[static_cast<int>(
                core::TraceEventKind::kTaintedRead)], 10u);
  EXPECT_EQ(reader.footer()->kind_counts[static_cast<int>(
                core::TraceEventKind::kInjection)], 1u);
  EXPECT_EQ(reader.footer()->min_instret, 0u);
  EXPECT_EQ(reader.footer()->max_instret, 11u);
  fs::remove_all(dir);
}

TEST(Spool, TruncatedSegmentServesIntactPrefix) {
  const std::string dir = TempDir("truncated");
  {
    TraceSpool spool(dir);
    for (int i = 0; i < 100; ++i) {
      spool.OnTraceEvent({.kind = core::TraceEventKind::kTaintedWrite,
                          .rank = 0,
                          .instret = static_cast<std::uint64_t>(10 * i),
                          .vaddr = 0x1000, .size = 8});
    }
    spool.Finish();
  }
  const std::string seg = dir + "/rank-0.seg";
  const auto full_size = fs::file_size(seg);
  // Chop the trailer and some records off: the reader must fall back to
  // truncated mode and still decode an intact prefix, never throw.
  fs::resize_file(seg, full_size - 40);
  SegmentReader reader(seg);
  SpoolRecord rec;
  std::size_t decoded = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec.type, SpoolRecord::Type::kEvent);
    EXPECT_EQ(rec.event.instret, 10 * decoded);
    ++decoded;
  }
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.footer().has_value());
  EXPECT_GT(decoded, 0u);
  EXPECT_LT(decoded, 100u);

  const TrialSpool back = ReadTrialSpool(dir);
  EXPECT_TRUE(back.truncated);
  EXPECT_EQ(back.events.size(), decoded);
  fs::remove_all(dir);
}

TEST(Spool, ReaderRejectsGarbage) {
  const std::string dir = TempDir("garbage");
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/rank-0.seg", std::ios::binary);
    out << "not a spool segment at all";
  }
  EXPECT_THROW(SegmentReader(dir + "/rank-0.seg"), ConfigError);
  EXPECT_THROW(SegmentReader(dir + "/missing.seg"), ConfigError);
  fs::remove_all(dir);
}

TEST(Spool, SinkReceivesEventsPastTraceLogCap) {
  const std::string dir = TempDir("cap");
  core::TraceLog log(/*capacity=*/4);
  {
    TraceSpool spool(dir);
    log.set_sink(&spool);
    for (int i = 0; i < 10; ++i) {
      log.Add({.kind = core::TraceEventKind::kTaintedRead, .rank = 0,
               .instret = static_cast<std::uint64_t>(i)});
    }
    log.set_sink(nullptr);
    spool.Finish();
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  const TrialSpool back = ReadTrialSpool(dir);
  EXPECT_EQ(back.events.size(), 10u);  // the spool never drops
  fs::remove_all(dir);
}

TEST(Spool, FinishIsIdempotentAndSeals) {
  const std::string dir = TempDir("sealed");
  TraceSpool spool(dir);
  spool.OnTraceEvent({.kind = core::TraceEventKind::kTaintedRead, .rank = 0});
  spool.Finish();
  spool.Finish();  // idempotent
  EXPECT_THROW(
      spool.OnTraceEvent({.kind = core::TraceEventKind::kTaintedRead, .rank = 0}),
      ConfigError);
  fs::remove_all(dir);
}

// ---- Propagation graph on a hand-authored trace ------------------------------

/// The canonical two-rank SDC story:
///   rank 0: injection @100, tainted write of 0x1000 @110 (the fault
///           materialises in memory), payload sent from 0x1000;
///   hub:    transfer 0 -> 1, src 0x1000 -> dest 0x2000, 8 tainted bytes;
///   rank 1: tainted read of 0x2000 @60 (its own clock), tainted write of
///           0x3000 @70, tainted output byte from 0x3000 @80 on fd 3.
TraceDataset HandAuthoredDataset() {
  TraceDataset data;
  data.events = {
      {.kind = core::TraceEventKind::kInjection, .rank = 0, .instret = 100,
       .pc = 7, .vaddr = 0, .size = 0, .taint = 0x3},
      {.kind = core::TraceEventKind::kTaintedWrite, .rank = 0, .instret = 110,
       .pc = 8, .vaddr = 0x1000, .size = 8, .value = 0xbad, .taint = 0xff},
      {.kind = core::TraceEventKind::kTaintedRead, .rank = 1, .instret = 60,
       .pc = 21, .vaddr = 0x2000, .size = 8, .value = 0xbad, .taint = 0xff},
      {.kind = core::TraceEventKind::kTaintedWrite, .rank = 1, .instret = 70,
       .pc = 22, .vaddr = 0x3000, .size = 8, .value = 0xbad, .taint = 0xff},
      {.kind = core::TraceEventKind::kTaintedOutput, .rank = 1, .instret = 80,
       .pc = 23, .vaddr = 0x3000, .size = 1, .value = 0xad, .taint = 0xff,
       .fd = 3, .stream_off = 16},
  };
  data.samples = {{0, 100, 8}, {1, 100, 16}, {0, 200, 8}, {1, 200, 16}};
  hub::TransferLogEntry t;
  t.id = {0, 1, 5, 0};
  t.tainted_bytes = 8;
  t.payload_bytes = 8;
  t.src_vaddr = 0x1000;
  t.dest_vaddr = 0x2000;
  t.send_instret = 120;
  t.recv_instret = 50;
  t.hub_seq = 0;
  data.transfers = {t};
  return data;
}

/// Node id of the first node matching (kind, rank) whose range covers addr
/// (episodes), or just (kind, rank) for injection/output nodes.
int FindNode(const PropagationGraph& g, NodeKind kind, Rank rank,
             GuestAddr addr = 0) {
  for (const GraphNode& n : g.nodes()) {
    if (n.kind != kind || n.rank != rank) continue;
    if (kind == NodeKind::kEpisode && !(n.addr_lo <= addr && addr < n.addr_hi)) {
      continue;
    }
    return n.id;
  }
  return -1;
}

bool HasEdge(const PropagationGraph& g, int from, int to, EdgeKind kind) {
  for (const GraphEdge& e : g.edges()) {
    if (e.from == from && e.to == to && e.kind == kind) return true;
  }
  return false;
}

TEST(PropagationGraph, HandAuthoredTraceMatchesExpectedShape) {
  const PropagationGraph g = PropagationGraph::Build(HandAuthoredDataset());

  const int inj = FindNode(g, NodeKind::kInjection, 0);
  const int w0 = FindNode(g, NodeKind::kEpisode, 0, 0x1000);
  const int r1 = FindNode(g, NodeKind::kEpisode, 1, 0x2000);
  const int w1 = FindNode(g, NodeKind::kEpisode, 1, 0x3000);
  const int out = FindNode(g, NodeKind::kOutput, 1);
  ASSERT_GE(inj, 0);
  ASSERT_GE(w0, 0);
  ASSERT_GE(r1, 0);
  ASSERT_GE(w1, 0);
  ASSERT_GE(out, 0);
  EXPECT_NE(r1, w1) << "0x2000 and 0x3000 are beyond addr_gap: two episodes";
  EXPECT_EQ(g.nodes().size(), 5u);

  // injection -> rank-0 write (no tainted read preceded it).
  EXPECT_TRUE(HasEdge(g, inj, w0, EdgeKind::kFlow));
  // rank-0 write -> rank-1 landing episode via the MPI transfer.
  EXPECT_TRUE(HasEdge(g, w0, r1, EdgeKind::kTransfer));
  // rank-1 read -> rank-1 write (register dataflow).
  EXPECT_TRUE(HasEdge(g, r1, w1, EdgeKind::kFlow));
  // rank-1 write episode -> output stream.
  EXPECT_TRUE(HasEdge(g, w1, out, EdgeKind::kOutput));
  EXPECT_EQ(g.edges().size(), 4u);

  // Queries.
  const auto first = g.FirstContamination();
  EXPECT_EQ(first.at(0), 100u);
  EXPECT_EQ(first.at(1), 50u);  // the inbound transfer, before any event
  EXPECT_EQ(g.SpreadOrder(), (std::vector<Rank>{0, 1}));
  const auto timeline = g.TaintTimeline();
  EXPECT_EQ(timeline.at(100), 24u);  // summed across ranks
  EXPECT_EQ(timeline.at(200), 24u);

  // DOT output mentions every node and is parseable-ish.
  const std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph propagation"), std::string::npos);
  EXPECT_NE(dot.find("INJECT rank 0"), std::string::npos);
  EXPECT_NE(dot.find("OUTPUT rank 1"), std::string::npos);
}

TEST(PropagationGraph, RootCauseWalkReachesInjectionAcrossRanks) {
  const PropagationGraph g = PropagationGraph::Build(HandAuthoredDataset());
  const RootCauseChain chain = g.RootCause(1, 3, 16);
  ASSERT_TRUE(chain.complete);
  EXPECT_EQ(chain.transfers_crossed, 1u);
  ASSERT_EQ(chain.steps.size(), 6u);
  EXPECT_EQ(chain.steps[0].what, ChainStep::What::kInjection);
  EXPECT_EQ(chain.steps[1].what, ChainStep::What::kWrite);
  EXPECT_EQ(chain.steps[1].event.rank, 0);
  EXPECT_EQ(chain.steps[2].what, ChainStep::What::kTransfer);
  EXPECT_EQ(chain.steps[3].what, ChainStep::What::kRead);
  EXPECT_EQ(chain.steps[3].event.rank, 1);
  EXPECT_EQ(chain.steps[4].what, ChainStep::What::kWrite);
  EXPECT_EQ(chain.steps[5].what, ChainStep::What::kOutput);
  EXPECT_EQ(chain.steps[5].event.stream_off, 16u);
  // The rendered chain is ordered injection-first.
  const std::string text = chain.Render();
  EXPECT_LT(text.find("INJECT"), text.find("OUTPUT"));

  EXPECT_THROW(g.RootCause(1, 3, 999), ConfigError);
  EXPECT_THROW(g.RootCause(0, 3, 16), ConfigError);
}

TEST(PropagationGraph, OutputEventsSortedAndSummarized) {
  const PropagationGraph g = PropagationGraph::Build(HandAuthoredDataset());
  const auto outputs = g.OutputEvents();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].rank, 1);
  EXPECT_EQ(outputs[0].fd, 3);
  const std::string summary = g.Summarize();
  EXPECT_NE(summary.find("spread order: 0 -> 1"), std::string::npos);
  EXPECT_NE(summary.find("corrupted output: rank 1 fd 3: 1 bytes"),
            std::string::npos);
}

// ---- End-to-end: campaign spools, serial == parallel -------------------------

TEST(SpoolCampaign, SerialAndParallelSpoolsAreByteIdentical) {
  const std::string dir_serial = TempDir("serial");
  const std::string dir_parallel = TempDir("parallel");

  campaign::CampaignConfig config;
  config.runs = 4;
  config.seed = 99;
  config.chaser_options.taint_sample_interval = 2'000;

  {
    campaign::CampaignConfig c = config;
    c.spool_dir = dir_serial;
    campaign::Campaign serial(apps::BuildMatvec({}), c);
    (void)serial.Run();
  }
  {
    campaign::CampaignConfig c = config;
    c.spool_dir = dir_parallel;
    campaign::ParallelCampaign parallel(apps::BuildMatvec({}), c, 2);
    (void)parallel.Run();
  }

  // Same trial directories, and every file byte-identical.
  std::map<std::string, std::string> serial_files, parallel_files;
  const auto slurp = [](const std::string& root,
                        std::map<std::string, std::string>* out) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      (*out)[fs::relative(entry.path(), root).string()] =
          std::string((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }
  };
  slurp(dir_serial, &serial_files);
  slurp(dir_parallel, &parallel_files);
  EXPECT_GE(serial_files.size(), 4u * 2u);  // >= meta.txt + one segment per trial
  ASSERT_FALSE(serial_files.empty());
  EXPECT_EQ(serial_files, parallel_files);
  fs::remove_all(dir_serial);
  fs::remove_all(dir_parallel);
}

TEST(SpoolCampaign, SpooledTrialIsAnalyzable) {
  const std::string dir = TempDir("analyzable");
  campaign::CampaignConfig config;
  config.runs = 0;
  config.seed = 5;
  config.spool_dir = dir;
  campaign::Campaign c(apps::BuildMatvec({}), config);
  c.RunGolden();
  // Deterministic seed sweep: find one SDC trial to analyze.
  const std::vector<std::uint64_t> seeds = campaign::Campaign::DeriveTrialSeeds(5, 40);
  std::uint64_t sdc_seed = 0;
  for (const std::uint64_t s : seeds) {
    const campaign::RunRecord rec = c.RunOnce(s);
    if (rec.outcome == campaign::Outcome::kSdc && rec.tainted_output_bytes > 0) {
      sdc_seed = s;
      break;
    }
  }
  ASSERT_NE(sdc_seed, 0u) << "no SDC among 40 matvec trials (seed drift?)";

  const TrialSpool spool =
      ReadTrialSpool(dir + "/trial-" + std::to_string(sdc_seed));
  EXPECT_EQ(spool.meta.at("outcome"), "sdc");
  EXPECT_FALSE(spool.truncated);
  const PropagationGraph g = PropagationGraph::Build(DatasetFromSpool(spool));
  const auto outputs = g.OutputEvents();
  ASSERT_FALSE(outputs.empty());
  const RootCauseChain chain =
      g.RootCause(outputs[0].rank, outputs[0].fd, outputs[0].stream_off);
  EXPECT_TRUE(chain.complete);
  ASSERT_FALSE(chain.steps.empty());
  EXPECT_EQ(chain.steps.front().what, ChainStep::What::kInjection);
  EXPECT_EQ(chain.steps.back().what, ChainStep::What::kOutput);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace chaser::analysis

// Tests for src/store: the CTR columnar trial store must round-trip every
// RunRecord field, survive truncation at any byte and random bit rot by
// serving the intact block prefix, converge back to the uninterrupted byte
// stream on resume, and export a records CSV byte-identical to
// WriteRecordsCsv — the property that lets CSV retire to an export format.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/spool.h"
#include "campaign/campaign.h"
#include "campaign/fleet.h"
#include "campaign/report.h"
#include "common/error.h"
#include "common/rng.h"
#include "store/ctr.h"
#include "store/query.h"

namespace chaser::store {
namespace {

namespace fs = std::filesystem;

using campaign::Outcome;
using campaign::RunRecord;

std::string TempPath(const std::string& name) {
  const std::string path =
      (fs::temp_directory_path() / ("chaser_store_test_" + name)).string();
  fs::remove_all(path);
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CtrStoreInfo TestIdentity() {
  CtrStoreInfo info;
  info.campaign_seed = 42;
  info.app = "accum";
  return info;
}

/// A deterministic spread of records covering every encoder path: const
/// columns, delta-friendly counters, random seeds, signed ranks, all flags,
/// dictionary strings (injector/fault_class/infra_error), and non-unit
/// sample weights.
std::vector<RunRecord> SampleRecords(std::size_t n) {
  std::vector<RunRecord> recs;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    RunRecord r;
    r.run_seed = rng.UniformU64(0, ~0ull);
    r.outcome = static_cast<Outcome>(i % 5);
    r.kind = static_cast<vm::TerminationKind>(i % 3);
    r.signal = i % 7 == 0 ? vm::GuestSignal::kSegv : vm::GuestSignal::kNone;
    r.inject_rank = static_cast<Rank>(i % 4);
    r.failure_rank = i % 5 == 2 ? static_cast<Rank>(i % 4) : -1;
    r.deadlock = i % 11 == 3;
    r.propagated_cross_rank = i % 3 == 0;
    r.propagated_cross_node = i % 9 == 0;
    r.injections = 1;
    r.tainted_reads = i % 5 == 0 ? 0 : 100 + (i % 50);
    r.tainted_writes = i % 5 == 0 ? 0 : 90 + (i % 40);
    r.peak_tainted_bytes = 8 * (i % 100);
    r.tainted_output_bytes = i % 5 == 2 ? 16 : 0;
    r.trigger_nth = rng.UniformU64(1, 100000);
    r.flip_bits = 1 + (i % 2);
    r.instructions = 1000000 + (i % 997);
    r.tb_chain_hits = 50000 + (i % 321);
    r.tlb_hits = 300000 + (i % 555);
    r.tlb_misses = 40 + (i % 7);
    r.trace_dropped = i % 17 == 0 ? 12 : 0;
    r.taint_lost = i % 23 == 0 ? 2 : 0;
    r.retries = i % 29 == 0 ? 1 : 0;
    r.inject_pc = 0x1000 + 8 * (i % 37);
    r.inject_class = i % 2 == 0 ? guest::InstrClass::kFadd
                                : guest::InstrClass::kFmul;
    r.sample_weight = i % 13 == 0 ? 1.0 / 3.0 : 1.0;
    r.injector = i % 3 == 0 ? "stuckat" : (i % 3 == 1 ? "multibit" : "");
    r.fault_class = i % 3 == 0 ? "stuck-at" : (i % 3 == 1 ? "burst" : "");
    if (i % 31 == 30) {
      r.outcome = Outcome::kInfra;
      r.infra_error = "TrialEngine: simulated failure, attempt 2";
    }
    recs.push_back(r);
  }
  return recs;
}

void ExpectRecordEq(const RunRecord& a, const RunRecord& b, std::size_t i) {
  EXPECT_EQ(a.run_seed, b.run_seed) << "record " << i;
  EXPECT_EQ(a.outcome, b.outcome) << "record " << i;
  EXPECT_EQ(a.kind, b.kind) << "record " << i;
  EXPECT_EQ(a.signal, b.signal) << "record " << i;
  EXPECT_EQ(a.inject_rank, b.inject_rank) << "record " << i;
  EXPECT_EQ(a.failure_rank, b.failure_rank) << "record " << i;
  EXPECT_EQ(a.deadlock, b.deadlock) << "record " << i;
  EXPECT_EQ(a.propagated_cross_rank, b.propagated_cross_rank) << "record " << i;
  EXPECT_EQ(a.propagated_cross_node, b.propagated_cross_node) << "record " << i;
  EXPECT_EQ(a.injections, b.injections) << "record " << i;
  EXPECT_EQ(a.tainted_reads, b.tainted_reads) << "record " << i;
  EXPECT_EQ(a.tainted_writes, b.tainted_writes) << "record " << i;
  EXPECT_EQ(a.peak_tainted_bytes, b.peak_tainted_bytes) << "record " << i;
  EXPECT_EQ(a.tainted_output_bytes, b.tainted_output_bytes) << "record " << i;
  EXPECT_EQ(a.trigger_nth, b.trigger_nth) << "record " << i;
  EXPECT_EQ(a.flip_bits, b.flip_bits) << "record " << i;
  EXPECT_EQ(a.instructions, b.instructions) << "record " << i;
  EXPECT_EQ(a.tb_chain_hits, b.tb_chain_hits) << "record " << i;
  EXPECT_EQ(a.tlb_hits, b.tlb_hits) << "record " << i;
  EXPECT_EQ(a.tlb_misses, b.tlb_misses) << "record " << i;
  EXPECT_EQ(a.trace_dropped, b.trace_dropped) << "record " << i;
  EXPECT_EQ(a.taint_lost, b.taint_lost) << "record " << i;
  EXPECT_EQ(a.retries, b.retries) << "record " << i;
  EXPECT_EQ(a.infra_error, b.infra_error) << "record " << i;
  EXPECT_EQ(a.inject_pc, b.inject_pc) << "record " << i;
  EXPECT_EQ(a.inject_class, b.inject_class) << "record " << i;
  EXPECT_EQ(a.sample_weight, b.sample_weight) << "record " << i;
  EXPECT_EQ(a.injector, b.injector) << "record " << i;
  EXPECT_EQ(a.fault_class, b.fault_class) << "record " << i;
}

void WriteStore(const std::string& dir, const std::vector<RunRecord>& recs,
                CtrWriterOptions options = {}) {
  CtrStoreWriter writer(dir, TestIdentity(), options);
  for (const RunRecord& r : recs) writer.Add(r);
  writer.Finish();
}

std::vector<RunRecord> ScanAll(const std::string& path,
                               ColumnMask mask = kAllColumns,
                               bool* truncated = nullptr,
                               bool* sealed = nullptr) {
  CtrStoreScanner scanner(path, mask);
  std::vector<RunRecord> out;
  RunRecord r;
  while (scanner.Next(&r)) out.push_back(r);
  if (truncated != nullptr) *truncated = scanner.truncated();
  if (sealed != nullptr) *sealed = scanner.sealed();
  return out;
}

/// Offset one past the header frame: 8-byte magic, then LEB128 payload
/// length, payload, 4-byte CRC.
std::size_t HeaderEnd(const std::string& bytes) {
  std::size_t pos = 8;
  std::uint64_t len = 0;
  unsigned shift = 0;
  while (true) {
    const auto b = static_cast<unsigned char>(bytes.at(pos++));
    len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return pos + static_cast<std::size_t>(len) + 4;
}

// ---- Round trip --------------------------------------------------------------

TEST(CtrStore, RoundTripAllFieldsAcrossBlocks) {
  const std::string dir = TempPath("roundtrip");
  const std::vector<RunRecord> recs = SampleRecords(43);
  CtrWriterOptions options;
  options.block_records = 8;  // 5 full blocks + a partial one
  WriteStore(dir, recs, options);

  bool truncated = true, sealed = false;
  const std::vector<RunRecord> back =
      ScanAll(dir, kAllColumns, &truncated, &sealed);
  EXPECT_FALSE(truncated);
  EXPECT_TRUE(sealed);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    ExpectRecordEq(recs[i], back[i], i);
  }
}

TEST(CtrStore, ByteStreamIsDeterministic) {
  const std::string a = TempPath("det_a");
  const std::string b = TempPath("det_b");
  const std::vector<RunRecord> recs = SampleRecords(20);
  CtrWriterOptions options;
  options.block_records = 6;
  WriteStore(a, recs, options);
  WriteStore(b, recs, options);
  EXPECT_EQ(ReadFileBytes(a + "/seg-000000.ctr"),
            ReadFileBytes(b + "/seg-000000.ctr"));
}

TEST(CtrStore, SegmentRollOverPreservesOrderAndSeeds) {
  const std::string dir = TempPath("rollover");
  const std::vector<RunRecord> recs = SampleRecords(64);
  CtrWriterOptions options;
  options.block_records = 4;
  options.segment_cap_bytes = 1;  // roll after every flushed block
  {
    CtrStoreWriter writer(dir, TestIdentity(), options);
    for (const RunRecord& r : recs) writer.Add(r);
    writer.Finish();
    EXPECT_GT(writer.segments(), 4u);
  }
  const std::vector<RunRecord> back = ScanAll(dir);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    ExpectRecordEq(recs[i], back[i], i);
  }
}

TEST(CtrStore, ColumnMaskDecodesOnlySelectedColumns) {
  const std::string dir = TempPath("mask");
  const std::vector<RunRecord> recs = SampleRecords(10);
  WriteStore(dir, recs);
  const ColumnMask mask = MaskOf(kColRunSeed) | MaskOf(kColOutcome) |
                          MaskOf(kColInjector);
  const std::vector<RunRecord> back = ScanAll(dir, mask);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].run_seed, recs[i].run_seed);
    EXPECT_EQ(back[i].outcome, recs[i].outcome);
    EXPECT_EQ(back[i].injector, recs[i].injector);
    // Unselected columns keep their defaults (skipped by length prefix).
    EXPECT_EQ(back[i].instructions, 0u);
    EXPECT_EQ(back[i].tlb_hits, 0u);
    EXPECT_EQ(back[i].fault_class, "");
  }
}

TEST(CtrStore, EmptyStoreSealsAndScansEmpty) {
  const std::string dir = TempPath("empty");
  WriteStore(dir, {});
  bool truncated = true, sealed = false;
  EXPECT_TRUE(ScanAll(dir, kAllColumns, &truncated, &sealed).empty());
  EXPECT_FALSE(truncated);
  EXPECT_TRUE(sealed);
}

TEST(CtrStore, IdentityMismatchRefusesResume) {
  const std::string dir = TempPath("identity");
  WriteStore(dir, SampleRecords(5));
  CtrWriterOptions resume;
  resume.resume = true;
  CtrStoreInfo other = TestIdentity();
  other.campaign_seed = 43;
  EXPECT_THROW(CtrStoreWriter(dir, other, resume), ConfigError);
  other = TestIdentity();
  other.app = "matvec";
  EXPECT_THROW(CtrStoreWriter(dir, other, resume), ConfigError);
  other = TestIdentity();
  other.shard_count = 4;
  EXPECT_THROW(CtrStoreWriter(dir, other, resume), ConfigError);
}

TEST(CtrStore, ResumedStoreFromLongerRunRefusesToFinishShort) {
  const std::string dir = TempPath("longer");
  const std::vector<RunRecord> recs = SampleRecords(12);
  CtrWriterOptions options;
  options.block_records = 4;
  WriteStore(dir, recs, options);
  options.resume = true;
  CtrStoreWriter writer(dir, TestIdentity(), options);
  for (std::size_t i = 0; i < 6; ++i) writer.Add(recs[i]);
  EXPECT_THROW(writer.Finish(), ConfigError);
}

TEST(CtrStore, ResumeWithDivergentTrialSequenceThrowsAtBoundary) {
  const std::string dir = TempPath("diverge");
  const std::vector<RunRecord> recs = SampleRecords(9);
  CtrWriterOptions options;
  options.block_records = 4;
  WriteStore(dir, recs, options);
  options.resume = true;
  CtrStoreWriter writer(dir, TestIdentity(), options);
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i < recs.size(); ++i) {
          RunRecord r = recs[i];
          r.run_seed ^= 1;  // a different campaign's seed sequence
          writer.Add(r);
        }
      },
      ConfigError);
}

// ---- Crash discipline --------------------------------------------------------

TEST(CtrStore, TruncationAtEveryByteServesPrefixAndResumeConverges) {
  const std::string src = TempPath("cut_src");
  const std::vector<RunRecord> recs = SampleRecords(11);
  CtrWriterOptions options;
  options.block_records = 4;  // 2 full blocks + a partial block of 3
  WriteStore(src, recs, options);
  const std::string seg = src + "/seg-000000.ctr";
  const std::string full = ReadFileBytes(seg);
  const std::size_t header_end = HeaderEnd(full);

  const std::string cut = TempPath("cut_copy");
  std::size_t prev_served = 0;
  for (std::size_t len = 0; len <= full.size(); ++len) {
    fs::create_directories(cut);
    WriteFileBytes(cut + "/seg-000000.ctr", full.substr(0, len));

    // The scanner serves the intact block prefix, bit-exact; below an
    // intact header the store is structurally unreadable and throws.
    std::optional<std::vector<RunRecord>> served;
    bool truncated = false, sealed = false;
    try {
      served = ScanAll(cut, kAllColumns, &truncated, &sealed);
    } catch (const ConfigError&) {
      EXPECT_LT(len, header_end) << "cut at byte " << len;
    }
    if (served.has_value()) {
      ASSERT_LE(served->size(), recs.size()) << "cut at byte " << len;
      for (std::size_t i = 0; i < served->size(); ++i) {
        ExpectRecordEq(recs[i], (*served)[i], i);
      }
      // Served records only grow with the intact prefix, and only the full
      // file is sealed and untruncated.
      EXPECT_GE(served->size(), prev_served) << "cut at byte " << len;
      prev_served = served->size();
      if (len == full.size()) {
        EXPECT_EQ(served->size(), recs.size());
        EXPECT_TRUE(sealed);
        EXPECT_FALSE(truncated);
      } else {
        EXPECT_TRUE(!sealed || truncated) << "cut at byte " << len;
      }
    }

    // Resuming over the cut and re-adding the full record stream must
    // converge to the uninterrupted byte stream, whatever the cut point —
    // including cuts inside the header (segment rebuilt from scratch) and
    // cuts that leave Finish()'s partial block without its footer (the
    // partial block is dropped and re-written).
    CtrWriterOptions resume = options;
    resume.resume = true;
    {
      CtrStoreWriter writer(cut, TestIdentity(), resume);
      for (const RunRecord& r : recs) writer.Add(r);
      writer.Finish();
    }
    EXPECT_EQ(ReadFileBytes(cut + "/seg-000000.ctr"), full)
        << "resume after cut at byte " << len;
    fs::remove_all(cut);
  }
}

TEST(CtrStore, BitFlipFuzzNeverServesCorruptRecords) {
  const std::string src = TempPath("flip_src");
  const std::vector<RunRecord> recs = SampleRecords(11);
  CtrWriterOptions options;
  options.block_records = 4;
  WriteStore(src, recs, options);
  const std::string full = ReadFileBytes(src + "/seg-000000.ctr");
  const std::size_t header_end = HeaderEnd(full);
  const std::string flipped = TempPath("flip_copy");

  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    // Flip one random bit past the header (header corruption is a
    // legitimate hard error, covered above). The frame CRC must catch the
    // flip at the frame it lands in: whatever is served is a bit-exact
    // record prefix, never garbage.
    std::string bytes = full;
    const std::size_t byte = static_cast<std::size_t>(
        rng.UniformU64(header_end, bytes.size() - 1));
    bytes[byte] = static_cast<char>(
        bytes[byte] ^ static_cast<char>(1u << rng.UniformU64(0, 7)));
    fs::create_directories(flipped);
    WriteFileBytes(flipped + "/seg-000000.ctr", bytes);

    std::vector<RunRecord> served;
    ASSERT_NO_THROW(served = ScanAll(flipped)) << "flip in byte " << byte;
    ASSERT_LE(served.size(), recs.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
      ExpectRecordEq(recs[i], served[i], i);
    }
    fs::remove_all(flipped);
  }
}

TEST(CtrStore, HalfCreatedLastSegmentIsDroppedOnResume) {
  const std::string dir = TempPath("halfseg");
  const std::vector<RunRecord> recs = SampleRecords(16);
  CtrWriterOptions options;
  options.block_records = 4;
  options.segment_cap_bytes = 1;  // several sealed segments
  WriteStore(dir, recs, options);
  const std::size_t segments = ScanAll(dir).size();
  ASSERT_EQ(segments, recs.size());
  // Simulate a crash right after the next segment's file was created but
  // before its header landed.
  const std::vector<std::string> names = [&] {
    std::vector<std::string> v;
    for (const auto& e : fs::directory_iterator(dir)) {
      v.push_back(e.path().string());
    }
    std::sort(v.begin(), v.end());
    return v;
  }();
  WriteFileBytes(dir + "/seg-009999.ctr", "CH");  // torn mid-magic
  CtrWriterOptions resume = options;
  resume.resume = true;
  {
    CtrStoreWriter writer(dir, TestIdentity(), resume);
    for (const RunRecord& r : recs) writer.Add(r);
    writer.Finish();
    EXPECT_EQ(writer.stored(), recs.size());
  }
  EXPECT_FALSE(fs::exists(dir + "/seg-009999.ctr"));
  const std::vector<RunRecord> back = ScanAll(dir);
  ASSERT_EQ(back.size(), recs.size());
}

// ---- CSV export identity -----------------------------------------------------

std::string ReferenceCsv(const std::vector<RunRecord>& recs,
                         campaign::SamplePolicy policy) {
  std::ostringstream out;
  campaign::WriteRecordsCsv(recs, out, policy);
  return out.str();
}

std::string ExportedCsv(const std::string& dir) {
  std::ostringstream out;
  ExportCsv(dir, out);
  return out.str();
}

TEST(CtrExport, ByteIdenticalToWriteRecordsCsvAcrossVersions) {
  // v6: custom injectors present.
  {
    const std::string dir = TempPath("export_v6");
    const std::vector<RunRecord> recs = SampleRecords(37);
    CtrWriterOptions options;
    options.block_records = 8;
    WriteStore(dir, recs, options);
    EXPECT_EQ(ExportedCsv(dir),
              ReferenceCsv(recs, campaign::SamplePolicy::kUniform));
  }
  // v4: uniform policy, no injectors — the version probe must not be fooled
  // by the empty dictionary column.
  {
    const std::string dir = TempPath("export_v4");
    std::vector<RunRecord> recs = SampleRecords(21);
    for (RunRecord& r : recs) {
      r.injector.clear();
      r.fault_class.clear();
    }
    WriteStore(dir, recs);
    EXPECT_EQ(ExportedCsv(dir),
              ReferenceCsv(recs, campaign::SamplePolicy::kUniform));
  }
  // v5: non-uniform policy, still no injectors.
  {
    const std::string dir = TempPath("export_v5");
    std::vector<RunRecord> recs = SampleRecords(21);
    for (RunRecord& r : recs) {
      r.injector.clear();
      r.fault_class.clear();
    }
    CtrStoreInfo info = TestIdentity();
    info.sample_policy = campaign::SamplePolicy::kStratified;
    CtrStoreWriter writer(TempPath("export_v5"), info, {});
    for (const RunRecord& r : recs) writer.Add(r);
    writer.Finish();
    EXPECT_EQ(ExportedCsv(dir),
              ReferenceCsv(recs, campaign::SamplePolicy::kStratified));
  }
}

TEST(CtrExport, ShardStreamMergeMatchesRecordMerge) {
  // Partition records over 3 shards by index % 3 (exactly the fleet
  // partition), write each shard's store, and stream-merge: the result must
  // render identically to the whole-file record merge, and the sink must
  // see the global seed order.
  const std::uint64_t runs = 30;
  const std::uint64_t seed = 99;
  const std::vector<std::uint64_t> seeds =
      campaign::Campaign::DeriveTrialSeeds(seed, runs);
  std::vector<RunRecord> all = SampleRecords(runs);
  for (std::size_t i = 0; i < all.size(); ++i) all[i].run_seed = seeds[i];

  std::vector<std::string> dirs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const std::string dir = TempPath("merge_shard" + std::to_string(s));
    dirs.push_back(dir);
    CtrStoreInfo info = TestIdentity();
    info.campaign_seed = seed;
    info.shard_index = s;
    info.shard_count = 3;
    CtrStoreWriter writer(dir, info, {});
    for (std::size_t i = s; i < all.size(); i += 3) writer.Add(all[i]);
    writer.Finish();
  }

  campaign::MergePlan plan;
  plan.app = "accum";
  plan.runs = runs;
  plan.seed = seed;
  const campaign::CampaignResult by_records =
      campaign::MergeShardRecords(plan, all);

  std::vector<std::unique_ptr<CtrStoreScanner>> scanners;
  std::vector<campaign::ShardRecordStream> streams;
  for (const std::string& dir : dirs) {
    scanners.push_back(std::make_unique<CtrStoreScanner>(dir));
    streams.push_back([s = scanners.back().get()](RunRecord* out) {
      return s->Next(out);
    });
  }
  std::vector<std::uint64_t> sink_seeds;
  const campaign::CampaignResult by_streams = campaign::MergeShardStreams(
      plan, std::move(streams),
      [&](const RunRecord& r) { sink_seeds.push_back(r.run_seed); });
  EXPECT_EQ(by_streams.Render("accum"), by_records.Render("accum"));
  EXPECT_EQ(sink_seeds, seeds);
}

// ---- Query engine ------------------------------------------------------------

TEST(CtrQuery, FilterGroupAndTopKMatchDirectTallies) {
  const std::string dir = TempPath("query");
  const std::vector<RunRecord> recs = SampleRecords(60);
  CtrWriterOptions options;
  options.block_records = 16;
  WriteStore(dir, recs, options);

  QueryOptions q;
  q.filter = ParseTrialFilter("injector=stuckat");
  q.group_by = GroupBy::kOutcome;
  q.top_k = 3;
  const QueryResult res = RunQuery(dir, q);

  std::uint64_t expect_matched = 0;
  double expect_weight = 0.0;
  for (const RunRecord& r : recs) {
    if (r.injector != "stuckat") continue;
    ++expect_matched;
    expect_weight += r.sample_weight;
  }
  EXPECT_EQ(res.scanned, recs.size());
  EXPECT_EQ(res.matched, expect_matched);
  EXPECT_EQ(res.total.trials, expect_matched);
  EXPECT_DOUBLE_EQ(res.total.weight, expect_weight);
  std::uint64_t group_sum = 0;
  for (const auto& [label, agg] : res.groups) group_sum += agg.trials;
  EXPECT_EQ(group_sum, expect_matched);
  ASSERT_LE(res.top_sites.size(), 3u);
  for (std::size_t i = 1; i < res.top_sites.size(); ++i) {
    EXPECT_GE(res.top_sites[i - 1].trials, res.top_sites[i].trials);
  }
}

TEST(CtrQuery, WhereParserRejectsUnknownKeysAndValues) {
  EXPECT_THROW(ParseTrialFilter("bogus=1"), ConfigError);
  EXPECT_THROW(ParseTrialFilter("outcome=nosuch"), ConfigError);
  EXPECT_THROW(ParseTrialFilter("rank=notanumber"), ConfigError);
  const TrialFilter f = ParseTrialFilter("outcome=sdc,inject_class=fadd");
  ASSERT_TRUE(f.outcome.has_value());
  EXPECT_EQ(*f.outcome, Outcome::kSdc);
  ASSERT_TRUE(f.inject_class.has_value());
  EXPECT_EQ(*f.inject_class, guest::InstrClass::kFadd);
}

// ---- Varint hardening (spool codec regression) -------------------------------

TEST(VarintCodec, RejectsOverlongEncodings) {
  using analysis::AppendVarint;
  using analysis::DecodeVarint;
  // Canonical encodings round-trip.
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, ~0ull, 1ull << 62}) {
    std::string buf;
    AppendVarint(&buf, v);
    std::size_t pos = 0;
    const auto back = DecodeVarint(buf, &pos);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
  // Overlong forms of small values — a continuation byte followed by a
  // terminal 0x00 contributes no bits — must be rejected, not silently
  // canonicalized: the CTR layout is deterministic only if every value has
  // exactly one encoding.
  for (const std::string& overlong :
       {std::string("\x80\x00", 2), std::string("\x81\x00", 2),
        std::string("\xff\x80\x00", 3)}) {
    std::size_t pos = 0;
    EXPECT_FALSE(DecodeVarint(overlong, &pos).has_value());
  }
  // Truncated input is rejected too.
  std::size_t pos = 0;
  EXPECT_FALSE(DecodeVarint(std::string("\x80", 1), &pos).has_value());
  // A 10th byte carrying bits beyond 2^64 overflows.
  pos = 0;
  EXPECT_FALSE(
      DecodeVarint(std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f", 10),
                   &pos)
          .has_value());
}

}  // namespace
}  // namespace chaser::store

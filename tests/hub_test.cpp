// Unit tests for src/hub: TaintHub publish/poll, the Chaser MPI hooks, and
// end-to-end cross-rank taint propagation (the paper's Fig. 5 mechanism).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/chaser_mpi.h"
#include "core/corrupt.h"
#include "guest/builder.h"
#include "hub/mpi_hooks.h"
#include "hub/tainthub.h"
#include "mpi/cluster.h"

namespace chaser::hub {
namespace {

using guest::Cond;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

constexpr std::int64_t kInt64 = static_cast<std::int64_t>(guest::MpiDatatype::kInt64);

// ---- TaintHub registry -------------------------------------------------------

TEST(TaintHub, PublishPollRoundTrip) {
  TaintHub hub;
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0x00, 0xff, 0x0f};
  hub.Publish(rec);
  const auto got = hub.Poll({0, 1, 7, 0});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->byte_masks, rec.byte_masks);
  EXPECT_EQ(got->TaintedByteCount(), 2u);
  // One-shot: a second poll misses.
  EXPECT_FALSE(hub.Poll({0, 1, 7, 0}).has_value());
}

TEST(TaintHub, PollMissesOnDifferentIdentity) {
  TaintHub hub;
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff};
  hub.Publish(rec);
  EXPECT_FALSE(hub.Poll({0, 1, 7, 1}).has_value());  // different seq
  EXPECT_FALSE(hub.Poll({0, 2, 7, 0}).has_value());  // different dest
  EXPECT_FALSE(hub.Poll({0, 1, 8, 0}).has_value());  // different tag
  EXPECT_FALSE(hub.Poll({1, 1, 7, 0}).has_value());  // different src
}

TEST(TaintHub, StatsAndTransfers) {
  TaintHub hub;
  MessageTaintRecord rec;
  rec.id = {2, 3, 1, 5};
  rec.byte_masks = {0xff, 0xff};
  hub.Publish(rec);
  (void)hub.Poll({2, 3, 1, 5});
  (void)hub.Poll({9, 9, 9, 9});
  EXPECT_EQ(hub.stats().publishes, 1u);
  EXPECT_EQ(hub.stats().polls, 2u);
  EXPECT_EQ(hub.stats().hits, 1u);
  EXPECT_EQ(hub.stats().applied_bytes, 2u);
  ASSERT_EQ(hub.transfers().size(), 1u);
  EXPECT_TRUE(hub.SawTransfer(2, 3));
  EXPECT_FALSE(hub.SawTransfer(3, 2));
}

TEST(TaintHub, ClearResets) {
  TaintHub hub;
  MessageTaintRecord rec;
  rec.id = {0, 1, 0, 0};
  rec.byte_masks = {1};
  hub.Publish(rec);
  hub.Clear();
  EXPECT_FALSE(hub.Poll({0, 1, 0, 0}).has_value());
  EXPECT_EQ(hub.stats().publishes, 0u);
  EXPECT_TRUE(hub.transfers().empty());
}

TEST(TaintHub, TransferLogOrderingAndAnchors) {
  TaintHub hub;
  for (std::uint64_t i = 0; i < 3; ++i) {
    MessageTaintRecord rec;
    rec.id = {0, 1, static_cast<std::int64_t>(i), i};
    rec.byte_masks = {0xff};
    rec.src_vaddr = 0x1000 + i;
    rec.send_instret = 100 + i;
    hub.Publish(rec);
  }
  // Poll out of publish order: hub_seq must follow *poll* (arrival) order.
  (void)hub.Poll({0, 1, 2, 2}, {.dest_vaddr = 0x2002, .recv_instret = 202});
  (void)hub.Poll({0, 1, 0, 0}, {.dest_vaddr = 0x2000, .recv_instret = 200});
  (void)hub.Poll({0, 1, 1, 1}, {.dest_vaddr = 0x2001, .recv_instret = 201});

  const std::vector<TransferLogEntry> log = hub.transfer_log();
  ASSERT_EQ(log.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(log[i].hub_seq, i);
  EXPECT_EQ(log[0].id.tag, 2);  // first polled
  EXPECT_EQ(log[1].id.tag, 0);
  EXPECT_EQ(log[2].id.tag, 1);
  // Sender/receiver anchors survive into the log.
  EXPECT_EQ(log[0].src_vaddr, 0x1002u);
  EXPECT_EQ(log[0].send_instret, 102u);
  EXPECT_EQ(log[0].dest_vaddr, 0x2002u);
  EXPECT_EQ(log[0].recv_instret, 202u);
  EXPECT_EQ(log[0].payload_bytes, 1u);
  EXPECT_EQ(log[0].tainted_bytes, 1u);
}

TEST(TaintHub, DrainTransferLogMovesAndClears) {
  TaintHub hub;
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff};
  hub.Publish(rec);
  (void)hub.Poll({0, 1, 7, 0});

  const std::vector<TransferLogEntry> drained = hub.DrainTransferLog();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(hub.transfers().empty());
  // Stats and pending records survive a drain; only the log empties.
  EXPECT_EQ(hub.stats().hits, 1u);
  EXPECT_TRUE(hub.DrainTransferLog().empty());
  // hub_seq keeps counting across drains (Clear() resets it).
  MessageTaintRecord rec2;
  rec2.id = {1, 0, 7, 0};
  rec2.byte_masks = {0xff};
  hub.Publish(rec2);
  (void)hub.Poll({1, 0, 7, 0});
  const std::vector<TransferLogEntry> second = hub.DrainTransferLog();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].hub_seq, 1u);
  hub.Clear();
  rec2.byte_masks = {0xff};
  hub.Publish(rec2);
  (void)hub.Poll({1, 0, 7, 0});
  EXPECT_EQ(hub.transfer_log().at(0).hub_seq, 0u);
}

// ---- Degradation model (HubFaultModel) ---------------------------------------

TEST(TaintHubFault, OutageWindowDropsPublishesAndBlocksPolls) {
  TaintHub hub;
  hub.SetFaultModel({.outage_start = 0, .outage_end = 10});
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff, 0x0f};
  hub.Publish(rec);  // clock 1, inside the outage: lost
  EXPECT_EQ(hub.stats().publish_drops, 1u);
  EXPECT_EQ(hub.stats().taint_lost, 1u);
  EXPECT_EQ(hub.stats().lost_taint_bytes, 2u);
  const PollAttempt attempt = hub.TryPoll({0, 1, 7, 0}, {});
  EXPECT_EQ(attempt.status, PollStatus::kUnavailable);
  EXPECT_EQ(hub.stats().unavailable_polls, 1u);
}

TEST(TaintHubFault, PollAfterOutageEndsSeesDefinitiveMiss) {
  TaintHub hub;
  hub.SetFaultModel({.outage_start = 0, .outage_end = 2});
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff};
  hub.Publish(rec);                                        // clock 1: lost
  EXPECT_EQ(hub.TryPoll({0, 1, 7, 0}, {}).status,          // clock 2: outage over,
            PollStatus::kMiss);                            // record is simply gone
}

TEST(TaintHubFault, VisibilityDelayOvercomeByRetrying) {
  TaintHub hub;
  hub.SetFaultModel({.visibility_delay = 2});
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff};
  hub.Publish(rec);  // clock 1, visible at clock 3
  EXPECT_EQ(hub.TryPoll({0, 1, 7, 0}, {}).status, PollStatus::kUnavailable);
  const PollAttempt hit = hub.TryPoll({0, 1, 7, 0}, {});  // clock 3
  ASSERT_EQ(hit.status, PollStatus::kHit);
  EXPECT_EQ(hit.record->byte_masks, rec.byte_masks);
  EXPECT_EQ(hub.stats().unavailable_polls, 1u);
  EXPECT_EQ(hub.stats().hits, 1u);
  EXPECT_EQ(hub.stats().taint_lost, 0u);
}

TEST(TaintHubFault, AbandonedPollAccountsTheLoss) {
  TaintHub hub;
  hub.SetFaultModel({.visibility_delay = 100});
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff, 0xff, 0x00};
  hub.Publish(rec);
  EXPECT_EQ(hub.TryPoll({0, 1, 7, 0}, {}).status, PollStatus::kUnavailable);
  hub.AbandonPoll({0, 1, 7, 0});
  EXPECT_EQ(hub.stats().abandoned_polls, 1u);
  EXPECT_EQ(hub.stats().taint_lost, 1u);
  EXPECT_EQ(hub.stats().lost_taint_bytes, 2u);
  // The evicted record cannot alias a later message with the same identity.
  EXPECT_EQ(hub.TryPoll({0, 1, 7, 0}, {}).status, PollStatus::kMiss);
}

TEST(TaintHubFault, PublishDropProbabilityOneLosesEverything) {
  TaintHub hub;
  hub.SetFaultModel({.publish_drop_prob = 1.0});
  for (std::uint64_t i = 0; i < 5; ++i) {
    MessageTaintRecord rec;
    rec.id = {0, 1, 7, i};
    rec.byte_masks = {0xff};
    hub.Publish(rec);
    EXPECT_EQ(hub.TryPoll({0, 1, 7, i}, {}).status, PollStatus::kMiss);
  }
  EXPECT_EQ(hub.stats().publish_drops, 5u);
  EXPECT_EQ(hub.stats().taint_lost, 5u);
}

TEST(TaintHubFault, ClearRestartsTheDegradationSchedule) {
  // The drop tape and the operation clock restart on Clear(), so every
  // trial sees the same schedule — the serial == parallel bit-identity of
  // degraded campaigns depends on this.
  TaintHub hub;
  hub.SetFaultModel({.publish_drop_prob = 0.5, .seed = 7});
  const auto run_tape = [&] {
    std::vector<bool> dropped;
    std::uint64_t drops_before = hub.stats().publish_drops;
    for (std::uint64_t i = 0; i < 32; ++i) {
      MessageTaintRecord rec;
      rec.id = {0, 1, 7, i};
      rec.byte_masks = {0xff};
      hub.Publish(rec);
      dropped.push_back(hub.stats().publish_drops > drops_before);
      drops_before = hub.stats().publish_drops;
    }
    return dropped;
  };
  const std::vector<bool> first = run_tape();
  hub.Clear();
  EXPECT_EQ(run_tape(), first);
  EXPECT_TRUE(std::find(first.begin(), first.end(), true) != first.end());
  EXPECT_TRUE(std::find(first.begin(), first.end(), false) != first.end());
}

TEST(TaintHubFault, LegacyPollTreatsUnavailableAsMiss) {
  TaintHub hub;
  hub.SetFaultModel({.outage_start = 0, .outage_end = 100});
  MessageTaintRecord rec;
  rec.id = {0, 1, 7, 0};
  rec.byte_masks = {0xff};
  hub.Publish(rec);
  EXPECT_FALSE(hub.Poll({0, 1, 7, 0}).has_value());
}

TEST(TaintHub, AnyTaintedHelper) {
  MessageTaintRecord clean;
  clean.byte_masks = {0, 0, 0};
  EXPECT_FALSE(clean.AnyTainted());
  MessageTaintRecord dirty;
  dirty.byte_masks = {0, 4, 0};
  EXPECT_TRUE(dirty.AnyTainted());
}

// ---- End-to-end cross-rank propagation ---------------------------------------------

/// Rank 0 stores a value, (optionally corrupted by the test before the send),
/// sends it to rank 1; rank 1 receives, copies it to a second buffer via a
/// load/store, and exits. All data lives at "cell" / "copy".
const guest::Program& RelayProgram() {
  static const guest::Program p = [] {
    ProgramBuilder b("relay");
    const std::vector<std::uint64_t> init{0x1234};
    const GuestAddr cell = b.DataU64("cell", init);
    const GuestAddr copy = b.Bss("copy", 8);
    b.Sys(Sys::kMpiInit);
    b.Sys(Sys::kMpiCommRank);
    b.Mov(R(10), R(0));
    auto receiver = b.NewLabel("receiver");
    auto done = b.NewLabel("done");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, receiver);
    b.MovI(R(1), static_cast<std::int64_t>(cell));
    b.MovI(R(2), 1);
    b.MovI(R(3), kInt64);
    b.MovI(R(4), 1);
    b.MovI(R(5), 2);
    b.Sys(Sys::kMpiSend);
    b.Jmp(done);
    b.Bind(receiver);
    b.MovI(R(1), static_cast<std::int64_t>(cell));
    b.MovI(R(2), 1);
    b.MovI(R(3), kInt64);
    b.MovI(R(4), 0);
    b.MovI(R(5), 2);
    b.Sys(Sys::kMpiRecv);
    // Local propagation on the receiving side: tainted load + store.
    b.MovI(R(9), static_cast<std::int64_t>(cell));
    b.Ld(R(8), R(9), 0);
    b.MovI(R(9), static_cast<std::int64_t>(copy));
    b.St(R(9), 0, R(8));
    b.Bind(done);
    b.Sys(Sys::kMpiFinalize);
    b.Exit(0);
    return b.Finalize();
  }();
  return p;
}

class HubEndToEnd : public ::testing::Test {
 protected:
  HubEndToEnd() : cluster_({.num_ranks = 2}), hooks_(&hub_) {
    cluster_.SetMessageHooks(&hooks_);
  }

  /// Start, enable taint on both ranks, taint the sender's cell, run.
  mpi::JobResult RunWithTaintedCell() {
    cluster_.Start(RelayProgram());
    for (Rank r = 0; r < 2; ++r) cluster_.rank_vm(r).taint().set_enabled(true);
    vm::Vm& sender = cluster_.rank_vm(0);
    const GuestAddr cell = RelayProgram().DataAddr("cell");
    const auto pa = sender.memory().Translate(cell);
    sender.taint().SetMemTaintByte(*pa, 0xff);
    sender.taint().SetMemTaintByte(*pa + 1, 0x0f);
    return cluster_.Run();
  }

  mpi::Cluster cluster_;
  TaintHub hub_;
  ChaserMpiHooks hooks_;
};

TEST_F(HubEndToEnd, TaintCrossesRankBoundaryViaHub) {
  ASSERT_TRUE(RunWithTaintedCell().completed);
  EXPECT_EQ(hub_.stats().publishes, 1u);
  EXPECT_EQ(hub_.stats().hits, 1u);
  EXPECT_TRUE(hub_.SawTransfer(0, 1));

  // The receiver's cell carries the re-applied per-byte masks...
  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr cell = RelayProgram().DataAddr("cell");
  const auto pa = receiver.memory().Translate(cell);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*pa), 0xffu);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*pa + 1), 0x0fu);
  // ...and local propagation resumed: the copy cell is tainted too.
  const GuestAddr copy = RelayProgram().DataAddr("copy");
  const auto copy_pa = receiver.memory().Translate(copy);
  EXPECT_NE(receiver.taint().GetMemTaintByte(*copy_pa), 0u);
}

TEST_F(HubEndToEnd, WithoutHooksTaintDiesAtBoundary) {
  cluster_.SetMessageHooks(nullptr);  // the paper's problem statement
  ASSERT_TRUE(RunWithTaintedCell().completed);
  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr copy = RelayProgram().DataAddr("copy");
  const auto copy_pa = receiver.memory().Translate(copy);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*copy_pa), 0u);
  // But the *data* still arrived: only the shadow was lost.
  PhysAddr pa;
  EXPECT_EQ(*receiver.memory().Load(copy, 8, &pa), 0x1234u);
}

TEST_F(HubEndToEnd, CleanMessagesNeverTouchTheHub) {
  cluster_.Start(RelayProgram());
  for (Rank r = 0; r < 2; ++r) cluster_.rank_vm(r).taint().set_enabled(true);
  ASSERT_TRUE(cluster_.Run().completed);
  EXPECT_EQ(hub_.stats().publishes, 0u);  // sender returned early
  EXPECT_EQ(hub_.stats().hits, 0u);
}

TEST_F(HubEndToEnd, TaintDisabledMeansNoHubTraffic) {
  cluster_.Start(RelayProgram());
  ASSERT_TRUE(cluster_.Run().completed);
  EXPECT_EQ(hub_.stats().publishes, 0u);
  EXPECT_EQ(hub_.stats().polls, 0u);
}

// ---- Per-job isolation (campaign trials re-Start the same cluster) -----------

/// Like RelayProgram, but rank 1 exits without ever receiving: the tainted
/// message is published to the hub and never polled.
const guest::Program& SendNoRecvProgram() {
  static const guest::Program p = [] {
    ProgramBuilder b("relay");  // same process name: hooks stay comparable
    const std::vector<std::uint64_t> init{0x1234};
    const GuestAddr cell = b.DataU64("cell", init);
    b.Bss("copy", 8);
    b.Sys(Sys::kMpiInit);
    b.Sys(Sys::kMpiCommRank);
    b.Mov(R(10), R(0));
    auto done = b.NewLabel("done");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, done);  // rank 1: straight to finalize, no recv
    b.MovI(R(1), static_cast<std::int64_t>(cell));
    b.MovI(R(2), 1);
    b.MovI(R(3), kInt64);
    b.MovI(R(4), 1);
    b.MovI(R(5), 2);  // same tag RelayProgram uses
    b.Sys(Sys::kMpiSend);
    b.Bind(done);
    b.Sys(Sys::kMpiFinalize);
    b.Exit(0);
    return b.Finalize();
  }();
  return p;
}

TEST_F(HubEndToEnd, StaleRecordsFromDeadTrialDoNotLeakIntoNextJob) {
  // Job 1: the tainted message is published but the receiver terminates
  // without polling — the record is stranded in the hub.
  cluster_.Start(SendNoRecvProgram());
  for (Rank r = 0; r < 2; ++r) cluster_.rank_vm(r).taint().set_enabled(true);
  vm::Vm& sender = cluster_.rank_vm(0);
  const GuestAddr cell = SendNoRecvProgram().DataAddr("cell");
  const auto pa = sender.memory().Translate(cell);
  sender.taint().SetMemTaintByte(*pa, 0xff);
  ASSERT_TRUE(cluster_.Run().completed);
  EXPECT_EQ(hub_.stats().publishes, 1u);
  EXPECT_EQ(hub_.stats().hits, 0u);

  // Job 2: a clean relay run. Sequence numbers restart at zero, so the
  // first (src 0, dest 1, tag 2) message has the *same identity* as the
  // stranded record — without the per-job hub reset the receiver would poll
  // a hit and phantom taint would leak into this trial.
  cluster_.Start(RelayProgram());
  for (Rank r = 0; r < 2; ++r) cluster_.rank_vm(r).taint().set_enabled(true);
  ASSERT_TRUE(cluster_.Run().completed);
  EXPECT_EQ(hub_.stats().publishes, 0u) << "stats must not accumulate across jobs";
  EXPECT_EQ(hub_.stats().hits, 0u) << "stale record must not match the new job";
  EXPECT_TRUE(hub_.transfers().empty());

  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr copy = RelayProgram().DataAddr("copy");
  const auto copy_pa = receiver.memory().Translate(copy);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*copy_pa), 0u)
      << "phantom taint leaked from the previous job";
}

TEST_F(HubEndToEnd, PollDeadlineExhaustedProceedsUntaintedAndCountsLoss) {
  // The publish succeeds but stays invisible longer than the receiver's
  // whole poll deadline: the receiver must give up, deliver the payload
  // untainted, and the hub must account the lost shadow.
  hub_.SetFaultModel({.visibility_delay = 1000, .poll_retries = 2});
  ASSERT_TRUE(RunWithTaintedCell().completed);
  EXPECT_EQ(hub_.stats().publishes, 1u);
  EXPECT_EQ(hub_.stats().hits, 0u);
  EXPECT_EQ(hub_.stats().abandoned_polls, 1u);
  EXPECT_EQ(hub_.stats().taint_lost, 1u);
  EXPECT_EQ(hub_.stats().lost_taint_bytes, 2u);
  // Retries happened: 1 first attempt + 2 retries, all unavailable.
  EXPECT_EQ(hub_.stats().polls, 3u);
  EXPECT_EQ(hub_.stats().unavailable_polls, 3u);

  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr cell = RelayProgram().DataAddr("cell");
  const auto pa = receiver.memory().Translate(cell);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*pa), 0u) << "must proceed untainted";
  // The *data* still arrived — only its shadow was lost.
  PhysAddr unused;
  EXPECT_EQ(*receiver.memory().Load(cell, 8, &unused), 0x1234u);
}

TEST_F(HubEndToEnd, HardOutageLosesTaintButJobCompletes) {
  hub_.SetFaultModel({.outage_start = 0, .outage_end = 1'000'000});
  ASSERT_TRUE(RunWithTaintedCell().completed);
  EXPECT_EQ(hub_.stats().publish_drops, 1u);
  EXPECT_EQ(hub_.stats().taint_lost, 1u);
  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr copy = RelayProgram().DataAddr("copy");
  const auto copy_pa = receiver.memory().Translate(copy);
  EXPECT_EQ(receiver.taint().GetMemTaintByte(*copy_pa), 0u);
}

TEST_F(HubEndToEnd, RetryDeadlineOvercomesShortVisibilityLag) {
  // delay=2 with a 1-retry deadline: the first poll is one clock too early,
  // the retry lands exactly at visibility — no taint loss, propagation
  // intact.
  hub_.SetFaultModel({.visibility_delay = 2, .poll_retries = 1});
  ASSERT_TRUE(RunWithTaintedCell().completed);
  EXPECT_EQ(hub_.stats().hits, 1u);
  EXPECT_EQ(hub_.stats().taint_lost, 0u);
  EXPECT_EQ(hub_.stats().unavailable_polls, 1u);
  vm::Vm& receiver = cluster_.rank_vm(1);
  const GuestAddr copy = RelayProgram().DataAddr("copy");
  const auto copy_pa = receiver.memory().Translate(copy);
  EXPECT_NE(receiver.taint().GetMemTaintByte(*copy_pa), 0u)
      << "taint must propagate once the retry hits";
}

TEST_F(HubEndToEnd, StatsAndTransfersResetBetweenJobs) {
  ASSERT_TRUE(RunWithTaintedCell().completed);
  ASSERT_TRUE(RunWithTaintedCell().completed);
  // Second job saw exactly one publish/hit of its own, not two accumulated.
  EXPECT_EQ(hub_.stats().publishes, 1u);
  EXPECT_EQ(hub_.stats().hits, 1u);
  EXPECT_EQ(hub_.transfers().size(), 1u);
}

}  // namespace
}  // namespace chaser::hub

// Tests for src/campaign/sampling and its integration into both campaign
// drivers: golden-site equivalence classes, the weighted/stratified draw,
// Wilson intervals, the --stop-ci early-stop rule, the uniform byte-identity
// guarantee, and resume-safety of an early-stopped campaign.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "campaign/sampling.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/trigger.h"
#include "guest/builder.h"

namespace chaser::campaign {
namespace {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

// ---- SamplingPlan -------------------------------------------------------------

GoldenSiteMap TwoRankSites() {
  GoldenSiteMap sites;
  sites[0] = {{/*pc=*/10, guest::InstrClass::kFadd, /*execs=*/30},
              {/*pc=*/20, guest::InstrClass::kFmul, /*execs=*/10}};
  sites[1] = {{/*pc=*/10, guest::InstrClass::kFadd, /*execs=*/50},
              {/*pc=*/20, guest::InstrClass::kFmul, /*execs=*/10}};
  return sites;
}

TEST(SamplingPlan, CollapsesSameSiteAcrossRanks) {
  const SamplingPlan plan = SamplingPlan::Build(TwoRankSites());
  ASSERT_EQ(plan.classes().size(), 2u);
  EXPECT_EQ(plan.total_mass(), 100u);
  const SiteClass& fadd = plan.classes()[0];  // classes are pc-ordered
  EXPECT_EQ(fadd.pc, 10u);
  EXPECT_EQ(fadd.mass, 80u);
  ASSERT_EQ(fadd.members.size(), 2u);
  EXPECT_EQ(fadd.members[0].first, 0);
  EXPECT_EQ(fadd.members[0].second, 30u);
  EXPECT_EQ(fadd.members[1].first, 1);
  EXPECT_EQ(fadd.members[1].second, 50u);
}

TEST(SamplingPlan, SkipsZeroExecSitesAndRejectsEmptyMass) {
  GoldenSiteMap sites;
  sites[0] = {{10, guest::InstrClass::kFadd, 0}};
  EXPECT_THROW(SamplingPlan::Build(sites), ConfigError);
  sites[0].push_back({20, guest::InstrClass::kAdd, 5});
  const SamplingPlan plan = SamplingPlan::Build(sites);
  EXPECT_EQ(plan.classes().size(), 1u);
  EXPECT_EQ(plan.total_mass(), 5u);
}

TEST(SamplingPlan, WeightedDrawIsUniformOverInvocations) {
  const SamplingPlan plan = SamplingPlan::Build(TwoRankSites());
  Rng rng(7);
  std::uint64_t fadd_draws = 0, rank1_fadd = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const SiteDraw d = plan.Draw(SamplePolicy::kWeighted, rng);
    EXPECT_EQ(d.weight, 1.0);
    ASSERT_GE(d.nth, 1u);
    if (d.pc == 10) {
      ++fadd_draws;
      if (d.rank == 1) ++rank1_fadd;
      EXPECT_LE(d.nth, d.rank == 0 ? 30u : 50u);
    } else {
      EXPECT_EQ(d.pc, 20u);
      EXPECT_LE(d.nth, 10u);
    }
  }
  // The fadd class holds 80% of the mass, and rank 1 holds 50/80 of the
  // class; a fixed seed makes these checks deterministic.
  EXPECT_NEAR(static_cast<double>(fadd_draws) / kDraws, 0.80, 0.02);
  EXPECT_NEAR(static_cast<double>(rank1_fadd) / (fadd_draws ? fadd_draws : 1),
              50.0 / 80.0, 0.02);
}

TEST(SamplingPlan, StratifiedDrawWeightsMapBackToInvocations) {
  const SamplingPlan plan = SamplingPlan::Build(TwoRankSites());
  Rng rng(11);
  double fadd_weighted = 0.0, total_weighted = 0.0;
  std::uint64_t fmul_draws = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const SiteDraw d = plan.Draw(SamplePolicy::kStratified, rng);
    // weight = mass_c * K / M for K=2 classes, masses 80/20, M=100.
    EXPECT_DOUBLE_EQ(d.weight, d.pc == 10 ? 80.0 * 2 / 100 : 20.0 * 2 / 100);
    total_weighted += d.weight;
    if (d.pc == 10) fadd_weighted += d.weight;
    if (d.pc == 20) ++fmul_draws;
  }
  // Classes are drawn uniformly, so the rare fmul class gets ~half the
  // draws — far more than its 10% mass share (why stratification exists) —
  // while the importance weights still recover the mass proportions.
  EXPECT_NEAR(static_cast<double>(fmul_draws) / kDraws, 0.5, 0.02);
  EXPECT_NEAR(fadd_weighted / total_weighted, 0.80, 0.02);
}

TEST(SamplingPlan, UniformPolicyIsNotAPlanPolicy) {
  const SamplingPlan plan = SamplingPlan::Build(TwoRankSites());
  Rng rng(1);
  EXPECT_THROW(plan.Draw(SamplePolicy::kUniform, rng), ConfigError);
}

TEST(SamplePolicy, NamesRoundTrip) {
  for (const SamplePolicy p : {SamplePolicy::kUniform, SamplePolicy::kWeighted,
                               SamplePolicy::kStratified}) {
    SamplePolicy back = SamplePolicy::kUniform;
    ASSERT_TRUE(ParseSamplePolicy(SamplePolicyName(p), &back));
    EXPECT_EQ(back, p);
  }
  SamplePolicy out;
  EXPECT_FALSE(ParseSamplePolicy("adaptive", &out));
}

// ---- Wilson intervals ---------------------------------------------------------

TEST(Wilson, MatchesKnownValue) {
  // p=0.5, n=100, z=1.96: the Wilson 95% interval is [0.4038, 0.5962].
  const WilsonInterval w = WilsonScore(0.5, 100.0);
  EXPECT_NEAR(w.lo, 0.4038, 0.001);
  EXPECT_NEAR(w.hi, 0.5962, 0.001);
  EXPECT_EQ(w.rate, 0.5);
}

TEST(Wilson, StaysInsideUnitIntervalAtExtremes) {
  const WilsonInterval zero = WilsonScore(0.0, 50.0);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.15);
  const WilsonInterval one = WilsonScore(1.0, 50.0);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
  EXPECT_GT(one.lo, 0.85);
}

TEST(Wilson, NoDataIsVacuous) {
  const WilsonInterval w = WilsonScore(0.5, 0.0);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 1.0);
}

// ---- OutcomeEstimator ---------------------------------------------------------

TEST(OutcomeEstimator, UnweightedRatesAreProportions) {
  OutcomeEstimator est;
  for (int i = 0; i < 60; ++i) est.Add(/*benign*/ 0, false, 1.0);
  for (int i = 0; i < 30; ++i) est.Add(/*terminated*/ 1, i < 10, 1.0);
  for (int i = 0; i < 10; ++i) est.Add(/*sdc*/ 2, false, 1.0);
  EXPECT_EQ(est.trials(), 100u);
  EXPECT_DOUBLE_EQ(est.effective_n(), 100.0);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kBenign).rate, 0.60);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kTerminated).rate, 0.30);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kSdc).rate, 0.10);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kHang).rate, 0.10);
}

TEST(OutcomeEstimator, IgnoresInfraAndNonPositiveWeights) {
  OutcomeEstimator est;
  est.Add(0, false, 1.0);
  est.Add(3, false, 1.0);   // infra
  est.Add(2, false, 0.0);   // degenerate weight
  est.Add(2, false, -1.0);  // degenerate weight
  EXPECT_EQ(est.trials(), 1u);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kBenign).rate, 1.0);
}

TEST(OutcomeEstimator, UnequalWeightsShrinkEffectiveN) {
  OutcomeEstimator est;
  est.Add(0, false, 9.0);
  est.Add(2, false, 1.0);
  // Kish: (9+1)^2 / (81+1) = 100/82.
  EXPECT_NEAR(est.effective_n(), 100.0 / 82.0, 1e-12);
  EXPECT_DOUBLE_EQ(est.Interval(OutcomeEstimator::kBenign).rate, 0.9);
}

TEST(OutcomeEstimator, ConvergedNeedsEverySeriesNarrow) {
  OutcomeEstimator est;
  EXPECT_FALSE(est.Converged(0.5));
  for (int i = 0; i < 10; ++i) est.Add(i % 2, false, 1.0);
  EXPECT_FALSE(est.Converged(0.1));
  for (int i = 0; i < 5000; ++i) est.Add(i % 2, false, 1.0);
  EXPECT_TRUE(est.Converged(0.06));
}

TEST(SampleController, StopIsStickyAndGuardedByMinTrials) {
  SampleController c(SamplePolicy::kWeighted, /*stop_ci=*/0.9);
  EXPECT_TRUE(c.stop_enabled());
  // Even a trivially-converged estimate may not stop before kMinStopTrials.
  for (std::uint64_t i = 0; i + 1 < SampleController::kMinStopTrials; ++i) {
    EXPECT_FALSE(c.Commit(0, false, 1.0)) << "commit " << i;
  }
  EXPECT_TRUE(c.Commit(0, false, 1.0));
  EXPECT_TRUE(c.converged());
  const std::uint64_t committed = c.committed();
  // Sticky: later commits keep reporting the stop and change nothing.
  EXPECT_TRUE(c.Commit(2, false, 1.0));
  EXPECT_EQ(c.committed(), committed);
}

TEST(SampleController, DisabledStopStillEstimates) {
  SampleController c(SamplePolicy::kStratified, /*stop_ci=*/0.0);
  EXPECT_FALSE(c.stop_enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(c.Commit(0, false, 1.0));
  EXPECT_FALSE(c.converged());
  EXPECT_EQ(c.estimator().trials(), 100u);
}

// ---- PcNthTrigger -------------------------------------------------------------

TEST(PcNthTrigger, FiresAtNthLocalInvocationOfItsPcOnly) {
  core::PcNthTrigger trig(/*pc=*/40, /*nth=*/3);
  Rng rng(1);
  std::uint64_t exec = 0;
  EXPECT_FALSE(trig.ShouldFireAt(++exec, 40, rng));  // 1st at pc
  EXPECT_FALSE(trig.ShouldFireAt(++exec, 41, rng));  // other pc: not counted
  EXPECT_FALSE(trig.ShouldFireAt(++exec, 40, rng));  // 2nd at pc
  EXPECT_TRUE(trig.ShouldFireAt(++exec, 40, rng));   // 3rd: fire
  EXPECT_TRUE(trig.Expired());
  EXPECT_FALSE(trig.ShouldFireAt(++exec, 40, rng));  // one-shot
}

TEST(PcNthTrigger, CloneRestartsCounting) {
  core::PcNthTrigger trig(40, 1);
  Rng rng(1);
  EXPECT_TRUE(trig.ShouldFireAt(1, 40, rng));
  const auto fresh = trig.Clone();
  EXPECT_FALSE(fresh->Expired());
}

// ---- Campaign integration -----------------------------------------------------

/// Steerable single-rank app: `iters` fadds plus a tail of integer adds, so
/// a sampled campaign sees two site classes with very different masses.
apps::AppSpec AccumulatorApp(std::uint64_t iters = 50) {
  ProgramBuilder b("accum");
  const GuestAddr out = b.Bss("out", 8);
  b.FmovI(F(0), 0.0);
  b.FmovI(F(1), 1.0);
  b.MovI(R(1), 0);
  auto loop = b.Here("loop");
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(iters));
  b.Br(Cond::kLt, loop);
  b.MovI(R(9), static_cast<std::int64_t>(out));
  b.Fst(R(9), 0, F(0));
  b.MovI(R(4), static_cast<std::int64_t>(out));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  b.Exit(0);
  apps::AppSpec spec;
  spec.name = "accum";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd, guest::InstrClass::kAdd};
  return spec;
}

CampaignConfig BaseConfig(std::uint64_t runs, std::uint64_t seed) {
  CampaignConfig config;
  config.runs = runs;
  config.seed = seed;
  return config;
}

std::string RenderPlusCsv(const CampaignResult& result, SamplePolicy policy) {
  std::ostringstream out;
  out << result.Render("accum");
  WriteRecordsCsv(result.records, out, policy);
  return out.str();
}

TEST(SampledCampaign, UniformRenderAndCsvCarryNoSamplingArtifacts) {
  Campaign c(AccumulatorApp(), BaseConfig(40, 5));
  const CampaignResult result = c.Run();
  EXPECT_FALSE(result.has_estimates);
  const std::string text = RenderPlusCsv(result, SamplePolicy::kUniform);
  EXPECT_EQ(text.find("sampling:"), std::string::npos);
  EXPECT_EQ(text.find("wilson"), std::string::npos);
  EXPECT_NE(text.find("#chaser-records-csv v4\n"), std::string::npos)
      << "uniform campaigns must keep the pre-sampling CSV format";
}

TEST(SampledCampaign, WeightedSerialAndParallelAreBitIdentical) {
  for (const SamplePolicy policy :
       {SamplePolicy::kWeighted, SamplePolicy::kStratified}) {
    CampaignConfig config = BaseConfig(60, 9);
    config.sample_policy = policy;
    Campaign serial(AccumulatorApp(), config);
    const CampaignResult a = serial.Run();
    ParallelCampaign parallel(AccumulatorApp(), config, /*jobs=*/4);
    const CampaignResult b = parallel.Run();
    ASSERT_TRUE(a.has_estimates);
    ASSERT_TRUE(b.has_estimates);
    EXPECT_EQ(RenderPlusCsv(a, policy), RenderPlusCsv(b, policy))
        << SamplePolicyName(policy);
    EXPECT_EQ(a.est_sdc.lo, b.est_sdc.lo) << SamplePolicyName(policy);
    EXPECT_EQ(a.est_sdc.hi, b.est_sdc.hi) << SamplePolicyName(policy);
    EXPECT_EQ(a.effective_n, b.effective_n) << SamplePolicyName(policy);
  }
}

TEST(SampledCampaign, SampledRecordsCarrySiteAndWeight) {
  CampaignConfig config = BaseConfig(30, 13);
  config.sample_policy = SamplePolicy::kStratified;
  Campaign c(AccumulatorApp(), config);
  const CampaignResult result = c.Run();
  ASSERT_EQ(result.records.size(), 30u);
  for (const RunRecord& rec : result.records) {
    EXPECT_GT(rec.sample_weight, 0.0);
    EXPECT_GE(rec.trigger_nth, 1u);
  }
}

TEST(SampledCampaign, StopCiStopsEarlyIdenticallyOnBothDrivers) {
  CampaignConfig config = BaseConfig(400, 21);
  config.sample_policy = SamplePolicy::kWeighted;
  config.stop_ci = 0.45;  // generous: converges soon after the 32-trial guard
  Campaign serial(AccumulatorApp(), config);
  const CampaignResult a = serial.Run();
  ASSERT_TRUE(a.stopped_early);
  EXPECT_GE(a.runs, SampleController::kMinStopTrials);
  EXPECT_LT(a.runs, 400u);
  for (unsigned jobs : {2u, 4u}) {
    ParallelCampaign parallel(AccumulatorApp(), config, jobs);
    const CampaignResult b = parallel.Run();
    EXPECT_EQ(a.runs, b.runs) << "jobs=" << jobs;
    EXPECT_EQ(RenderPlusCsv(a, config.sample_policy),
              RenderPlusCsv(b, config.sample_policy))
        << "jobs=" << jobs;
  }
}

/// Satellite: resuming a --stop-ci-stopped campaign must replay to the same
/// stop point without running a single new trial or moving any estimate.
TEST(SampledCampaign, ResumeAfterEarlyStopRunsNothingAndMatchesByteForByte) {
  namespace fs = std::filesystem;
  const std::string journal =
      (fs::temp_directory_path() / "chaser_stopci_resume.journal").string();
  std::remove(journal.c_str());
  CampaignConfig config = BaseConfig(400, 21);
  config.sample_policy = SamplePolicy::kWeighted;
  config.stop_ci = 0.45;
  config.journal_path = journal;

  Campaign first(AccumulatorApp(), config);
  const CampaignResult a = first.Run();
  ASSERT_TRUE(a.stopped_early);
  const auto journal_bytes = fs::file_size(journal);

  // Serial resume: replayed commits hit the same stop prefix.
  Campaign again(AccumulatorApp(), config);
  const CampaignResult b = again.Run();
  EXPECT_EQ(fs::file_size(journal), journal_bytes)
      << "a resumed early-stopped campaign must not execute (or journal) "
         "any new trial";
  EXPECT_EQ(RenderPlusCsv(a, config.sample_policy),
            RenderPlusCsv(b, config.sample_policy));

  // Parallel resume of the same journal: identical again.
  ParallelCampaign par(AccumulatorApp(), config, /*jobs=*/4);
  const CampaignResult c = par.Run();
  EXPECT_EQ(fs::file_size(journal), journal_bytes);
  EXPECT_EQ(RenderPlusCsv(a, config.sample_policy),
            RenderPlusCsv(c, config.sample_policy));
  std::remove(journal.c_str());
}

TEST(SampledCampaign, WeightedEstimateCoversExhaustiveUniformRate) {
  // Ground truth: the uniform policy's outcome tally over many trials.
  CampaignConfig exhaustive = BaseConfig(300, 3);
  Campaign truth(AccumulatorApp(), exhaustive);
  const CampaignResult t = truth.Run();
  const double sdc_rate =
      static_cast<double>(t.sdc) / static_cast<double>(t.runs);

  CampaignConfig sampled = BaseConfig(300, 4);
  sampled.sample_policy = SamplePolicy::kWeighted;
  Campaign c(AccumulatorApp(), sampled);
  const CampaignResult s = c.Run();
  ASSERT_TRUE(s.has_estimates);
  // Two independent 300-trial estimates of the same rate: the sampled CI
  // must cover the exhaustive point estimate.
  EXPECT_GE(sdc_rate, s.est_sdc.lo - 0.02);
  EXPECT_LE(sdc_rate, s.est_sdc.hi + 0.02);
}

}  // namespace
}  // namespace chaser::campaign
